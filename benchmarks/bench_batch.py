"""Batch engine — serial vs pooled execution, fused vs unfused planning.

The acceptance bars for the batch subsystem: the pooled run must produce
*identical* numbers to the inline run (the task decomposition never
changes a value), and on multi-core hardware the wall-clock must drop;
the fusion planner must cut kernel constructions to one per (model,
worker) and beat per-cell execution on a shared-model grid, again with
bit-identical numbers. Pool speedup is only asserted when the machine
actually has spare cores and the serial run is long enough for the
comparison to be meaningful — pool startup costs a few hundred ms.

Run:  pytest benchmarks/bench_batch.py --benchmark-only -q -s
"""

from __future__ import annotations

import dataclasses
import time

import numpy as np
import pytest

from benchmarks.conftest import CONFIG
from repro.analysis.experiments import run_grid
from repro.analysis.runner import get_solver
from repro.batch.kernel import kernel_build_count
from repro.batch.planner import (
    SolveRequest,
    execute_requests,
    worker_cache_clear,
)
from repro.batch.runner import BatchRunner, available_cpus as _cpus
from repro.batch.scenarios import (
    Scenario,
    generate_scenarios,
    scenario_tasks,
)
from repro.markov.rewards import Measure, RewardStructure

#: Measure-only grid (timing figures excluded: timing cells measured on a
#: contended pool would not be comparable anyway).
_GRID_CFG = dataclasses.replace(CONFIG, workers=1)


@pytest.fixture(scope="module")
def serial_grid():
    t0 = time.perf_counter()
    result = run_grid(_GRID_CFG, include_timings=False)
    return result, time.perf_counter() - t0


def test_grid_serial(benchmark, serial_grid):
    """Baseline: the measure grid inline (workers=1)."""
    result, _ = benchmark.pedantic(
        lambda: (run_grid(_GRID_CFG, include_timings=False), 0.0),
        rounds=1, iterations=1)
    assert result.table1.columns == serial_grid[0].table1.columns


def test_grid_pooled_matches_serial(benchmark, serial_grid):
    """Pooled run: identical numbers, lower wall-clock when cores allow."""
    serial_result, serial_seconds = serial_grid
    cfg = dataclasses.replace(_GRID_CFG, workers=max(2, min(4, _cpus())))

    t0 = time.perf_counter()
    pooled = benchmark.pedantic(
        lambda: run_grid(cfg, include_timings=False),
        rounds=1, iterations=1)
    pooled_seconds = time.perf_counter() - t0

    assert pooled.table1.columns == serial_result.table1.columns
    assert pooled.table2.columns == serial_result.table2.columns
    assert pooled.ur_values == serial_result.ur_values
    if _cpus() >= 2 and serial_seconds > 3.0:
        assert pooled_seconds < serial_seconds, (
            f"pooled {pooled_seconds:.2f}s not faster than serial "
            f"{serial_seconds:.2f}s on a {_cpus()}-core machine")


def _shared_model_requests(n_cells: int = 8) -> list[SolveRequest]:
    """A scenario grid that is wide in cells but has ONE model: the shape
    the fusion planner exists for. Cells vary rewards and eps."""
    n = 3000
    scenario = Scenario(name="bd-shared", family="birth_death",
                       params={"n": n, "birth": 1.0, "death": 1.6},
                       times=(100.0, 400.0), eps=1e-10)
    rng = np.random.default_rng(17)
    requests = []
    for i in range(n_cells):
        rewards = RewardStructure(rng.random(n))
        requests.append(SolveRequest(
            scenario=scenario, measure=Measure.TRR, times=scenario.times,
            eps=scenario.eps * 10.0 ** -(i % 3), method="SR",
            rewards=rewards, key=i))
    return requests


def test_shared_model_fused_vs_unfused(benchmark):
    """The fusion acceptance case: on a shared-model SR grid the planner
    must (a) build the kernel once per (model, worker) instead of once
    per cell, (b) keep every number bit-identical, and (c) cut
    wall-clock by sharing one stepping sweep across all cells."""
    requests = _shared_model_requests()
    inline = BatchRunner(max_workers=1)

    # PR-1 shape: every cell builds its own kernel.
    naive_sols = []
    worker_cache_clear()
    builds_before = kernel_build_count()
    t0 = time.perf_counter()
    for req in requests:
        model, rewards = req.resolve()
        naive_sols.append(get_solver(req.method).solve(
            model, rewards, req.measure, list(req.times), req.eps))
    naive_seconds = time.perf_counter() - t0
    naive_builds = kernel_build_count() - builds_before
    assert naive_builds == len(requests)

    # Planned but unfused: the worker cache makes it one build total,
    # but every cell still pays its own stepping sweep.
    worker_cache_clear()
    builds_before = kernel_build_count()
    t0 = time.perf_counter()
    unfused = execute_requests(requests, inline, fuse=False)
    unfused_seconds = time.perf_counter() - t0
    assert kernel_build_count() - builds_before == 1

    # Fused: one build, one shared sweep.
    worker_cache_clear()
    builds_before = kernel_build_count()
    t0 = time.perf_counter()
    fused = benchmark.pedantic(
        lambda: execute_requests(requests, inline, fuse=True),
        rounds=1, iterations=1)
    fused_seconds = time.perf_counter() - t0
    assert kernel_build_count() - builds_before == 1

    for a, b, solo in zip(fused, unfused, naive_sols):
        assert a.ok and b.ok
        assert np.array_equal(a.value.values, b.value.values)
        assert np.array_equal(a.value.values, solo.values)
    print(f"\nshared-model grid ({len(requests)} cells): "
          f"naive {naive_seconds:.2f}s ({naive_builds} kernel builds), "
          f"unfused {unfused_seconds:.2f}s (1 build), "
          f"fused {fused_seconds:.2f}s (1 build)")
    # The fused run does strictly less work (one matvec sweep instead of
    # one per cell), so the comparison is meaningful even at sub-second
    # scale; skip only when the whole grid is too fast to time at all.
    if unfused_seconds > 0.05:
        assert fused_seconds < unfused_seconds, (
            f"fused {fused_seconds:.2f}s not faster than unfused "
            f"{unfused_seconds:.2f}s on a shared-model grid")


def _regenerative_grid_requests(n_cells: int = 10) -> list[SolveRequest]:
    """An RR/RRL grid that is wide in cells but has ONE model: the shape
    schedule memoization exists for. Cells vary horizon, eps and
    solution-phase knobs — everything the memo is allowed to vary."""
    n = 2500
    scenario = Scenario(name="bd-regen", family="birth_death",
                        params={"n": n, "birth": 1.0, "death": 1.5},
                        times=(100.0,), eps=1e-10)
    requests = []
    for i in range(n_cells):
        t = 60.0 * (i + 1)
        method = "RR" if i == n_cells - 1 else "RRL"
        kwargs = {"t_factor": 4.0} if i % 3 == 2 else {}
        requests.append(SolveRequest(
            scenario=scenario, measure=Measure.TRR, times=(t,),
            eps=1e-10 * 10.0 ** -(i % 2), method=method,
            solver_kwargs=kwargs, key=i))
    return requests


def schedule_memoization_measurements(n_cells: int = 10) -> dict:
    """Cold-vs-warm measurement of the RR/RRL schedule memo (used by the
    benchmark below and by CI's stats artifact).

    Returns wall-clock seconds, cache-hit statistics and the per-cell
    ``TransientSolution.stats`` cache fields; asserts cold == warm bit
    for bit before reporting anything.
    """
    from repro.batch.planner import plan_requests
    from repro.core.schedule_cache import process_schedule_cache_info

    requests = _regenerative_grid_requests(n_cells)
    predicted_builds = plan_requests(requests).schedule_builds()
    inline = BatchRunner(max_workers=1)

    # Cold: every cell rebuilds its K+L transformation.
    worker_cache_clear()
    t0 = time.perf_counter()
    cold = execute_requests(requests, inline, memoize=False)
    cold_seconds = time.perf_counter() - t0
    assert process_schedule_cache_info()["misses"] == 0

    # Warm: the first cell builds, every later cell extends the shared
    # transformation.
    worker_cache_clear()
    t0 = time.perf_counter()
    warm = execute_requests(requests, inline, memoize=True)
    warm_seconds = time.perf_counter() - t0
    cache_info = process_schedule_cache_info()

    for a, b in zip(warm, cold):
        assert a.ok and b.ok, (a.error, b.error)
        assert np.array_equal(a.value.values, b.value.values)
        assert np.array_equal(a.value.steps, b.value.steps)
    cells = [{"key": o.key,
              "method": o.value.method,
              "schedule_cache_hit": o.value.stats["schedule_cache_hit"],
              "transformation_steps": int(
                  o.value.stats["transformation_steps"]),
              "transformation_steps_reused": int(
                  o.value.stats["transformation_steps_reused"])}
             for o in warm]
    # The plan's fingerprint-hook prediction must match what the cache
    # actually built.
    assert cache_info["misses"] == predicted_builds
    return {"n_cells": len(requests),
            "predicted_builds": predicted_builds,
            "cold_seconds": cold_seconds,
            "warm_seconds": warm_seconds,
            "cache": cache_info,
            "cells": cells,
            "bit_identical": True}


def test_rr_schedule_memoization(benchmark):
    """The memoization acceptance case: on a shared-model RR/RRL grid the
    planner must (a) build the schedule transformation once per worker
    instead of once per cell, (b) keep every number bit-identical, and
    (c) cut wall-clock by not re-stepping the K+L phase per cell."""
    result = benchmark.pedantic(
        lambda: schedule_memoization_measurements(), rounds=1,
        iterations=1)

    cache = result["cache"]
    assert cache["misses"] == 1, cache
    assert cache["hits"] == result["n_cells"] - 1, cache
    hits = [c["schedule_cache_hit"] for c in result["cells"]]
    assert hits == [False] + [True] * (result["n_cells"] - 1)
    # Warm cells only ever *extend*: total charged steps across the grid
    # equal one build to the deepest horizon, not a per-cell rebuild.
    charged = sum(c["transformation_steps"] for c in result["cells"])
    deepest = max(c["transformation_steps"]
                  + c["transformation_steps_reused"]
                  for c in result["cells"])
    assert charged == deepest

    print(f"\nschedule memo ({result['n_cells']} RR/RRL cells, one "
          f"model): cold {result['cold_seconds']:.2f}s "
          f"(per-cell K+L), warm {result['warm_seconds']:.2f}s "
          f"({cache['misses']} build + {cache['hits']} hits)")
    # The warm run does strictly less work (one K+L stepping pass instead
    # of one per cell); only skip the comparison when the grid is too
    # fast to time at all.
    if result["cold_seconds"] > 0.05:
        assert result["warm_seconds"] < result["cold_seconds"], (
            f"memoized {result['warm_seconds']:.2f}s not faster than "
            f"unmemoized {result['cold_seconds']:.2f}s on a shared-model "
            "RR/RRL grid")


def test_service_facade_overhead(benchmark):
    """The service acceptance case: routing a grid through the
    ``SolveService`` facade (and even through the on-disk ``JobQueue``)
    must keep every number bit-identical to direct ``execute_requests``
    plumbing, and the facade itself must add only negligible overhead —
    it is bookkeeping, not numerics."""
    from repro.service import JobQueue, SolveService

    requests = _shared_model_requests()
    inline = BatchRunner(max_workers=1)

    worker_cache_clear()
    t0 = time.perf_counter()
    direct = execute_requests(requests, inline, fuse=True)
    direct_seconds = time.perf_counter() - t0

    worker_cache_clear()
    t0 = time.perf_counter()
    via_service = benchmark.pedantic(
        lambda: SolveService(runner=inline, fuse=True).solve(requests),
        rounds=1, iterations=1)
    service_seconds = time.perf_counter() - t0

    import tempfile
    worker_cache_clear()
    t0 = time.perf_counter()
    with tempfile.TemporaryDirectory(prefix="bench-queue-") as tmp:
        queue = JobQueue(tmp)
        queue.submit(requests)
        queue.run(SolveService(runner=inline, fuse=True))
        via_queue = queue.collect()
    queue_seconds = time.perf_counter() - t0

    for a, b, c in zip(via_service, direct, via_queue):
        assert a.ok and b.ok and c.ok
        assert np.array_equal(a.value.values, b.value.values)
        assert np.array_equal(a.value.values, c.value.values)
    overhead = service_seconds - direct_seconds
    print(f"\nservice overhead ({len(requests)} cells): direct "
          f"{direct_seconds:.3f}s, facade {service_seconds:.3f}s "
          f"(overhead {overhead * 1e3:+.1f}ms), journaled queue "
          f"{queue_seconds:.3f}s (serialization + fsync)")
    # The facade adds planner bookkeeping only; anything near a 50%
    # blowup on a multi-second grid means it started doing real work.
    if direct_seconds > 1.0:
        assert service_seconds < 1.5 * direct_seconds, (
            f"facade {service_seconds:.2f}s vs direct "
            f"{direct_seconds:.2f}s: overhead is no longer negligible")


def test_scenario_sweep_pooled(benchmark):
    """Fan a generated scenario sweep over the pool; outcomes stay
    deterministic and identical to inline execution."""
    scenarios = generate_scenarios(families=("birth_death", "block"),
                                   random_count=3, times=(1.0, 10.0),
                                   eps=1e-8)
    tasks = scenario_tasks(scenarios, methods=("RRL",))

    inline = BatchRunner(max_workers=1).run(tasks)
    pooled = benchmark.pedantic(
        lambda: BatchRunner(max_workers=max(2, min(4, _cpus())),
                            chunk_size=2).run(tasks),
        rounds=1, iterations=1)

    assert [o.key for o in pooled] == [o.key for o in inline]
    for a, b in zip(inline, pooled):
        assert a.ok and b.ok, (a.error, b.error)
        assert list(a.value.values) == list(b.value.values)
