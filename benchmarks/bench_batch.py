"""Batch engine — serial vs pooled execution of the benchmark grid.

The acceptance bar for the batch subsystem: the pooled run must produce
*identical* numbers to the inline run (the task decomposition never
changes a value), and on multi-core hardware the wall-clock must drop.
Speedup is only asserted when the machine actually has spare cores and
the serial run is long enough for the comparison to be meaningful —
pool startup costs a few hundred ms.

Run:  pytest benchmarks/bench_batch.py --benchmark-only -q -s
"""

from __future__ import annotations

import dataclasses
import time

import pytest

from benchmarks.conftest import CONFIG
from repro.batch.runner import BatchRunner, available_cpus as _cpus
from repro.batch.scenarios import generate_scenarios, scenario_tasks
from repro.analysis.experiments import run_grid

#: Measure-only grid (timing figures excluded: timing cells measured on a
#: contended pool would not be comparable anyway).
_GRID_CFG = dataclasses.replace(CONFIG, workers=1)


@pytest.fixture(scope="module")
def serial_grid():
    t0 = time.perf_counter()
    result = run_grid(_GRID_CFG, include_timings=False)
    return result, time.perf_counter() - t0


def test_grid_serial(benchmark, serial_grid):
    """Baseline: the measure grid inline (workers=1)."""
    result, _ = benchmark.pedantic(
        lambda: (run_grid(_GRID_CFG, include_timings=False), 0.0),
        rounds=1, iterations=1)
    assert result.table1.columns == serial_grid[0].table1.columns


def test_grid_pooled_matches_serial(benchmark, serial_grid):
    """Pooled run: identical numbers, lower wall-clock when cores allow."""
    serial_result, serial_seconds = serial_grid
    cfg = dataclasses.replace(_GRID_CFG, workers=max(2, min(4, _cpus())))

    t0 = time.perf_counter()
    pooled = benchmark.pedantic(
        lambda: run_grid(cfg, include_timings=False),
        rounds=1, iterations=1)
    pooled_seconds = time.perf_counter() - t0

    assert pooled.table1.columns == serial_result.table1.columns
    assert pooled.table2.columns == serial_result.table2.columns
    assert pooled.ur_values == serial_result.ur_values
    if _cpus() >= 2 and serial_seconds > 3.0:
        assert pooled_seconds < serial_seconds, (
            f"pooled {pooled_seconds:.2f}s not faster than serial "
            f"{serial_seconds:.2f}s on a {_cpus()}-core machine")


def test_scenario_sweep_pooled(benchmark):
    """Fan a generated scenario sweep over the pool; outcomes stay
    deterministic and identical to inline execution."""
    scenarios = generate_scenarios(families=("birth_death", "block"),
                                   random_count=3, times=(1.0, 10.0),
                                   eps=1e-8)
    tasks = scenario_tasks(scenarios, methods=("RRL",))

    inline = BatchRunner(max_workers=1).run(tasks)
    pooled = benchmark.pedantic(
        lambda: BatchRunner(max_workers=max(2, min(4, _cpus())),
                            chunk_size=2).run(tasks),
        rounds=1, iterations=1)

    assert [o.key for o in pooled] == [o.key for o in inline]
    for a, b in zip(inline, pooled):
        assert a.ok and b.ok, (a.error, b.error)
        assert list(a.value.values) == list(b.value.values)
