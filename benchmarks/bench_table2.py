"""Table 2 — step counts of RR/RRL vs SR for UR(t), plus the in-text
UR(10⁵) values.

On the paper grid the RR/RRL column must match the published integers
within ±2 and UR(10⁵) must land on 0.50480 / ~0.7475 (the P_R
calibration, see EXPERIMENTS.md). The SR column is *computed* from the
Poisson quantile — running SR is not needed to know how many steps it
would take, which is exactly the point of the table.

Run:  pytest benchmarks/bench_table2.py --benchmark-only -q -s
"""

import numpy as np
import pytest

from benchmarks.conftest import CONFIG, EPS, GROUPS, SCALE, TIMES
from repro import TRR, RRLSolver
from repro.analysis.experiments import (
    PAPER_TABLE2,
    PAPER_UR_1E5,
    run_table2,
)
from repro.markov.rewards import Measure
from repro.markov.standard import sr_required_steps


@pytest.mark.parametrize("g", GROUPS)
def test_table2_steps_column(benchmark, reliability_models, g):
    model, rewards = reliability_models[g]

    def sweep():
        return RRLSolver().solve(model, rewards, TRR, list(TIMES), EPS)

    sol = benchmark.pedantic(sweep, rounds=1, iterations=1)
    assert np.all(np.diff(sol.values) >= 0.0)  # UR is non-decreasing
    if SCALE == "paper" and tuple(TIMES) == (1.0, 10.0, 1e2, 1e3, 1e4, 1e5):
        paper = np.asarray(PAPER_TABLE2[g][0])
        assert np.all(np.abs(sol.steps - paper) <= 2), \
            f"G={g}: steps {list(sol.steps)} vs paper {list(paper)}"
        assert sol.values[-1] == pytest.approx(PAPER_UR_1E5[g], abs=8e-3), \
            f"G={g}: UR(1e5) = {sol.values[-1]} vs paper {PAPER_UR_1E5[g]}"


@pytest.mark.parametrize("g", GROUPS)
def test_table2_sr_column(benchmark, reliability_models, g):
    """Time the SR quantile computation and check the column's explosion."""
    model, rewards = reliability_models[g]
    lam = model.max_output_rate

    def column():
        return [sr_required_steps(lam * t, EPS / rewards.max_rate,
                                  Measure.TRR) - 1 for t in TIMES]

    steps = benchmark.pedantic(column, rounds=3, iterations=1)
    # SR grows linearly with t; at the largest horizon it must dwarf RRL.
    assert steps[-1] > 100 * steps[0]
    if SCALE == "paper" and tuple(TIMES) == (1.0, 10.0, 1e2, 1e3, 1e4, 1e5):
        paper = np.asarray(PAPER_TABLE2[g][1])
        assert np.all(np.abs(np.asarray(steps) - paper) <= 2), \
            f"G={g}: SR steps {steps} vs paper {list(paper)}"


def test_print_table2(reliability_models, capsys):
    table = run_table2(CONFIG)
    with capsys.disabled():
        print()
        print(table.render())
