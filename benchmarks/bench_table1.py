"""Table 1 — step counts of RR/RRL vs RSD for UA(t).

The step counts are machine-independent integers, so this benchmark both
*times* the step-producing computations and *asserts* the reproduction:
on the paper grid (``REPRO_BENCH_SCALE=paper``) the RR/RRL column must
match the published table within ±2 steps (the residual is the
truncation-bound constant that the unavailable tech reports pin down).

Run:  pytest benchmarks/bench_table1.py --benchmark-only -q -s
"""

import numpy as np
import pytest

from benchmarks.conftest import CONFIG, EPS, GROUPS, SCALE, TIMES
from repro import TRR, RRLSolver, SteadyStateDetectionSolver
from repro.analysis.experiments import PAPER_TABLE1, run_table1


@pytest.mark.parametrize("g", GROUPS)
def test_table1_steps_column(benchmark, availability_models, g):
    """Time the full RR/RRL transformation sweep for one model size."""
    model, rewards = availability_models[g]

    def sweep():
        return RRLSolver().solve(model, rewards, TRR, list(TIMES), EPS)

    sol = benchmark.pedantic(sweep, rounds=1, iterations=1)
    assert np.all(sol.steps > 0)
    if SCALE == "paper" and tuple(TIMES) == (1.0, 10.0, 1e2, 1e3, 1e4, 1e5):
        paper = np.asarray(PAPER_TABLE1[g][0])
        assert np.all(np.abs(sol.steps - paper) <= 2), \
            f"G={g}: steps {list(sol.steps)} vs paper {list(paper)}"


@pytest.mark.parametrize("g", GROUPS)
def test_table1_rsd_column(benchmark, availability_models, g):
    """Time the RSD sweep (detection caps the large-t cells)."""
    model, rewards = availability_models[g]

    def sweep():
        return SteadyStateDetectionSolver().solve(model, rewards, TRR,
                                                  list(TIMES), EPS)

    sol = benchmark.pedantic(sweep, rounds=1, iterations=1)
    # Shape property of the paper's RSD column: saturation for large t.
    assert sol.steps[-1] == sol.steps[-2]


def test_print_table1(availability_models, capsys):
    """Regenerate and print the full Table 1 next to the paper's values."""
    table = run_table1(CONFIG)
    with capsys.disabled():
        print()
        print(table.render())
