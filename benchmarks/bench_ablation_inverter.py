"""Ablation — choice of inversion algorithm (Durbin+epsilon vs
Gaver–Stehfest).

The paper picks the Durbin/Crump family (complex abscissae, epsilon
acceleration, tunable damping) and reports that it sustains ~14 digits on
the UR workload. The main alternative, Gaver–Stehfest, uses only real
abscissae but amplifies round-off exponentially in its order — in double
precision it cannot reach the paper's ε = 10⁻¹². This ablation runs both
on the same RRL transform of the RAID unreliability model and reports
achieved accuracy and abscissa counts.

Run:  pytest benchmarks/bench_ablation_inverter.py --benchmark-only -q -s
"""

import numpy as np
import pytest

from benchmarks.conftest import EPS, GROUPS
from repro import TRR, StandardRandomizationSolver
from repro.core._setup import prepare
from repro.core.transforms import VklTransform
from repro.core.truncation import select_truncation
from repro.laplace.gaver import invert_gaver_stehfest
from repro.laplace.inversion import invert_bounded


@pytest.fixture(scope="module")
def transform_and_reference(reliability_models):
    g = GROUPS[0]
    model, rewards = reliability_models[g]
    t = 100.0
    setup = prepare(model, rewards, None, None)
    choice = select_truncation(setup.main, setup.primed, setup.rate, t,
                               EPS / 2.0, rewards.max_rate)
    tr = VklTransform(
        setup.main.snapshot(),
        setup.primed.snapshot() if setup.primed is not None else None,
        choice.k_point, choice.l_point, setup.rate,
        setup.absorbing_rewards)
    ref = StandardRandomizationSolver().solve(model, rewards, TRR, [t],
                                              1e-13).values[0]
    return tr, t, ref


def test_durbin_epsilon(benchmark, transform_and_reference, capsys):
    tr, t, ref = transform_and_reference

    def run():
        return invert_bounded(tr.trr, t, eps=EPS, bound=1.0)

    res = benchmark.pedantic(run, rounds=3, iterations=1)
    err = abs(res.value - ref)
    with capsys.disabled():
        print(f"\nDurbin+epsilon: err={err:.2e} with "
              f"{res.n_abscissae} abscissae (budget ε={EPS:g})")
    assert err <= 10 * EPS


@pytest.mark.parametrize("m", [5, 7, 9])
def test_gaver_stehfest(benchmark, transform_and_reference, m, capsys):
    tr, t, ref = transform_and_reference

    def run():
        return invert_gaver_stehfest(tr.trr, t, m=m)

    res = benchmark.pedantic(run, rounds=3, iterations=1)
    err = abs(res.value - ref)
    with capsys.disabled():
        print(f"\nGaver–Stehfest M={m}: err={err:.2e} with "
              f"{res.n_abscissae} abscissae")
    # The structural ceiling: GS cannot reach the paper's budget.
    assert err > EPS
