"""Shared configuration for the paper-reproduction benchmarks.

Scale is controlled by the ``REPRO_BENCH_SCALE`` environment variable:

* ``small`` (default) — ``G ∈ {5, 10}``, ``t`` up to 10⁴ h: every cell
  finishes in seconds; the qualitative shapes (who wins, where the
  crossovers fall) already match the paper.
* ``paper`` — the paper's exact grid, ``G ∈ {20, 40}``, ``t`` up to
  10⁵ h. The SR cells at the largest horizons run millions of steps;
  cells whose predicted step count exceeds the budget are skipped.

``REPRO_BENCH_WORKERS`` (default 1) sets the BatchRunner pool size the
harness-driven benchmarks fan out over; ``bench_batch.py`` compares
serial and pooled execution explicitly regardless of this setting.

Models are built once per session and shared across benchmarks.
"""

from __future__ import annotations

import os

import pytest

from repro.analysis.experiments import ExperimentConfig
from repro.models import (
    Raid5Params,
    build_raid5_availability,
    build_raid5_reliability,
)

SCALE = os.environ.get("REPRO_BENCH_SCALE", "small")
WORKERS = int(os.environ.get("REPRO_BENCH_WORKERS", "1"))

if SCALE == "paper":
    CONFIG = ExperimentConfig.paper(workers=WORKERS)
else:
    CONFIG = ExperimentConfig(workers=WORKERS)

GROUPS = CONFIG.groups
TIMES = CONFIG.times
EPS = CONFIG.eps


def pytest_report_header(config):
    return (f"repro benchmarks: scale={SCALE} groups={GROUPS} "
            f"times={TIMES} eps={EPS} workers={WORKERS}")


@pytest.fixture(scope="session")
def availability_models():
    """G -> (model, rewards) for the UA experiments."""
    out = {}
    for g in GROUPS:
        model, rewards, _ = build_raid5_availability(CONFIG.params_for(g))
        out[g] = (model, rewards)
    return out


@pytest.fixture(scope="session")
def reliability_models():
    """G -> (model, rewards) for the UR experiments."""
    out = {}
    for g in GROUPS:
        model, rewards, _ = build_raid5_reliability(CONFIG.params_for(g))
        out[g] = (model, rewards)
    return out


def sr_predicted_steps(model, rewards, t: float) -> int:
    """Predicted SR step count for a single horizon (used for skips)."""
    from repro.markov.rewards import Measure
    from repro.markov.standard import sr_required_steps
    return sr_required_steps(model.max_output_rate * t,
                             EPS / rewards.max_rate, Measure.TRR)
