"""Ablation — sensitivity to the regenerative-state choice (Section 2).

The paper: "its performance will be good when r is visited often in the
DTMC X̂". This ablation quantifies that on the RAID availability model:
the all-up state (visited constantly — repairs drive the chain back) vs
progressively rarer degraded states, measuring the truncation point K,
the excursion decay rate, and the wall time of a full RRL sweep.

Run:  pytest benchmarks/bench_ablation_regenerative.py --benchmark-only -q -s
"""

import numpy as np
import pytest

from benchmarks.conftest import EPS, GROUPS, TIMES
from repro import TRR, RRLSolver
from repro.analysis.convergence import excursion_decay
from repro.models import Raid5Params, build_raid5_availability
from repro.models.raid5 import FAILED


@pytest.fixture(scope="module")
def model_and_candidates():
    g = GROUPS[0]
    params = Raid5Params(groups=g)
    model, rewards, explored = build_raid5_availability(params)
    # all-up hub, a mildly degraded state, and a deeply degraded state.
    candidates = {
        "all-up (hub)": explored.state_index(params.initial_state),
        "1 disk failed": explored.state_index(
            (1, 0, 0, params.spare_disks, True, 0,
             params.spare_controllers)),
        "failed system": explored.state_index(FAILED),
    }
    return model, rewards, candidates


@pytest.mark.parametrize("label", ["all-up (hub)", "1 disk failed",
                                   "failed system"])
def test_regenerative_choice(benchmark, model_and_candidates, label,
                             capsys):
    model, rewards, candidates = model_and_candidates
    reg = candidates[label]
    times = [t for t in TIMES if t <= 1e4]

    def sweep():
        return RRLSolver(regenerative=reg).solve(model, rewards, TRR,
                                                 times, EPS)

    sol = benchmark.pedantic(sweep, rounds=1, iterations=1)
    fit = excursion_decay(model, reg, n_steps=150)
    with capsys.disabled():
        print(f"\nr = {label}: K+L per t = {list(map(int, sol.steps))}, "
              f"decay ρ ≈ {fit.rate:.4f}")
    # All choices must give the same answers...
    ref = RRLSolver().solve(model, rewards, TRR, times, EPS)
    assert np.allclose(sol.values, ref.values, atol=10 * EPS)


def test_hub_needs_fewest_steps(model_and_candidates):
    model, rewards, candidates = model_and_candidates
    t = [1e4]
    steps = {}
    for label, reg in candidates.items():
        sol = RRLSolver(regenerative=reg).solve(model, rewards, TRR, t,
                                                EPS)
        steps[label] = int(sol.steps[0])
    # ...but the frequently-visited hub needs the smallest K — the
    # paper's selection guidance, quantified.
    assert steps["all-up (hub)"] <= steps["1 disk failed"]
    assert steps["all-up (hub)"] < steps["failed system"]
