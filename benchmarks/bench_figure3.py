"""Figure 3 — CPU times of RRL vs RR vs RSD for UA(t) (log-log shape).

Each benchmark cell times one standalone solve at one horizon, as the
paper measured. Absolute seconds depend on the machine; the *shape* must
hold: RR's cost grows with Λt (its inner standard-randomization solve of
V_{K,L}), RSD's saturates after detection, RRL's stays flat-ish in t —
so for the largest horizons RRL ≲ RSD ≪ RR.

Run:  pytest benchmarks/bench_figure3.py --benchmark-only -q -s
"""

import pytest

from benchmarks.conftest import CONFIG, EPS, GROUPS, TIMES, sr_predicted_steps
from repro.analysis import get_solver
from repro.analysis.experiments import run_figure3
from repro.markov.rewards import Measure


def _cell(benchmark, model, rewards, method, t, **kwargs):
    solver = get_solver(method, **kwargs)

    def run():
        return solver.solve(model, rewards, Measure.TRR, [t], EPS)

    return benchmark.pedantic(run, rounds=1, iterations=1)


@pytest.mark.parametrize("t", TIMES)
@pytest.mark.parametrize("g", GROUPS)
def test_fig3_rrl(benchmark, availability_models, g, t):
    model, rewards = availability_models[g]
    sol = _cell(benchmark, model, rewards, "RRL", t)
    assert 0.0 <= sol.values[0] <= 1.0


@pytest.mark.parametrize("t", TIMES)
@pytest.mark.parametrize("g", GROUPS)
def test_fig3_rr(benchmark, availability_models, g, t):
    model, rewards = availability_models[g]
    predicted = sr_predicted_steps(model, rewards, t)
    if predicted > CONFIG.rr_inner_budget:
        pytest.skip(f"RR inner solve would need ~{predicted} steps")
    sol = _cell(benchmark, model, rewards, "RR", t,
                inner_max_steps=CONFIG.rr_inner_budget)
    assert 0.0 <= sol.values[0] <= 1.0


@pytest.mark.parametrize("t", TIMES)
@pytest.mark.parametrize("g", GROUPS)
def test_fig3_rsd(benchmark, availability_models, g, t):
    model, rewards = availability_models[g]
    sol = _cell(benchmark, model, rewards, "RSD", t)
    assert 0.0 <= sol.values[0] <= 1.0


def test_print_figure3(capsys):
    """Regenerate the full Figure-3 series with the harness and print it."""
    fig = run_figure3(CONFIG)
    with capsys.disabled():
        print()
        print(fig.render())
    # Shape assertion: at the largest horizon RRL beats RR wherever RR ran.
    for g in GROUPS:
        rrl = fig.series[f"G={g}, RRL"][-1]
        rr = fig.series[f"G={g}, RR"][-1]
        if rrl is not None and rr is not None:
            assert rrl < rr
