"""Figure 4 — CPU times of RRL vs RR vs SR for UR(t).

The paper's starkest plot: SR is slightly faster than everything for
small t but explodes linearly in Λt (2.4M steps at t = 10⁵ h for G=20),
while RRL stays flat. Over-budget SR cells are skipped, as running them
is precisely what the paper's method makes unnecessary.

Run:  pytest benchmarks/bench_figure4.py --benchmark-only -q -s
"""

import pytest

from benchmarks.conftest import CONFIG, EPS, GROUPS, TIMES, sr_predicted_steps
from repro.analysis import get_solver
from repro.analysis.experiments import run_figure4
from repro.markov.rewards import Measure


def _cell(benchmark, model, rewards, method, t, **kwargs):
    solver = get_solver(method, **kwargs)

    def run():
        return solver.solve(model, rewards, Measure.TRR, [t], EPS)

    return benchmark.pedantic(run, rounds=1, iterations=1)


@pytest.mark.parametrize("t", TIMES)
@pytest.mark.parametrize("g", GROUPS)
def test_fig4_rrl(benchmark, reliability_models, g, t):
    model, rewards = reliability_models[g]
    sol = _cell(benchmark, model, rewards, "RRL", t)
    assert 0.0 <= sol.values[0] <= 1.0


@pytest.mark.parametrize("t", TIMES)
@pytest.mark.parametrize("g", GROUPS)
def test_fig4_rr(benchmark, reliability_models, g, t):
    model, rewards = reliability_models[g]
    predicted = sr_predicted_steps(model, rewards, t)
    if predicted > CONFIG.rr_inner_budget:
        pytest.skip(f"RR inner solve would need ~{predicted} steps")
    sol = _cell(benchmark, model, rewards, "RR", t,
                inner_max_steps=CONFIG.rr_inner_budget)
    assert 0.0 <= sol.values[0] <= 1.0


@pytest.mark.parametrize("t", TIMES)
@pytest.mark.parametrize("g", GROUPS)
def test_fig4_sr(benchmark, reliability_models, g, t):
    model, rewards = reliability_models[g]
    predicted = sr_predicted_steps(model, rewards, t)
    if predicted > CONFIG.sr_step_budget:
        pytest.skip(f"SR would need ~{predicted} steps")
    sol = _cell(benchmark, model, rewards, "SR", t,
                max_steps=CONFIG.sr_step_budget)
    assert 0.0 <= sol.values[0] <= 1.0


def test_print_figure4(capsys):
    fig = run_figure4(CONFIG)
    with capsys.disabled():
        print()
        print(fig.render())
    # Shape: wherever both ran at the largest horizon, RRL beats SR.
    for g in GROUPS:
        rrl = fig.series[f"G={g}, RRL"][-1]
        sr = fig.series[f"G={g}, SR"][-1]
        if rrl is not None and sr is not None:
            assert rrl < sr
