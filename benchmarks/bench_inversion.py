"""In-text claims of Section 3: the Laplace inversion is a tiny share of
RRL's runtime (~1–2%) and consumes 105–329 abscissae at ε = 10⁻¹².

Measures both on the RAID workloads and asserts the same orders of
magnitude: inversion below ~15% of total (our transformation phase is
vectorized scipy, so the share is naturally a bit larger than on the
paper's 2000-era C implementation), abscissae within a comparable band.

Run:  pytest benchmarks/bench_inversion.py --benchmark-only -q -s
"""

import time

import numpy as np
import pytest

from benchmarks.conftest import EPS, GROUPS, TIMES
from repro import TRR, RRLSolver
from repro.core._setup import prepare
from repro.core.transforms import VklTransform
from repro.core.truncation import select_truncation
from repro.laplace.inversion import invert_bounded


@pytest.mark.parametrize("g", GROUPS)
def test_abscissa_counts(benchmark, reliability_models, g):
    """Count abscissae across the horizon sweep (paper: 105–329)."""
    model, rewards = reliability_models[g]

    def sweep():
        return RRLSolver().solve(model, rewards, TRR, list(TIMES), EPS)

    sol = benchmark.pedantic(sweep, rounds=1, iterations=1)
    absc = np.asarray(sol.stats["n_abscissae"])
    print(f"\nG={g}: abscissae per t = {list(absc)} "
          f"(paper band: 105–329)")
    assert absc.min() >= 20
    assert absc.max() <= 1000


@pytest.mark.parametrize("g", GROUPS)
def test_inversion_share_of_runtime(reliability_models, g, capsys):
    """Split RRL's runtime into transformation vs inversion phases."""
    model, rewards = reliability_models[g]
    t = TIMES[-1]
    r_max = rewards.max_rate

    start = time.perf_counter()
    setup = prepare(model, rewards, None, None)
    choice = select_truncation(setup.main, setup.primed, setup.rate, t,
                               EPS / 2.0, r_max)
    transform = VklTransform(
        setup.main.snapshot(),
        setup.primed.snapshot() if setup.primed is not None else None,
        choice.k_point, choice.l_point, setup.rate,
        setup.absorbing_rewards)
    t_transform = time.perf_counter() - start

    start = time.perf_counter()
    res = invert_bounded(transform.trr, t, eps=EPS, bound=r_max)
    t_invert = time.perf_counter() - start

    share = t_invert / (t_transform + t_invert)
    with capsys.disabled():
        print(f"\nG={g}, t={t:g}: transformation {t_transform:.3f}s, "
              f"inversion {t_invert:.4f}s ({100*share:.1f}% of total, "
              f"{res.n_abscissae} abscissae; paper: ~1–2%)")
    assert share < 0.25
