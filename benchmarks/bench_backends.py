"""Execution backends — serial vs threads vs processes, cold start included.

The acceptance bar for the backend layer: on the quick paper grid the
thread backend must beat the process pool (it pays no interpreter boot,
no pickle/IPC, and warms ONE process-wide cache set instead of one per
worker) while staying bit-identical to serial execution; and on the
10-cell RR/RRL memoization grid — the anchor case — the thread pool must
perform **one** schedule build total where the process pool pays one per
worker. The measurements also record where processes still win: task
functions that hold the GIL (pure-Python inner loops) serialize on a
thread pool but scale on a process pool when cores allow.

Run:  pytest benchmarks/bench_backends.py --benchmark-only -q -s
Emit: python benchmarks/bench_backends.py   (writes BENCH_backends.json)
"""

from __future__ import annotations

import json
import sys
import time

import numpy as np

from repro.analysis.experiments import ExperimentConfig, run_grid
from repro.batch.backends import BACKEND_NAMES, available_cpus
from repro.batch.kernel import kernel_build_count
from repro.batch.planner import worker_cache_clear, worker_cache_info
from repro.batch.runner import BatchRunner, BatchTask
from repro.core.schedule_cache import process_schedule_cache_info
from repro.service import SolveService

#: Pool width for the pooled backends. The quick grid has O(10) cells;
#: 4 matches a small CI machine and makes the per-worker cold-cache tax
#: of the process pool visible (threads warm ONE cache set regardless).
_WORKERS = 4


def _grid_config(backend: str) -> ExperimentConfig:
    workers = 1 if backend == "serial" else _WORKERS
    return ExperimentConfig.quick(workers=workers, backend=backend)


def _run_quick_grid(backend: str) -> tuple[dict, float]:
    """One cold run of the quick measure grid on ``backend``.

    Cold means cold: the process-wide caches are dropped first, so the
    thread backend warms its single shared cache set during the run and
    the process pool's forked workers inherit nothing — exactly the
    first-run cost a user pays.
    """
    worker_cache_clear()
    t0 = time.perf_counter()
    result = run_grid(_grid_config(backend), include_timings=False)
    return result, time.perf_counter() - t0


def quick_grid_measurements() -> dict:
    """Cold quick-grid wall-clock per backend, bit-identity asserted."""
    runs = {}
    reference = None
    for backend in BACKEND_NAMES:
        result, seconds = _run_quick_grid(backend)
        runs[backend] = seconds
        if reference is None:
            reference = result
        else:
            assert result.table1.columns == reference.table1.columns
            assert result.table2.columns == reference.table2.columns
            assert result.ur_values == reference.ur_values
    return {
        "workers": _WORKERS,
        "seconds": runs,
        "threads_speedup_vs_processes": runs["processes"] / runs["threads"],
        "threads_speedup_vs_serial": runs["serial"] / runs["threads"],
        "bit_identical": True,
    }


def memo_grid_measurements() -> dict:
    """The shared-cache anchor: the 10-cell RR/RRL memoization grid.

    Threads must build one kernel and one schedule transformation
    *total*; each process worker builds its own (one per worker, visible
    through the per-cell ``schedule_cache_hit`` stats). Numbers must be
    bit-identical across all three backends.
    """
    try:
        from benchmarks.bench_batch import _regenerative_grid_requests
    except ModuleNotFoundError:
        # Script execution (`python benchmarks/bench_backends.py`) puts
        # benchmarks/ itself on sys.path, not the repo root the package
        # import needs — add it and retry.
        from pathlib import Path
        sys.path.insert(0, str(Path(__file__).resolve().parent.parent))
        from benchmarks.bench_batch import _regenerative_grid_requests

    requests = _regenerative_grid_requests()
    # RR cells additionally build one kernel per time point for their
    # inner SR solve of the *transformed* V_KL model — a genuinely new
    # model each time, outside the sharing claim (which is about the
    # grid's base model).
    inner_builds = sum(len(r.times) for r in requests if r.method == "RR")
    per_backend: dict[str, dict] = {}
    reference = None
    for backend in BACKEND_NAMES:
        workers = 1 if backend == "serial" else _WORKERS
        worker_cache_clear()
        builds_before = kernel_build_count()
        t0 = time.perf_counter()
        outcomes = SolveService(workers=workers,
                                backend=backend).solve(requests)
        seconds = time.perf_counter() - t0
        assert all(o.ok for o in outcomes), \
            [o.error for o in outcomes if not o.ok]
        if reference is None:
            reference = outcomes
        else:
            for got, ref in zip(outcomes, reference):
                assert np.array_equal(got.value.values, ref.value.values)
                assert np.array_equal(got.value.steps, ref.value.steps)
        schedule_builds = sum(
            1 for o in outcomes
            if not o.value.stats.get("schedule_cache_hit", False))
        stats = {"seconds": seconds,
                 "workers": workers,
                 "schedule_builds": schedule_builds}
        if backend != "processes":
            # In-process backends expose the shared counters directly;
            # process workers die with their caches, so their build
            # count is read off the per-cell stats above instead.
            stats["kernel_builds"] = kernel_build_count() - builds_before
            stats["schedule_cache"] = process_schedule_cache_info()
            stats["worker_cache"] = worker_cache_info()
        per_backend[backend] = stats

    assert per_backend["threads"]["schedule_builds"] == 1
    assert per_backend["threads"]["kernel_builds"] == 1 + inner_builds
    assert per_backend["threads"]["worker_cache"]["misses"] == 1
    assert 1 <= per_backend["processes"]["schedule_builds"] <= _WORKERS
    return {"n_cells": len(requests),
            "per_backend": per_backend,
            "threads_speedup_vs_processes":
                per_backend["processes"]["seconds"]
                / per_backend["threads"]["seconds"],
            "bit_identical": True}


def _spin(n: int) -> int:
    """A GIL-bound control task: pure-Python arithmetic, no numpy."""
    acc = 0
    for i in range(n):
        acc = (acc * 1103515245 + i) % 2147483647
    return acc


def gil_bound_measurements(n_tasks: int = 8, n_iter: int = 400_000) -> dict:
    """Where processes still win: tasks that never release the GIL.

    A pure-Python inner loop serializes on the thread pool (plus lock
    traffic), while the process pool runs it truly in parallel when the
    machine has spare cores. On a single-CPU machine neither pool can
    parallelize and the process pool's fork/IPC overhead dominates — the
    recorded CPU count lets readers interpret the numbers.
    """
    tasks = [BatchTask(fn=_spin, args=(n_iter,), key=i)
             for i in range(n_tasks)]
    seconds = {}
    reference = None
    for backend in BACKEND_NAMES:
        workers = 1 if backend == "serial" else _WORKERS
        t0 = time.perf_counter()
        outs = BatchRunner(max_workers=workers, backend=backend).run(tasks)
        seconds[backend] = time.perf_counter() - t0
        values = [o.value for o in outs]
        assert all(o.ok for o in outs)
        if reference is None:
            reference = values
        else:
            assert values == reference
    return {"n_tasks": n_tasks, "n_iter": n_iter, "seconds": seconds,
            "processes_speedup_vs_threads":
                seconds["threads"] / seconds["processes"]}


def backend_measurements() -> dict:
    """Everything ``BENCH_backends.json`` records — the first entry in
    the perf trajectory (later PRs append comparable snapshots)."""
    return {
        "bench": "backends",
        "schema_version": 1,
        "host": {"cpus": available_cpus(),
                 "python": sys.version.split()[0]},
        "quick_grid": quick_grid_measurements(),
        "memo_grid": memo_grid_measurements(),
        "gil_bound_control": gil_bound_measurements(),
        "notes": (
            "threads share one process-wide kernel/window/schedule cache "
            "set (cold start paid once per model, zero serialization); "
            "processes pay pool boot + pickle/IPC + one cold cache set "
            "per worker but isolate crashes and win on GIL-bound task "
            "functions when cpus > 1"),
    }


def test_thread_backend_beats_process_pool(benchmark):
    """The backend acceptance case: on the quick grid (cold start
    included) the thread backend must beat the process pool while staying
    bit-identical, and on the memoization grid it must pay ONE schedule
    build total (the process pool pays one per worker)."""
    stats = benchmark.pedantic(backend_measurements, rounds=1, iterations=1)

    quick = stats["quick_grid"]
    memo = stats["memo_grid"]
    print(f"\nquick grid (cold, {quick['workers']} workers): "
          + ", ".join(f"{b} {quick['seconds'][b]:.2f}s"
                      for b in BACKEND_NAMES)
          + f" -> threads {quick['threads_speedup_vs_processes']:.1f}x "
            "vs processes")
    print(f"memo grid ({memo['n_cells']} RR/RRL cells): "
          + ", ".join(
              f"{b} {memo['per_backend'][b]['seconds']:.2f}s "
              f"({memo['per_backend'][b]['schedule_builds']} builds)"
              for b in BACKEND_NAMES))
    assert quick["bit_identical"] and memo["bit_identical"]
    assert memo["per_backend"]["threads"]["schedule_builds"] == 1
    # Wall-clock comparison: the threaded run does strictly less setup
    # work and ships zero bytes, so it must win whenever the grid is
    # slow enough to time at all.
    if quick["seconds"]["processes"] > 0.5:
        assert quick["threads_speedup_vs_processes"] > 1.0, quick


if __name__ == "__main__":
    out = backend_measurements()
    path = "BENCH_backends.json"
    if len(sys.argv) > 1:
        path = sys.argv[1]
    with open(path, "w") as fh:
        json.dump(out, fh, indent=2)
    q = out["quick_grid"]
    print(f"wrote {path}: quick grid threads "
          f"{q['threads_speedup_vs_processes']:.2f}x vs processes, "
          f"memo grid {out['memo_grid']['per_backend']['threads']['schedule_builds']} "
          "thread build(s)")
