"""Ablation — the period parameter T of Durbin's formula (Section 2.2).

The paper reports: Crump's choice ``T = t`` is fast but *sometimes
unstable*; Piessens–Huysmans' ``T = 16t`` is very stable but much slower;
``T = 8t`` is the sweet spot. This ablation sweeps
``T/t ∈ {1, 2, 4, 8, 16}`` over the RAID unreliability workload and
reports, per choice: failures/instabilities, max deviation from the SR
reference, and abscissa counts — regenerating the experiment behind the
paper's design decision.

Run:  pytest benchmarks/bench_ablation_tfactor.py --benchmark-only -q -s
"""

import numpy as np
import pytest

from benchmarks.conftest import EPS, GROUPS, TIMES
from repro import TRR, RRLSolver, StandardRandomizationSolver
from repro.exceptions import InversionError

T_FACTORS = (1.0, 2.0, 4.0, 8.0, 16.0)


@pytest.fixture(scope="module")
def reference(reliability_models):
    """High-accuracy reference values for the smallest model at moderate
    horizons (SR is exact-to-budget there)."""
    g = GROUPS[0]
    model, rewards = reliability_models[g]
    times = [t for t in TIMES if model.max_output_rate * t <= 2e5]
    ref = StandardRandomizationSolver().solve(model, rewards, TRR, times,
                                              1e-13)
    return g, model, rewards, times, ref.values


@pytest.mark.parametrize("t_factor", T_FACTORS)
def test_tfactor_sweep(benchmark, reference, t_factor, capsys):
    g, model, rewards, times, ref_values = reference

    def run():
        try:
            return RRLSolver(t_factor=t_factor).solve(
                model, rewards, TRR, times, EPS)
        except InversionError:
            return None

    sol = benchmark.pedantic(run, rounds=1, iterations=1)
    if sol is None:
        with capsys.disabled():
            print(f"\nT={t_factor:g}·t: inversion did not settle "
                  "(instability — the paper saw this for small T)")
        return
    dev = float(np.max(np.abs(sol.values - ref_values)))
    absc = np.asarray(sol.stats["n_abscissae"])
    with capsys.disabled():
        print(f"\nT={t_factor:g}·t: max|dev|={dev:.2e}, abscissae "
              f"{absc.min()}–{absc.max()}")
    if t_factor >= 8.0:
        # The paper's chosen regime must honour the error budget.
        assert dev <= 10 * EPS


def test_paper_default_is_8(reference):
    g, model, rewards, times, ref_values = reference
    sol = RRLSolver().solve(model, rewards, TRR, times, EPS)
    assert sol.stats["t_factor"] == 8.0
