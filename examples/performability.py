#!/usr/bin/env python
"""Performability: expected RAID-5 throughput, instant and interval.

Dependability models become *performability* models as soon as the reward
structure is richer than a 0/1 indicator (the paper's framework covers
arbitrary r_i >= 0, with distinct rewards allowed on absorbing states).
This example attaches a throughput reward to the RAID-5 availability
model — full-speed groups earn 1, degraded groups 0.5, reconstructing
groups 0.7 (rebuild traffic steals bandwidth), a down system 0 — and
computes the expected throughput TRR(t) and the accumulated average
MRR(t) with RRL, cross-checked against standard randomization.

Run:  python examples/performability.py
"""

import os
import time

import numpy as np

from repro import MRR, TRR, RRLSolver, StandardRandomizationSolver
from repro.analysis.reporting import format_table
from repro.models import (
    Raid5Params,
    build_raid5_availability,
    raid5_performability_rewards,
)

TIMES = [1.0, 10.0, 1e2, 1e3, 1e4]
EPS = 1e-10


def main() -> None:
    g = int(os.environ.get("REPRO_G", "10"))
    params = Raid5Params(groups=g)
    model, _ua_rewards, explored = build_raid5_availability(params)
    rewards = raid5_performability_rewards(explored, params)
    print(f"RAID-5 performability: G={g}, reward = expected group "
          f"throughput (max {rewards.max_rate:g})")

    t0 = time.perf_counter()
    trr = RRLSolver().solve(model, rewards, TRR, TIMES, eps=EPS)
    mrr = RRLSolver().solve(model, rewards, MRR, TIMES, eps=EPS)
    elapsed = time.perf_counter() - t0

    # Cross-check the smaller horizons against standard randomization.
    check_times = TIMES[:4]
    sr_trr = StandardRandomizationSolver().solve(model, rewards, TRR,
                                                 check_times, eps=EPS)
    sr_mrr = StandardRandomizationSolver().solve(model, rewards, MRR,
                                                 check_times, eps=EPS)
    max_dev = max(
        float(np.max(np.abs(sr_trr.values - trr.values[:4]))),
        float(np.max(np.abs(sr_mrr.values - mrr.values[:4]))))

    rows = []
    for i, t in enumerate(TIMES):
        loss_pct = 100.0 * (1.0 - trr.values[i] / g)
        rows.append([f"{t:g}", f"{trr.values[i]:.6f}",
                     f"{mrr.values[i]:.6f}", f"{loss_pct:.4f}%"])
    print(format_table(
        f"Expected throughput (g groups ⇒ max {g})   [{elapsed:.2f}s via RRL]",
        ["t (h)", "TRR(t)", "MRR(t)", "capacity loss"],
        rows,
        note=f"max deviation vs standard randomization on t<=1e3: "
             f"{max_dev:.2e} (ε={EPS:g})"))


if __name__ == "__main__":
    main()
