#!/usr/bin/env python
"""The paper's headline experiment: RAID-5 unreliability UR(t) via RRL.

Builds the absorbing (reliability) variant of the Section-3 RAID-5 model,
solves UR(t) over the paper's horizon sweep with the RRL method, and
prints the step counts next to the paper's Table 2 plus the in-text
UR(10⁵) reference values. Standard randomization would need ~2.4 million
steps for the largest horizon (Table 2); RRL needs ~3200.

Run:  python examples/raid5_unreliability.py            (G=20, fast)
      REPRO_G=40 python examples/raid5_unreliability.py (paper's big model)
"""

import os
import time

from repro import TRR, RRLSolver
from repro.analysis.experiments import PAPER_TABLE2, PAPER_UR_1E5
from repro.analysis.reporting import format_table
from repro.models import Raid5Params, build_raid5_reliability

TIMES = [1.0, 10.0, 1e2, 1e3, 1e4, 1e5]
EPS = 1e-12


def main() -> None:
    g = int(os.environ.get("REPRO_G", "20"))
    params = Raid5Params(groups=g)
    model, rewards, _ = build_raid5_reliability(params)
    print(f"RAID-5 reliability model: G={g}, N={params.disks_per_group}, "
          f"C_H={params.spare_controllers}, D_H={params.spare_disks}")
    print(f"  states={model.n_states}, transitions={model.n_transitions}, "
          f"Λ={model.max_output_rate:.4f}/h")

    start = time.perf_counter()
    sol = RRLSolver().solve(model, rewards, TRR, TIMES, eps=EPS)
    elapsed = time.perf_counter() - start

    paper_steps = PAPER_TABLE2.get(g, (None, None))[0]
    rows = []
    for i, t in enumerate(TIMES):
        rows.append([
            f"{t:g}",
            f"{sol.values[i]:.5f}",
            int(sol.steps[i]),
            paper_steps[i] if paper_steps else None,
            int(sol.stats["n_abscissae"][i]),
        ])
    note = None
    if g in PAPER_TABLE2:
        note = (f"paper reports UR(1e5) = {PAPER_UR_1E5[g]} for G={g}; "
                f"SR would need {PAPER_TABLE2[g][1][-1]:,} steps at t=1e5.")
    print(format_table(
        f"UR(t), ε={EPS:g}  (solved in {elapsed:.2f}s total)",
        ["t (h)", "UR(t)", "steps", "paper steps", "abscissae"],
        rows, note=note))


if __name__ == "__main__":
    main()
