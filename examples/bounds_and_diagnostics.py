#!/usr/bin/env python
"""Certified bounds, MTTF, and regenerative-state diagnostics.

Three production niceties built on the paper's machinery:

1. **Certified two-sided bounds** — the truncated model V_{K,L}
   under-counts rewards, and the closed-form transform of the truncation
   state's probability turns that into an a-posteriori sandwich
   ``lower <= UR(t) <= upper`` (the bounding idea of the paper's
   reference [2]);
2. **MTTF cross-check** — the mean time to absorption from a sparse
   linear solve must be consistent with RRL's UR(t) when the failure
   time is near-exponential (cv² ≈ 1);
3. **Regenerative-state diagnostics** — fitting the excursion decay
   a(k) ≈ c·ρ^k predicts the truncation point K(t) before solving, and
   ranks candidate regenerative states (the paper's selection guidance).

Run:  python examples/bounds_and_diagnostics.py
"""

import numpy as np

from repro import TRR, RRLBoundsSolver
from repro.analysis.convergence import (
    compare_regenerative_states,
    excursion_decay,
    predict_truncation,
)
from repro.analysis.reporting import format_table
from repro.markov.mttf import mean_time_to_absorption
from repro.models import Raid5Params, build_raid5_reliability

G = 8
TIMES = [1e2, 1e3, 1e4, 1e5]


def main() -> None:
    params = Raid5Params(groups=G)
    model, rewards, _ = build_raid5_reliability(params)
    print(f"RAID-5 reliability model, G={G}: {model.n_states} states\n")

    # 1 — certified bounds.
    b = RRLBoundsSolver().solve_bounds(model, rewards, TRR, TIMES,
                                       eps=1e-12)
    rows = [[f"{t:g}", f"{lo:.8e}", f"{up:.8e}", f"{w:.1e}"]
            for t, lo, up, w in zip(TIMES, b.lower, b.upper, b.width)]
    print(format_table("Certified bounds on UR(t)  (width = realized "
                       "truncation loss)",
                       ["t (h)", "lower", "upper", "width"], rows))

    # 2 — MTTF consistency.
    at = mean_time_to_absorption(model)
    print(f"\nMTTF = {at.mean:.4e} h (cv² = {at.cv2:.4f}; ≈1 ⇒ "
          "failure time ≈ exponential)")
    approx = 1.0 - np.exp(-np.asarray(TIMES) / at.mean)
    worst = np.max(np.abs(approx - b.midpoint) / np.maximum(b.midpoint,
                                                            1e-300))
    print(f"max relative gap UR(t) vs 1−exp(−t/MTTF): {worst:.2%}")

    # 3 — regenerative-state diagnostics.
    fit = excursion_decay(model, 0, n_steps=300)
    print(f"\nexcursion decay from the all-up state: a(k) ≈ "
          f"{fit.amplitude:.3g}·{fit.rate:.4f}^k")
    for t in (1e3, 1e5):
        k_pred = predict_truncation(fit, model.max_output_rate, t, 1e-12)
        print(f"  predicted K({t:g} h) ≈ {k_pred}")
    ranked = compare_regenerative_states(model)
    best_state, best_fit = ranked[0]
    worst_state, worst_fit = ranked[-1]
    print(f"best regenerative candidate: index {best_state} "
          f"(ρ = {best_fit.rate:.4f}); worst of the shortlist: index "
          f"{worst_state} (ρ = {worst_fit.rate:.4f})")


if __name__ == "__main__":
    main()
