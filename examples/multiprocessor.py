#!/usr/bin/env python
"""Fault-tolerant multiprocessor: coverage study with cross-validation.

The second domain workload (beyond RAID): ``n_p`` processors + ``n_m``
memories with imperfect failure coverage and a single repairman — the
model family the regenerative-randomization papers motivate. The script

* sweeps the coverage knob and reports unreliability, MTTF and the
  steady-state computing capacity,
* cross-validates every point with the method-agreement matrix
  (RRL vs RR vs SR — independent code paths).

Run:  python examples/multiprocessor.py
"""

import numpy as np

from repro import TRR, RRLSolver
from repro.analysis.reporting import format_table
from repro.analysis.validation import cross_validate
from repro.markov.mttf import mean_time_to_absorption
from repro.markov.steady_state import stationary_distribution
from repro.models import (
    MultiprocessorParams,
    build_multiprocessor_availability,
    build_multiprocessor_reliability,
    multiprocessor_capacity_rewards,
)

MISSION = 1000.0  # hours
COVERAGES = [0.999, 0.99, 0.95, 0.9]


def main() -> None:
    rows = []
    for cov in COVERAGES:
        params = MultiprocessorParams(coverage=cov)
        rel_model, rel_rewards, _ = build_multiprocessor_reliability(params)
        ur = RRLSolver().solve(rel_model, rel_rewards, TRR, [MISSION],
                               eps=1e-12).values[0]
        mttf = mean_time_to_absorption(rel_model).mean

        av_model, av_rewards, explored = \
            build_multiprocessor_availability(params)
        capacity = multiprocessor_capacity_rewards(explored, params)
        pi = stationary_distribution(av_model)
        cap_inf = capacity.expectation(pi)

        report = cross_validate(av_model, av_rewards, TRR,
                                [1.0, MISSION], eps=1e-10)
        rows.append([f"{cov:g}", f"{ur:.4e}", f"{mttf:.4g}",
                     f"{cap_inf:.5f}",
                     "ok" if report.passed else "FAIL"])
    print(format_table(
        f"Multiprocessor ({MultiprocessorParams().processors}P/"
        f"{MultiprocessorParams().memories}M), mission {MISSION:g} h — "
        "effect of failure coverage",
        ["coverage", f"UR({MISSION:g})", "MTTF (h)",
         "capacity(∞)", "x-validation"], rows,
        note="Uncovered failures dominate system failure: each 10× drop "
             "in (1−coverage) buys ~10× MTTF."))


if __name__ == "__main__":
    main()
