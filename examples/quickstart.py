#!/usr/bin/env python
"""Quickstart: transient analysis of a repairable two-state system.

Builds the smallest meaningful dependability model (a machine failing at
rate λ and repaired at rate μ), computes its point unavailability UA(t)
and interval unavailability MRR(t) with every solver in the package, and
checks them against the closed-form answers.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import MRR, TRR, TransientSolution
from repro.analysis import solve
from repro.models import two_state_availability

FAIL, REPAIR = 1.0, 10.0
TIMES = [0.01, 0.1, 1.0, 10.0, 100.0]
EPS = 1e-10


def exact_ua(t: np.ndarray) -> np.ndarray:
    s = FAIL + REPAIR
    return FAIL / s * (1.0 - np.exp(-s * t))


def exact_mrr(t: np.ndarray) -> np.ndarray:
    s = FAIL + REPAIR
    return FAIL / s * (1.0 - (1.0 - np.exp(-s * t)) / (s * t))


def report(tag: str, sol: TransientSolution, exact: np.ndarray) -> None:
    err = np.max(np.abs(sol.values - exact))
    print(f"  {tag:4s} max|err| = {err:.2e}   steps = {list(sol.steps)}")


def main() -> None:
    model, rewards = two_state_availability(FAIL, REPAIR)
    t = np.asarray(TIMES)

    print(f"Two-state availability model: λ={FAIL}, μ={REPAIR}, ε={EPS}")
    print(f"UA(t) at t = {TIMES}:")
    print("  exact:", np.array2string(exact_ua(t), precision=6))
    for method in ("RRL", "RR", "SR", "RSD", "AU", "ODE"):
        sol = solve(model, rewards, TRR, TIMES, eps=EPS, method=method)
        report(method, sol, exact_ua(t))

    print("\nMRR(t) (interval unavailability):")
    print("  exact:", np.array2string(exact_mrr(t), precision=6))
    for method in ("RRL", "RR", "SR", "ODE"):
        sol = solve(model, rewards, MRR, TIMES, eps=EPS, method=method)
        report(method, sol, exact_mrr(t))

    print("\nAll methods agree with the closed forms within ε — see "
          "examples/raid5_unreliability.py for the paper's real workload.")


if __name__ == "__main__":
    main()
