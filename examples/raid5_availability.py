#!/usr/bin/env python
"""RAID-5 point unavailability UA(t): RRL vs steady-state detection.

The irreducible (availability) variant of the paper's RAID-5 model. For
large t the unavailability saturates at the steady-state value; RSD
exploits that by capping its step count at the detection point, while
RRL's step count keeps growing only logarithmically — the two are the
competitive pair of the paper's Table 1 / Figure 3.

Run:  python examples/raid5_availability.py             (G=10, fast)
      REPRO_G=20 python examples/raid5_availability.py  (paper scale)
"""

import os
import time

from repro import TRR, RRLSolver, SteadyStateDetectionSolver
from repro.analysis.reporting import format_table
from repro.markov.steady_state import stationary_distribution
from repro.models import Raid5Params, build_raid5_availability

TIMES = [1.0, 10.0, 1e2, 1e3, 1e4, 1e5]
EPS = 1e-12


def main() -> None:
    g = int(os.environ.get("REPRO_G", "10"))
    params = Raid5Params(groups=g)
    model, rewards, _ = build_raid5_availability(params)
    print(f"RAID-5 availability model: G={g} — states={model.n_states}, "
          f"transitions={model.n_transitions}, Λ={model.max_output_rate:.4f}/h")

    t0 = time.perf_counter()
    rrl = RRLSolver().solve(model, rewards, TRR, TIMES, eps=EPS)
    t_rrl = time.perf_counter() - t0
    t0 = time.perf_counter()
    rsd = SteadyStateDetectionSolver().solve(model, rewards, TRR, TIMES,
                                             eps=EPS)
    t_rsd = time.perf_counter() - t0

    pi_inf = stationary_distribution(model)
    ua_inf = rewards.expectation(pi_inf)

    rows = []
    for i, t in enumerate(TIMES):
        rows.append([f"{t:g}", f"{rrl.values[i]:.6e}",
                     f"{abs(rrl.values[i] - rsd.values[i]):.1e}",
                     int(rrl.steps[i]), int(rsd.steps[i])])
    print(format_table(
        f"UA(t), ε={EPS:g}   (RRL {t_rrl:.2f}s, RSD {t_rsd:.2f}s)",
        ["t (h)", "UA(t) via RRL", "|RRL−RSD|", "RRL steps", "RSD steps"],
        rows,
        note=f"steady-state unavailability UA(∞) = {ua_inf:.6e} "
             f"(RSD detection step k_ss = {rsd.stats['k_ss']})"))


if __name__ == "__main__":
    main()
