#!/usr/bin/env python
"""Building a custom dependability model with the state-space builder.

Shows the workflow a downstream user follows for their own system: write
a transition function over symbolic states, explore it into a CTMC, pick
a reward structure and solve — here a 2-cluster system where each cluster
has 3 servers and a shared repairman, with imperfect failure coverage.
Also demonstrates how the choice of regenerative state affects RR/RRL
step counts (the paper: performance is good when r is visited often).

Run:  python examples/custom_model.py
"""

import time

from repro import TRR, RewardStructure, RRLSolver
from repro.analysis.reporting import format_table
from repro.models import StateSpaceBuilder

SERVERS = 3
FAIL = 1e-3       # per-server failure rate (1/h)
REPAIR = 0.5      # repair rate, one repairman per cluster
COVERAGE = 0.98   # probability a failure is caught by failover
TIMES = [1.0, 10.0, 100.0, 1000.0, 10000.0]
EPS = 1e-10

# Symbolic state: (failed_in_cluster_A, failed_in_cluster_B).
# A cluster is down when all SERVERS servers failed; an uncovered failure
# takes the whole cluster down at once. System reward: 1 while *either*
# cluster is down (system-level unavailability).


def transitions(state):
    a, b = state
    for idx, failed in ((0, a), (1, b)):
        up = SERVERS - failed
        if up > 0:
            covered = up * FAIL * COVERAGE
            uncovered = up * FAIL * (1.0 - COVERAGE)
            nxt = (failed + 1, b) if idx == 0 else (a, failed + 1)
            down = (SERVERS, b) if idx == 0 else (a, SERVERS)
            yield nxt, covered
            yield down, uncovered
        if failed > 0:
            fixed = (failed - 1, b) if idx == 0 else (a, failed - 1)
            yield fixed, REPAIR


def main() -> None:
    explored = StateSpaceBuilder(transitions).explore((0, 0))
    model = explored.model
    down_states = [i for s, i in explored.index.items()
                   if SERVERS in s]
    rewards = RewardStructure.indicator(model.n_states, down_states)
    print(f"2-cluster model: {model.n_states} states, "
          f"{model.n_transitions} transitions, Λ={model.max_output_rate:g}")

    rows = []
    for reg_label, reg_state in [("(0,0) — hub", (0, 0)),
                                 ("(2,2) — rare", (2, 2))]:
        solver = RRLSolver(regenerative=explored.state_index(reg_state))
        t0 = time.perf_counter()
        sol = solver.solve(model, rewards, TRR, TIMES, eps=EPS)
        dt = time.perf_counter() - t0
        rows.append([reg_label, f"{sol.values[-1]:.6e}",
                     int(sol.steps[0]), int(sol.steps[-1]), f"{dt*1e3:.1f}"])
    print(format_table(
        "Effect of the regenerative-state choice on RRL",
        ["regenerative r", "UA(1e4)", "steps@t=1", "steps@t=1e4", "ms"],
        rows,
        note="A frequently-visited r keeps the excursion survival a(k) "
             "decaying fast, hence small K — the paper's selection "
             "guidance in Section 2."))


if __name__ == "__main__":
    main()
