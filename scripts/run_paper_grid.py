#!/usr/bin/env python
"""Run the paper's evaluation grid through the parallel BatchRunner.

Default: the paper's exact grid (G ∈ {20, 40}, t up to 10⁵ h) fanned over
a process pool. ``--quick`` switches to a seconds-scale smoke grid for CI;
``--verify`` re-runs the measure columns serially and asserts the parallel
results are identical (the batch decomposition must never change a
number).

Examples
--------
    python scripts/run_paper_grid.py                 # paper grid, pooled
    python scripts/run_paper_grid.py --workers 8
    python scripts/run_paper_grid.py --quick --verify
    python scripts/run_paper_grid.py --serial --json out.json
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import sys
import time

from repro.analysis.experiments import (
    ExperimentConfig,
    GridResult,
    run_grid,
)
from repro.batch.runner import available_cpus
from repro.models import build_raid5_availability


def _default_workers() -> int:
    # The grid has O(10) column tasks; ≥ 2 keeps the pooled path exercised
    # even on small machines, more than 8 buys nothing.
    return max(2, min(8, available_cpus()))


def make_config(args: argparse.Namespace) -> ExperimentConfig:
    workers = 1 if args.serial else args.workers
    if args.quick:
        return ExperimentConfig(groups=(2, 3), times=(1.0, 10.0, 100.0),
                                eps=1e-10, sr_step_budget=200_000,
                                workers=workers)
    return ExperimentConfig.paper(workers=workers)


def verify_against_serial(config: ExperimentConfig,
                          pooled: GridResult) -> None:
    """Assert the pooled run matches a fresh serial run exactly."""
    serial = run_grid(dataclasses.replace(config, workers=1),
                      include_timings=False)
    if serial.table1.columns != pooled.table1.columns:
        raise AssertionError("Table 1 differs between serial and pooled run")
    if serial.table2.columns != pooled.table2.columns:
        raise AssertionError("Table 2 differs between serial and pooled run")
    for g, vals in serial.ur_values.items():
        pv = pooled.ur_values[g]
        if any(abs(a - b) > config.eps for a, b in zip(vals, pv)):
            raise AssertionError(f"UR values differ for G={g}")
    print(f"verify: pooled ({config.workers} workers) == serial — OK",
          flush=True)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="seconds-scale smoke grid (CI)")
    parser.add_argument("--workers", type=int, default=_default_workers(),
                        help="process-pool size (default: min(8, CPUs), "
                             "at least 2)")
    parser.add_argument("--serial", action="store_true",
                        help="force inline execution (workers=1)")
    parser.add_argument("--no-timings", action="store_true",
                        help="skip the Figure 3/4 timing sweeps")
    parser.add_argument("--verify", action="store_true",
                        help="re-run measure columns serially and compare")
    parser.add_argument("--json", metavar="PATH",
                        help="dump the full grid result as JSON")
    args = parser.parse_args(argv)
    if args.workers < 1:
        parser.error("--workers must be >= 1")

    config = make_config(args)
    mode = "serial" if config.workers == 1 else f"{config.workers} workers"
    print(f"== paper grid ({'quick' if args.quick else 'paper'} scale, "
          f"{mode}) ==", flush=True)
    if not args.no_timings and config.workers > 1:
        print(f"note: {config.workers} workers — the Figure 3/4 cells are "
              "timed while other columns share the machine, so the "
              "seconds include pool contention; use --serial for "
              "paper-comparable timings (measure values and step counts "
              "are unaffected)", flush=True)
    print("== models ==", flush=True)
    for g in config.groups:
        m, _, _ = build_raid5_availability(config.params_for(g))
        print(f"G={g}: states={m.n_states} transitions={m.n_transitions} "
              f"Lambda={m.max_output_rate:.4f}", flush=True)

    t0 = time.time()
    result = run_grid(config, include_timings=not args.no_timings)
    elapsed = time.time() - t0
    print(result.render(), flush=True)
    print(f"\nTOTAL {elapsed:.1f}s ({mode})", flush=True)

    if args.verify:
        verify_against_serial(config, result)
    if args.json:
        payload = result.to_dict()
        payload["elapsed_seconds"] = elapsed
        payload["workers"] = config.workers
        with open(args.json, "w") as fh:
            json.dump(payload, fh, indent=2)
        print(f"wrote {args.json}", flush=True)
    return 0


if __name__ == "__main__":
    sys.exit(main())
