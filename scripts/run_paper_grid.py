import time, json
from repro.analysis.experiments import (ExperimentConfig, run_table1, run_table2,
                                        run_figure3, run_figure4, PAPER_UR_1E5)
from repro.models import Raid5Params, build_raid5_reliability, build_raid5_availability
from repro import RRLSolver, TRR, MRR

cfg = ExperimentConfig.paper()
t0 = time.time()
print("== models ==", flush=True)
for g in (20, 40):
    m, rw, _ = build_raid5_availability(cfg.params_for(g))
    print(f"G={g}: states={m.n_states} transitions={m.n_transitions} Lambda={m.max_output_rate:.4f}", flush=True)
print("\n== Table 1 ==", flush=True)
print(run_table1(cfg).render(), flush=True)
print("\n== Table 2 ==", flush=True)
print(run_table2(cfg).render(), flush=True)
print("\n== UR values + abscissae ==", flush=True)
for g in (20, 40):
    m, rw, _ = build_raid5_reliability(cfg.params_for(g))
    sol = RRLSolver().solve(m, rw, TRR, list(cfg.times), 1e-12)
    print(f"G={g} UR:", ["%.5f" % v for v in sol.values],
          "abscissae:", list(map(int, sol.stats["n_abscissae"])),
          f"(paper UR(1e5)={PAPER_UR_1E5[g]})", flush=True)
print("\n== Figure 3 ==  (elapsed %.0fs)" % (time.time()-t0), flush=True)
print(run_figure3(cfg).render(), flush=True)
print("\n== Figure 4 ==  (elapsed %.0fs)" % (time.time()-t0), flush=True)
print(run_figure4(cfg).render(), flush=True)
print("\nTOTAL %.0fs" % (time.time()-t0), flush=True)
