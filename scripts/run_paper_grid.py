#!/usr/bin/env python
"""Run the paper's evaluation grid through the fused parallel batch stack.

Default: the paper's exact grid (G ∈ {20, 40}, t up to 10⁵ h) compiled by
the fusion planner (duplicate solves coalesce, unfused cells share one
kernel per worker) and fanned over an execution backend (``--backend``:
process pool by default, GIL-releasing thread pool with shared caches,
or inline serial; ``$REPRO_BACKEND`` supplies the default). ``--quick``
switches to a seconds-scale smoke grid for CI; ``--no-fuse`` disables
the planner (one task per cell, the PR-1 execution shape); ``--verify``
re-runs the measure columns unfused-pooled, serial and on every
registered backend, asserts all in-process executions produce
bit-identical tables (neither the batch decomposition, the fusion plan,
nor the execution backend may ever change a number), and additionally
proves the service path: the grid's solve cells are pushed through an
on-disk ``JobQueue`` — killed halfway and resumed from the journal — and
every collected outcome must match serial in-process execution bit for
bit.

Examples
--------
    python scripts/run_paper_grid.py                 # paper grid, fused+pooled
    python scripts/run_paper_grid.py --workers 8 --backend threads
    python scripts/run_paper_grid.py --quick --verify
    python scripts/run_paper_grid.py --no-fuse --serial --json out.json
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import sys
import tempfile
import time

import numpy as np

from repro.analysis.experiments import (
    ExperimentConfig,
    GridResult,
    grid_solve_requests,
    run_grid,
)
from repro.batch.backends import BACKEND_NAMES, default_backend_name
from repro.batch.runner import available_cpus
from repro.models import build_raid5_availability
from repro.service import JobQueue, SolveService


def _default_workers() -> int:
    # The grid has O(10) column tasks; ≥ 2 keeps the pooled path exercised
    # even on small machines, more than 8 buys nothing.
    return max(2, min(8, available_cpus()))


def make_config(args: argparse.Namespace) -> ExperimentConfig:
    workers = 1 if args.serial else args.workers
    # Normalize the backend to a concrete name so the verify axis can
    # dedup "same execution" configurations by field equality.
    backend = args.backend or default_backend_name()
    if args.quick:
        return ExperimentConfig.quick(workers=workers, fuse=args.fuse,
                                      memoize=args.memoize,
                                      backend=backend)
    return ExperimentConfig.paper(workers=workers, fuse=args.fuse,
                                  memoize=args.memoize, backend=backend)


def _assert_grids_equal(reference: GridResult, other: GridResult,
                        label: str) -> None:
    """Bit-identical comparison of the measure columns of two runs."""
    if other.table1.columns != reference.table1.columns:
        raise AssertionError(f"Table 1 differs between {label} runs")
    if other.table2.columns != reference.table2.columns:
        raise AssertionError(f"Table 2 differs between {label} runs")
    for g, vals in reference.ur_values.items():
        if other.ur_values[g] != vals:
            raise AssertionError(f"UR values differ for G={g} ({label})")


def verify_service_queue(config: ExperimentConfig) -> None:
    """Assert on-disk queue execution (with a kill/resume cycle) ==
    serial in-process execution, bit for bit.

    The grid's solve cells are submitted to a temporary
    :class:`JobQueue`, half are executed, the queue object is dropped
    (the "kill" — only the journal survives), a fresh queue resumes from
    the journal and finishes, and every collected outcome is compared
    bitwise against the same requests solved in-process.

    The in-process reference deliberately uses the *same* planner policy
    as the queue run, which isolates exactly the layer under test (the
    protocol/journal/resume machinery) and avoids re-solving the whole
    grid unfused — ``verify_executions`` has already established
    fused == unfused == serial at the grid level, so the chain closes:
    queue == in-process(policy) == serial unfused.
    """
    requests = grid_solve_requests(config)
    reference = SolveService(workers=1, fuse=config.fuse,
                             memoize=config.memoize).solve(requests)
    with tempfile.TemporaryDirectory(prefix="repro-queue-") as tmp:
        queue = JobQueue(tmp)
        queue.submit(requests)
        # First half, one fsync per job, then "kill" the process state.
        queue.run(SolveService(workers=config.workers,
                               backend=config.backend, fuse=config.fuse,
                               memoize=config.memoize),
                  limit=len(requests) // 2, checkpoint=1)
        del queue
        resumed = JobQueue.resume(tmp)
        n_pending = len(resumed.pending())
        resumed.run(SolveService(workers=config.workers,
                                 backend=config.backend,
                                 fuse=config.fuse,
                                 memoize=config.memoize))
        outcomes = resumed.collect()
    if len(outcomes) != len(requests):
        raise AssertionError(
            f"queue returned {len(outcomes)} outcomes for "
            f"{len(requests)} requests")
    for got, ref in zip(outcomes, reference):
        if not (got.ok and ref.ok):
            raise AssertionError(
                f"cell {ref.key!r} failed: queue={got.error!r} "
                f"serial={ref.error!r}")
        if got.key != ref.key \
                or not np.array_equal(got.value.values, ref.value.values) \
                or not np.array_equal(got.value.steps, ref.value.steps):
            raise AssertionError(
                f"queue outcome differs from serial in-process for "
                f"cell {ref.key!r}")
    print(f"verify: on-disk queue (kill after "
          f"{len(requests) - n_pending}/{len(requests)} jobs, resumed "
          "from journal) vs serial in-process — bit-identical, OK",
          flush=True)


def verify_executions(config: ExperimentConfig, result: GridResult) -> None:
    """Assert fused == unfused == serial — and memoized == unmemoized,
    and serial == threads == processes — bit for bit, plus that the
    service/queue path (including a kill/resume cycle) reproduces the
    serial run exactly.

    Alternate configurations equal to the main run (or to each other —
    e.g. under ``--serial`` the "unfused" and "serial unfused" runs are
    the same thing) are executed only once.
    """
    this = "fused" if config.fuse else "unfused"
    this += ", memoized" if config.memoize else ", unmemoized"
    this += ", serial" if config.workers == 1 else \
        f", pooled ({config.backend or default_backend_name()})"
    pool = "serial" if config.workers == 1 else "pooled"
    candidates = [
        (f"{this} vs unfused {pool}",
         dataclasses.replace(config, fuse=False)),
        (f"{this} vs unmemoized {pool}",
         dataclasses.replace(config, memoize=False)),
    ]
    if config.workers > 1:
        # The backend axis: the same pooled grid on every registered
        # execution backend. With workers=1 each backend degrades to the
        # identical inline loop, so there is nothing to compare.
        candidates += [
            (f"{this} vs {name} backend",
             dataclasses.replace(config, backend=name))
            for name in BACKEND_NAMES
        ]
    candidates.append(
        (f"{this} vs serial unfused unmemoized",
         dataclasses.replace(config, workers=1, fuse=False,
                             memoize=False)))
    ran: list[ExperimentConfig] = []
    for label, alt_config in candidates:
        if alt_config == config or alt_config in ran:
            continue
        ran.append(alt_config)
        alt = run_grid(alt_config, include_timings=False)
        _assert_grids_equal(result, alt, label)
        print(f"verify: {label} — bit-identical, OK", flush=True)
    if not ran:
        print("verify: in-process runs need no comparison — the run is "
              "already serial and unfused", flush=True)
    verify_service_queue(config)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="seconds-scale smoke grid (CI)")
    parser.add_argument("--workers", type=int, default=_default_workers(),
                        help="process-pool size (default: min(8, CPUs), "
                             "at least 2)")
    parser.add_argument("--serial", action="store_true",
                        help="force inline execution (workers=1)")
    parser.add_argument("--backend", choices=BACKEND_NAMES, default=None,
                        help="execution backend: threads shares one "
                             "process-wide cache set (GIL-releasing "
                             "stepping), processes isolates workers "
                             "(default: $REPRO_BACKEND or processes)")
    parser.add_argument("--fuse", dest="fuse", action="store_true",
                        default=True,
                        help="compile cells through the fusion planner "
                             "(default)")
    parser.add_argument("--no-fuse", dest="fuse", action="store_false",
                        help="one task per cell, no coalescing/fusion")
    parser.add_argument("--no-memoize", dest="memoize",
                        action="store_false", default=True,
                        help="disable the per-worker RR/RRL schedule-"
                             "transformation cache")
    parser.add_argument("--no-timings", action="store_true",
                        help="skip the Figure 3/4 timing sweeps")
    parser.add_argument("--verify", action="store_true",
                        help="re-run the measure columns unfused and "
                             "serially; assert all runs are bit-identical")
    parser.add_argument("--json", metavar="PATH",
                        help="dump the full grid result as JSON")
    args = parser.parse_args(argv)
    if args.workers < 1:
        parser.error("--workers must be >= 1")

    config = make_config(args)
    mode = "serial" if config.workers == 1 \
        else f"{config.workers} workers on {config.backend}"
    mode += ", fused" if config.fuse else ", unfused"
    mode += ", memoized" if config.memoize else ", unmemoized"
    print(f"== paper grid ({'quick' if args.quick else 'paper'} scale, "
          f"{mode}) ==", flush=True)
    if not args.no_timings and config.workers > 1:
        print(f"note: {config.workers} workers — the Figure 3/4 cells are "
              "timed while other columns share the machine, so the "
              "seconds include pool contention; use --serial for "
              "paper-comparable timings (measure values and step counts "
              "are unaffected)", flush=True)
    print("== models ==", flush=True)
    for g in config.groups:
        m, _, _ = build_raid5_availability(config.params_for(g))
        print(f"G={g}: states={m.n_states} transitions={m.n_transitions} "
              f"Lambda={m.max_output_rate:.4f}", flush=True)

    t0 = time.time()
    result = run_grid(config, include_timings=not args.no_timings)
    elapsed = time.time() - t0
    if result.plan_summary:
        print(f"== plan ==\n{result.plan_summary}", flush=True)
    print(result.render(), flush=True)
    print(f"\nTOTAL {elapsed:.1f}s ({mode})", flush=True)

    if args.verify:
        verify_executions(config, result)
    if args.json:
        payload = result.to_dict()
        payload["elapsed_seconds"] = elapsed
        payload["workers"] = config.workers
        payload["backend"] = config.backend
        payload["fused"] = config.fuse
        payload["memoized"] = config.memoize
        with open(args.json, "w") as fh:
            json.dump(payload, fh, indent=2)
        print(f"wrote {args.json}", flush=True)
    return 0


if __name__ == "__main__":
    sys.exit(main())
