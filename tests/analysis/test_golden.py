"""Golden-value regression tests.

Pins the reproduced Table 1 / Table 2 step counts, the Figure 3/4
per-method step counts, and the UA/UR measure values on a fixed reduced
grid to a committed JSON fixture, so a future refactor of the solvers or
the batch engine cannot silently drift the reproduction.

Step counts are machine-independent integers and must match *exactly*.
Measure values carry an ``ε = 1e-12`` guarantee; the comparison tolerance
``1e-11`` is one order looser, so any legitimate implementation change
stays green while a real numerical regression (beyond the guarantee)
fails.

Regenerate after an *intentional* change with:

    PYTHONPATH=src python tests/analysis/test_golden.py --regen
"""

import json
import sys
from pathlib import Path

import pytest

from repro.analysis.experiments import ExperimentConfig, run_steps_table
from repro.analysis.runner import get_solver
from repro.core.rrl_solver import RRLSolver
from repro.markov.rewards import Measure
from repro.models.raid5 import (
    build_raid5_availability,
    build_raid5_reliability,
)

FIXTURE = Path(__file__).parent / "fixtures" / "golden.json"

#: Reduced but nontrivial grid: one model size, four decades of t.
CONFIG = ExperimentConfig(groups=(5,), times=(1.0, 10.0, 100.0, 1000.0),
                          eps=1e-12)

VALUE_TOL = 1e-11


def _figure_steps(kind: str) -> dict[str, list[int]]:
    """Per-method step counts behind the Figure 3/4 cells (one sweep per
    method — sweep and standalone per-``t`` counts coincide for every
    method by construction, which ``test_sr_steps_match_standalone``
    in the SR suite checks explicitly)."""
    g = CONFIG.groups[0]
    if kind == "UA":
        model, rewards, _ = build_raid5_availability(CONFIG.params_for(g))
        methods = ("RRL", "RR", "RSD")
    else:
        model, rewards, _ = build_raid5_reliability(CONFIG.params_for(g))
        methods = ("RRL", "RR", "SR")
    out = {}
    for method in methods:
        sol = get_solver(method).solve(model, rewards, Measure.TRR,
                                       list(CONFIG.times), CONFIG.eps)
        out[method] = [int(s) for s in sol.steps]
    return out


def compute_golden() -> dict:
    """Recompute every pinned quantity (slow-ish: a few seconds)."""
    g = CONFIG.groups[0]
    table1 = run_steps_table(CONFIG, "UA")
    table2 = run_steps_table(CONFIG, "UR")
    ua_model, ua_rewards, _ = build_raid5_availability(CONFIG.params_for(g))
    ur_model, ur_rewards, _ = build_raid5_reliability(CONFIG.params_for(g))
    ua = RRLSolver().solve(ua_model, ua_rewards, Measure.TRR,
                           list(CONFIG.times), CONFIG.eps)
    ur = RRLSolver().solve(ur_model, ur_rewards, Measure.TRR,
                           list(CONFIG.times), CONFIG.eps)
    return {
        "config": {"groups": list(CONFIG.groups),
                   "times": list(CONFIG.times), "eps": CONFIG.eps},
        "table1_columns": {k: list(v) for k, v in table1.columns.items()},
        "table2_columns": {k: list(v) for k, v in table2.columns.items()},
        "figure3_steps": _figure_steps("UA"),
        "figure4_steps": _figure_steps("UR"),
        "ua_values": [float(v) for v in ua.values],
        "ur_values": [float(v) for v in ur.values],
    }


@pytest.fixture(scope="module")
def golden():
    assert FIXTURE.exists(), (
        f"missing fixture {FIXTURE}; regenerate with "
        "PYTHONPATH=src python tests/analysis/test_golden.py --regen")
    return json.loads(FIXTURE.read_text())


@pytest.fixture(scope="module")
def current():
    return compute_golden()


def test_fixture_matches_config(golden):
    assert golden["config"] == {"groups": list(CONFIG.groups),
                                "times": list(CONFIG.times),
                                "eps": CONFIG.eps}


def test_table1_steps_pinned(golden, current):
    assert current["table1_columns"] == golden["table1_columns"]


def test_table2_steps_pinned(golden, current):
    assert current["table2_columns"] == golden["table2_columns"]


def test_figure3_steps_pinned(golden, current):
    assert current["figure3_steps"] == golden["figure3_steps"]


def test_figure4_steps_pinned(golden, current):
    assert current["figure4_steps"] == golden["figure4_steps"]


def test_ua_values_pinned(golden, current):
    assert current["ua_values"] == pytest.approx(golden["ua_values"],
                                                 abs=VALUE_TOL)


def test_ur_values_pinned(golden, current):
    assert current["ur_values"] == pytest.approx(golden["ur_values"],
                                                 abs=VALUE_TOL)


if __name__ == "__main__":
    if "--regen" not in sys.argv:
        print(__doc__)
        sys.exit(2)
    FIXTURE.parent.mkdir(parents=True, exist_ok=True)
    FIXTURE.write_text(json.dumps(compute_golden(), indent=2) + "\n")
    print(f"wrote {FIXTURE}")
