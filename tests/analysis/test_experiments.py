"""Experiment harness on a reduced grid (the paper grid runs in the
benchmarks; here we verify the machinery and the qualitative shapes)."""

import dataclasses

import numpy as np
import pytest

from repro.analysis.experiments import (
    PAPER_TABLE1,
    PAPER_TABLE2,
    PAPER_UR_1E5,
    ExperimentConfig,
    run_figure4,
    run_grid,
    run_table1,
    run_table2,
)

CFG = ExperimentConfig(groups=(4,), times=(1.0, 10.0, 100.0),
                       sr_step_budget=100_000)


@pytest.fixture(scope="module")
def table1():
    return run_table1(CFG)


@pytest.fixture(scope="module")
def table2():
    return run_table2(CFG)


class TestStepTables:
    def test_table1_columns(self, table1):
        assert set(table1.columns) == {"G=4 RR/RRL", "G=4 RSD"}
        assert all(len(v) == 3 for v in table1.columns.values())

    def test_steps_positive_and_growing(self, table1):
        col = table1.columns["G=4 RR/RRL"]
        assert col[0] > 0
        assert col[2] > col[0]

    def test_table2_sr_explodes(self, table2):
        sr = table2.columns["G=4 SR"]
        rrl = table2.columns["G=4 RR/RRL"]
        # At t=100 SR already needs more steps than RR/RRL.
        assert sr[2] > rrl[2]

    def test_render_includes_paper_when_paper_grid(self, table1):
        # Reduced grid: no paper columns; still renders.
        out = table1.render()
        assert "Table 1" in out
        assert "paper" not in out

    def test_paper_constants_sanity(self):
        assert PAPER_TABLE1[20][0][0] == 56
        assert PAPER_TABLE2[40][1][-1] == 4390141
        assert PAPER_UR_1E5[20] == pytest.approx(0.50480)


class TestTimingTable:
    def test_figure4_budget_skip(self):
        cfg = ExperimentConfig(groups=(4,), times=(1.0, 1000.0),
                               sr_step_budget=500)
        fig = run_figure4(cfg)
        sr = fig.series["G=4, SR"]
        assert sr[0] is None or sr[0] >= 0.0
        assert sr[1] is None  # over budget: skipped
        rrl = fig.series["G=4, RRL"]
        assert all(v is not None and v > 0 for v in rrl)
        out = fig.render()
        assert "Figure 4" in out and "—" in out

    def test_config_paper_grid(self):
        cfg = ExperimentConfig.paper()
        assert cfg.groups == (20, 40)
        assert cfg.times[-1] == 1e5
        assert cfg.fuse is True


class TestPlannedGrid:
    @pytest.fixture(scope="class")
    def fused_grid(self):
        return run_grid(CFG, include_timings=False)

    def test_fused_equals_unfused_grid(self, fused_grid):
        unfused = run_grid(dataclasses.replace(CFG, fuse=False),
                           include_timings=False)
        assert fused_grid.table1.columns == unfused.table1.columns
        assert fused_grid.table2.columns == unfused.table2.columns
        assert fused_grid.ur_values == unfused.ur_values
        assert fused_grid.ur_abscissae == unfused.ur_abscissae

    def test_plan_coalesces_rrl_ur_duplicate(self, fused_grid):
        # Table 2's RR/RRL column and the UR sweep are the same solve:
        # the plan must report one coalesced request per model size.
        assert fused_grid.plan_summary is not None
        assert f"{len(CFG.groups)} coalesced" in fused_grid.plan_summary

    def test_plan_summary_in_json_dump(self, fused_grid):
        assert fused_grid.to_dict()["plan_summary"] \
            == fused_grid.plan_summary
