"""Solver registry and the one-call solve() front door."""

import numpy as np
import pytest

from repro import TRR, RRLSolver
from repro.analysis import SOLVER_REGISTRY, get_solver, solve
from tests.conftest import exact_two_state_ua


class TestRegistry:
    def test_all_methods_present(self):
        assert set(SOLVER_REGISTRY) == {"RRL", "RR", "SR", "RSD", "AU",
                                        "ODE", "MS"}

    def test_case_insensitive(self):
        assert isinstance(get_solver("rrl"), RRLSolver)

    def test_unknown_method(self):
        with pytest.raises(ValueError, match="unknown method"):
            get_solver("FFT")

    def test_kwargs_forwarded(self):
        s = get_solver("RRL", t_factor=4.0)
        assert s._t_factor == 4.0


class TestSolve:
    @pytest.mark.parametrize("method", ["RRL", "RR", "SR", "RSD", "AU",
                                        "ODE"])
    def test_every_method_solves(self, method, two_state):
        model, rewards, *_ = two_state
        sol = solve(model, rewards, TRR, [1.0], eps=1e-9, method=method)
        assert sol.values[0] == pytest.approx(exact_two_state_ua(1.0),
                                              abs=1e-8)
        assert sol.method == method

    def test_scalar_time(self, two_state):
        model, rewards, *_ = two_state
        sol = solve(model, rewards, TRR, 2.5, eps=1e-9)
        assert sol.times.shape == (1,)

    @pytest.mark.parametrize("times", [np.float64(2.5), np.array(2.5),
                                       np.array([2.5])[0]],
                             ids=["np.float64", "0-d array", "indexed"])
    def test_numpy_scalar_times(self, two_state, times):
        # np.isscalar(np.array(2.5)) is False while
        # np.isscalar(np.float64(2.5)) is True — every scalar spelling
        # must land on the same single-time solve.
        model, rewards, *_ = two_state
        sol = solve(model, rewards, TRR, times, eps=1e-9)
        assert sol.times.shape == (1,)
        assert sol.values[0] == pytest.approx(exact_two_state_ua(2.5),
                                              abs=1e-8)

    @pytest.mark.parametrize("empty", [[], (), np.array([])],
                             ids=["list", "tuple", "array"])
    def test_empty_times_rejected_early(self, two_state, empty):
        model, rewards, *_ = two_state
        with pytest.raises(ValueError, match="at least one time point"):
            solve(model, rewards, TRR, empty, eps=1e-9)

    def test_default_method_is_rrl(self, two_state):
        model, rewards, *_ = two_state
        sol = solve(model, rewards, TRR, [1.0], eps=1e-9)
        assert sol.method == "RRL"
