"""Excursion-decay diagnostics and truncation prediction."""

import numpy as np
import pytest

from repro import RewardStructure, RRLSolver, TRR
from repro.analysis.convergence import (
    compare_regenerative_states,
    excursion_decay,
    predict_truncation,
)
from repro.exceptions import ModelError
from repro.models import birth_death, random_ctmc, two_state_availability


class TestDecayFit:
    def test_two_state_exhausts(self):
        model, _ = two_state_availability(1.0, 10.0)
        fit = excursion_decay(model, 0)
        assert fit.exhausted
        assert fit.rate == 0.0

    def test_known_geometric_decay(self):
        # Watched from state 0 of a birth-death chain, a(k) decays
        # geometrically; the fitted rate must match the empirical ratio.
        model = birth_death(12, 1.0, 1.0)
        fit = excursion_decay(model, 0, n_steps=400)
        from repro.core.schedules import ScheduleBuilder
        main, _, _, _ = ScheduleBuilder.for_model(
            model, RewardStructure.constant(12, 0.0), 0)
        main.extend_to(400)
        a = main.snapshot().a
        empirical = a[380] / a[379]
        assert fit.rate == pytest.approx(empirical, abs=0.01)
        assert 0.0 < fit.rate < 1.0

    def test_bad_fraction(self):
        model = birth_death(5, 1.0, 2.0)
        with pytest.raises(ValueError):
            excursion_decay(model, 0, fit_fraction=0.0)


class TestPrediction:
    def test_predicts_actual_k_within_factor(self):
        model = random_ctmc(12, density=0.4, seed=19)
        rewards = RewardStructure.indicator(12, [3])
        fit = excursion_decay(model, 0, n_steps=300)
        sol = RRLSolver(regenerative=0).solve(model, rewards, TRR, [1e4],
                                              eps=1e-12)
        predicted = predict_truncation(fit, model.max_output_rate, 1e4,
                                       1e-12)
        actual = int(sol.stats["K"][0])
        assert 0.5 * actual <= predicted <= 2.0 * actual

    def test_exhausted_prediction(self):
        model, _ = two_state_availability(1.0, 10.0)
        fit = excursion_decay(model, 0)
        assert predict_truncation(fit, 10.0, 1e5, 1e-12) <= 3

    def test_no_decay_raises(self):
        from repro.analysis.convergence import DecayFit
        flat = DecayFit(rate=1.0, amplitude=1.0, window=(0, 10),
                        exhausted=False)
        with pytest.raises(ModelError):
            predict_truncation(flat, 1.0, 10.0, 1e-9)


class TestRanking:
    def test_hub_ranks_first(self):
        # In a star-like chain the hub is visited constantly: it must
        # out-rank a leaf as regenerative state.
        n = 8
        trans = []
        for leaf in range(1, n):
            trans.append((0, leaf, 1.0))
            trans.append((leaf, 0, 5.0))
        from repro import CTMC
        model = CTMC.from_transitions(n, trans, initial=0)
        ranked = compare_regenerative_states(model, candidates=[0, 3])
        assert ranked[0][0] == 0
        assert ranked[0][1].rate <= ranked[1][1].rate

    def test_default_candidates_exclude_absorbing(self):
        model = random_ctmc(10, density=0.4, seed=23, absorbing=2)
        ranked = compare_regenerative_states(model)
        absorbing = set(int(i) for i in model.absorbing_states())
        assert all(state not in absorbing for state, _ in ranked)
