"""Command-line interface: every subcommand must run and print sanely."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_solve_defaults(self):
        args = build_parser().parse_args(["solve"])
        assert args.model == "raid-ur"
        assert args.method == "RRL"

    def test_unknown_method_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["solve", "--method", "FFT"])


class TestCommands:
    def test_solve_trr(self, capsys):
        rc = main(["solve", "--model", "raid-ur", "--groups", "4",
                   "--times", "10", "100", "--eps", "1e-9"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "TRR of raid-ur" in out
        assert "steps" in out

    def test_solve_mrr_with_sr(self, capsys):
        rc = main(["solve", "--model", "raid-ua", "--groups", "4",
                   "--measure", "mrr", "--method", "SR",
                   "--times", "10", "--eps", "1e-9"])
        assert rc == 0
        assert "MRR" in capsys.readouterr().out

    def test_table1_small(self, capsys):
        rc = main(["table1", "--groups", "4", "--times", "1", "10"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "Table 1" in out and "RSD" in out

    def test_table2_small(self, capsys):
        rc = main(["table2", "--groups", "4", "--times", "1", "10"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "Table 2" in out and "SR" in out

    def test_figure4_small_with_budget(self, capsys):
        rc = main(["figure4", "--groups", "4", "--times", "1", "100",
                   "--sr-budget", "10000"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "Figure 4" in out

    def test_mttf(self, capsys):
        rc = main(["mttf", "--groups", "4"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "MTTF" in out and "cv²" in out

    def test_diagnose(self, capsys):
        rc = main(["diagnose", "--groups", "4", "--top", "3"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "decay" in out
