"""Command-line interface: every subcommand must run and print sanely."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_solve_defaults(self):
        args = build_parser().parse_args(["solve"])
        assert args.model == "raid-ur"
        assert args.method == "RRL"

    def test_unknown_method_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["solve", "--method", "FFT"])


class TestCommands:
    def test_solve_trr(self, capsys):
        rc = main(["solve", "--model", "raid-ur", "--groups", "4",
                   "--times", "10", "100", "--eps", "1e-9"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "TRR of raid-ur" in out
        assert "steps" in out

    def test_solve_mrr_with_sr(self, capsys):
        rc = main(["solve", "--model", "raid-ua", "--groups", "4",
                   "--measure", "mrr", "--method", "SR",
                   "--times", "10", "--eps", "1e-9"])
        assert rc == 0
        assert "MRR" in capsys.readouterr().out

    def test_table1_small(self, capsys):
        rc = main(["table1", "--groups", "4", "--times", "1", "10"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "Table 1" in out and "RSD" in out

    def test_table2_small(self, capsys):
        rc = main(["table2", "--groups", "4", "--times", "1", "10"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "Table 2" in out and "SR" in out

    def test_figure4_small_with_budget(self, capsys):
        rc = main(["figure4", "--groups", "4", "--times", "1", "100",
                   "--sr-budget", "10000"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "Figure 4" in out

    def test_mttf(self, capsys):
        rc = main(["mttf", "--groups", "4"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "MTTF" in out and "cv²" in out

    def test_diagnose(self, capsys):
        rc = main(["diagnose", "--groups", "4", "--top", "3"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "decay" in out


class TestBatchCommands:
    """submit → run (in two halves, fresh process state between) →
    status → collect, all through the CLI surface."""

    def test_queue_lifecycle(self, capsys, tmp_path):
        qdir = str(tmp_path / "q")
        rc = main(["batch", "submit", "--queue", qdir, "--groups", "2",
                   "--times", "1", "10"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "submitted 4 jobs" in out

        rc = main(["batch", "run", "--queue", qdir, "--limit", "2",
                   "--checkpoint", "1"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "processed 2 jobs (0 failed); 2 still pending" in out

        rc = main(["batch", "status", "--queue", qdir])
        out = capsys.readouterr().out
        assert rc == 0
        assert "4 submitted, 2 completed (0 failed), 2 pending" in out

        # collect refuses a partial queue: runtime failure (1), not a
        # usage error (2), with the reason on stderr.
        rc = main(["batch", "collect", "--queue", qdir])
        err = capsys.readouterr().err
        assert rc == 1
        assert "error:" in err and "pending" in err

        rc = main(["batch", "run", "--queue", qdir])
        assert rc == 0
        capsys.readouterr()

        json_path = str(tmp_path / "out.json")
        rc = main(["batch", "collect", "--queue", qdir,
                   "--json", json_path])
        out = capsys.readouterr().out
        assert rc == 0
        assert "4 outcomes" in out and "ok" in out
        import json as _json

        payload = _json.loads(open(json_path).read())
        assert len(payload["outcomes"]) == 4
        assert all(o["schema_version"] == 1 for o in payload["outcomes"])

    def test_submit_scenarios_sweep(self, capsys, tmp_path):
        qdir = str(tmp_path / "q")
        rc = main(["batch", "submit", "--queue", qdir,
                   "--scenarios", "birth_death", "--methods", "RRL"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "scenario sweep" in out

    def test_status_missing_queue_errors(self, capsys, tmp_path):
        rc = main(["batch", "status", "--queue",
                   str(tmp_path / "missing")])
        err = capsys.readouterr().err
        assert rc == 1
        assert "error:" in err and "nothing to resume" in err

    def test_bad_checkpoint_is_a_usage_error(self, tmp_path):
        with pytest.raises(SystemExit) as exc_info:
            main(["batch", "run", "--queue", str(tmp_path / "q"),
                  "--checkpoint", "0"])
        assert exc_info.value.code == 2  # argparse, not a traceback

    def test_submit_to_file_path_errors_cleanly(self, capsys, tmp_path):
        blocker = tmp_path / "file"
        blocker.write_text("x")
        rc = main(["batch", "submit", "--queue", str(blocker),
                   "--quick"])
        err = capsys.readouterr().err
        assert rc == 1
        assert "error:" in err and "cannot create" in err
