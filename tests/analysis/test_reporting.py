"""Monospace table and series rendering."""

from repro.analysis.reporting import format_series, format_table


class TestFormatTable:
    def test_alignment_and_header(self):
        out = format_table("Title", ["a", "bbbb"], [[1, 2.5], [30, None]])
        lines = out.splitlines()
        assert lines[0] == "Title"
        assert "bbbb" in lines[1]
        assert "—" in lines[-1]

    def test_float_formatting(self):
        out = format_table("T", ["x"], [[0.123456789]])
        assert "0.123457" in out

    def test_note_appended(self):
        out = format_table("T", ["x"], [[1]], note="hello")
        assert out.endswith("hello")

    def test_empty_rows(self):
        out = format_table("T", ["x", "y"], [])
        assert "x" in out and "y" in out


class TestFormatSeries:
    def test_labels_and_nones(self):
        out = format_series("Fig", "t", [1.0, 10.0],
                            {"G=5, RRL": [0.1, 0.2],
                             "G=5, SR": [0.3, None]})
        assert "G=5, RRL" in out
        assert "—" in out
        assert "[seconds]" in out
