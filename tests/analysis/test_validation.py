"""Cross-method validation utility."""

import numpy as np
import pytest

from repro import TRR, MRR, RewardStructure
from repro.analysis.validation import cross_validate
from repro.models import random_ctmc


class TestCrossValidate:
    def test_default_methods_irreducible(self, random_irreducible):
        rewards = RewardStructure.indicator(15, [4])
        report = cross_validate(random_irreducible, rewards, TRR,
                                [1.0, 10.0], eps=1e-9)
        assert set(report.solutions) == {"RRL", "RR", "SR", "RSD"}
        assert report.passed, report.render()

    def test_default_methods_absorbing(self, random_absorbing):
        n = random_absorbing.n_states
        rewards = RewardStructure.indicator(n, [n - 1])
        report = cross_validate(random_absorbing, rewards, TRR, [2.0],
                                eps=1e-9)
        assert "RSD" not in report.solutions
        assert report.passed

    def test_mrr(self, random_irreducible):
        rewards = RewardStructure(np.linspace(0, 1, 15))
        report = cross_validate(random_irreducible, rewards, MRR, [5.0],
                                eps=1e-9, methods=("RRL", "SR"))
        assert report.passed

    def test_ode_gets_slack(self, two_state):
        model, rewards, *_ = two_state
        report = cross_validate(model, rewards, TRR, [1.0], eps=1e-10,
                                methods=("RRL", "ODE"))
        pair = ("ODE", "RRL")
        assert report.tolerance[pair] > 10 * report.tolerance.get(
            ("RR", "RRL"), 2e-10)
        assert report.passed

    def test_worst_pair_and_render(self, random_irreducible):
        rewards = RewardStructure.indicator(15, [2])
        report = cross_validate(random_irreducible, rewards, TRR, [1.0],
                                eps=1e-9, methods=("RRL", "SR"))
        pair, dev = report.worst_pair()
        assert pair == ("RRL", "SR")
        out = report.render()
        assert "PASSED" in out and "RRL vs SR" in out

    def test_cli_validate(self, capsys):
        from repro.cli import main
        rc = main(["validate", "--groups", "4", "--times", "1", "10",
                   "--eps", "1e-9"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "PASSED" in out
