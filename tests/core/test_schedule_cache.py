"""Cross-cell schedule memoization: RR/RRL cells sharing ``(model,
rewards, regenerative state, rate)`` must build the transformation once
per cache — bit-for-bit identical to cold builds — and the planner must
inject the per-worker cache exactly for schedule-memoizable methods."""

import numpy as np
import pytest

from repro.analysis.runner import get_solver
from repro.batch.planner import (
    SolveRequest,
    execute_requests,
    worker_cache_clear,
)
from repro.batch.scenarios import Scenario, build_scenario_model
from repro.core.schedule_cache import (
    ScheduleCache,
    process_schedule_cache,
    process_schedule_cache_info,
)
from repro.markov.rewards import Measure, RewardStructure

EPS = 1e-10


def _scenario(n=40, birth=1.0, death=2.5, times=(0.5, 5.0, 50.0)):
    return Scenario(name="bd-memo", family="birth_death",
                    params={"n": n, "birth": birth, "death": death},
                    times=tuple(times), eps=EPS)


@pytest.fixture()
def model_rewards():
    return build_scenario_model(_scenario())


class TestScheduleCache:
    def test_hit_on_shared_identity(self, model_rewards):
        model, rewards = model_rewards
        cache = ScheduleCache()
        setup1, hit1 = cache.setup_for(model, rewards)
        setup2, hit2 = cache.setup_for(model, rewards)
        assert (hit1, hit2) == (False, True)
        assert setup2 is setup1
        assert cache.info()["hits"] == 1
        assert cache.info()["misses"] == 1

    def test_default_and_explicit_defaults_share_one_entry(
            self, model_rewards):
        model, rewards = model_rewards
        from repro.core._setup import default_regenerative_state

        cache = ScheduleCache()
        _, hit1 = cache.setup_for(model, rewards, None, None)
        _, hit2 = cache.setup_for(model, rewards,
                                  default_regenerative_state(model),
                                  model.max_output_rate)
        assert not hit1 and hit2
        assert len(cache) == 1

    def test_distinct_identities_get_distinct_entries(self, model_rewards):
        model, rewards = model_rewards
        cache = ScheduleCache()
        cache.setup_for(model, rewards)
        _, hit = cache.setup_for(model, rewards, regenerative=1)
        assert not hit
        _, hit = cache.setup_for(model, rewards,
                                 rate=2.0 * model.max_output_rate)
        assert not hit
        other_rewards = RewardStructure(0.5 * rewards.rates)
        _, hit = cache.setup_for(model, other_rewards)
        assert not hit
        assert len(cache) == 4

    def test_lru_eviction(self, model_rewards):
        model, rewards = model_rewards
        cache = ScheduleCache(max_entries=2)
        cache.setup_for(model, rewards, regenerative=0)
        cache.setup_for(model, rewards, regenerative=1)
        cache.setup_for(model, rewards, regenerative=2)
        assert len(cache) == 2
        _, hit = cache.setup_for(model, rewards, regenerative=0)
        assert not hit  # evicted as least-recently-used

    @pytest.mark.parametrize("method", ["RR", "RRL"])
    def test_warm_solve_is_bit_identical(self, model_rewards, method):
        model, rewards = model_rewards
        cache = ScheduleCache()
        cold = get_solver(method).solve(model, rewards, Measure.TRR,
                                        [0.5, 5.0, 50.0], EPS)
        # Warm the cache with a *different* horizon set, then solve the
        # original grid against the shared (and already further-extended)
        # builders: prefix stability must make it bit-identical.
        get_solver(method).solve(model, rewards, Measure.TRR, [200.0],
                                 EPS, schedule_cache=cache)
        warm = get_solver(method).solve(model, rewards, Measure.TRR,
                                        [0.5, 5.0, 50.0], EPS,
                                        schedule_cache=cache)
        assert np.array_equal(warm.values, cold.values)
        assert np.array_equal(warm.steps, cold.steps)
        assert warm.stats["schedule_cache_hit"] is True
        assert warm.stats["transformation_steps_reused"] > 0
        # The 200h warm-up extended past everything this grid needs.
        assert warm.stats["transformation_steps"] == 0
        assert "schedule_cache_hit" not in cold.stats

    def test_rr_and_rrl_share_one_transformation(self, model_rewards):
        model, rewards = model_rewards
        cache = ScheduleCache()
        rrl = get_solver("RRL").solve(model, rewards, Measure.TRR, [5.0],
                                      EPS, schedule_cache=cache)
        rr = get_solver("RR").solve(model, rewards, Measure.TRR, [5.0],
                                    EPS, schedule_cache=cache)
        assert rrl.stats["schedule_cache_hit"] is False
        assert rr.stats["schedule_cache_hit"] is True
        assert cache.info()["misses"] == 1
        # Same transformation ⇒ same truncation ⇒ same step counts.
        assert np.array_equal(rr.steps, rrl.steps)

    def test_solution_phase_knobs_do_not_fragment(self, model_rewards):
        model, rewards = model_rewards
        cache = ScheduleCache()
        get_solver("RRL", t_factor=8.0).solve(
            model, rewards, Measure.TRR, [5.0], EPS, schedule_cache=cache)
        sol = get_solver("RRL", t_factor=4.0).solve(
            model, rewards, Measure.TRR, [5.0], EPS, schedule_cache=cache)
        assert sol.stats["schedule_cache_hit"] is True
        assert len(cache) == 1


class TestPlannerIntegration:
    def _grid(self):
        """RR/RRL cells sharing one model: different methods, horizons,
        eps and solution-phase knobs — one transformation for all."""
        s = _scenario()
        cells = [
            SolveRequest(scenario=s, measure=Measure.TRR, times=(0.5, 5.0),
                         eps=EPS, method="RRL", key=0),
            SolveRequest(scenario=s, measure=Measure.TRR, times=(50.0,),
                         eps=EPS * 0.1, method="RRL", key=1),
            SolveRequest(scenario=s, measure=Measure.MRR, times=(5.0,),
                         eps=EPS, method="RRL",
                         solver_kwargs={"t_factor": 4.0}, key=2),
            SolveRequest(scenario=s, measure=Measure.TRR, times=(5.0,),
                         eps=EPS, method="RR", key=3),
        ]
        return cells

    def test_plan_predicts_schedule_builds_via_fingerprint_hook(self):
        from repro.batch.planner import plan_requests

        # All four cells (RRL × horizons/eps/t_factor + RR) share one
        # transformation group: the spec fingerprint hooks exclude
        # solution-phase knobs and carry no method.
        assert plan_requests(self._grid()).schedule_builds() == 1
        assert plan_requests(self._grid(),
                             memoize=False).schedule_builds() == 0
        # A distinct regenerative state is a genuine second build.
        s = _scenario()
        extra = SolveRequest(scenario=s, measure=Measure.TRR,
                             times=(5.0,), eps=EPS, method="RRL",
                             solver_kwargs={"regenerative": 1}, key=9)
        assert plan_requests(self._grid()
                             + [extra]).schedule_builds() == 2

    def test_grid_builds_transformation_exactly_once(self):
        worker_cache_clear()
        outs = execute_requests(self._grid())
        assert all(o.ok for o in outs)
        info = process_schedule_cache_info()
        assert info["misses"] == 1, info
        assert info["hits"] == len(self._grid()) - 1, info
        hits = [o.value.stats["schedule_cache_hit"] for o in outs]
        assert hits == [False, True, True, True]

    def test_memoized_equals_unmemoized_bitwise(self):
        worker_cache_clear()
        memoized = execute_requests(self._grid(), memoize=True)
        worker_cache_clear()
        plain = execute_requests(self._grid(), memoize=False)
        assert process_schedule_cache_info()["misses"] == 0
        for a, b in zip(memoized, plain):
            assert a.ok and b.ok
            assert np.array_equal(a.value.values, b.value.values)
            assert np.array_equal(a.value.steps, b.value.steps)
        # memoize=False never touches the cache and leaves no stats flag.
        assert "schedule_cache_hit" not in plain[0].value.stats

    def test_unmemoizable_methods_never_touch_the_cache(self):
        worker_cache_clear()
        s = _scenario()
        outs = execute_requests([
            SolveRequest(scenario=s, measure=Measure.TRR, times=(5.0,),
                         eps=EPS, method="SR", key=0),
            SolveRequest(scenario=s, measure=Measure.TRR, times=(5.0,),
                         eps=EPS, method="AU", key=1),
        ])
        assert all(o.ok for o in outs)
        info = process_schedule_cache_info()
        assert info["misses"] == 0 and info["hits"] == 0

    def test_worker_cache_clear_also_clears_schedule_cache(self):
        worker_cache_clear()
        execute_requests(self._grid()[:1])
        assert len(process_schedule_cache()) == 1
        worker_cache_clear()
        assert len(process_schedule_cache()) == 0
        assert process_schedule_cache_info()["misses"] == 0
