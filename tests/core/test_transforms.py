"""Closed-form transforms vs the explicitly built V_{K,L} chain.

The decisive validation of Section 2.1: invert the closed-form transform
numerically and compare against solving the *materialized* V_{K,L} with
standard randomization — the two must agree to the inversion budget for
any schedule, truncation point and initial split.
"""

import numpy as np
import pytest

from repro import TRR, MRR, RewardStructure, StandardRandomizationSolver
from repro.core.schedules import ScheduleBuilder
from repro.core.transforms import VklTransform
from repro.core.vkl import build_vkl
from repro.exceptions import ModelError
from repro.laplace.inversion import invert_bounded, invert_cumulative
from repro.models import random_ctmc


def make_case(n=10, seed=3, absorbing=1, alpha_r=1.0, k=8, lp=6):
    if alpha_r >= 1.0:
        initial = 0
    else:
        initial = np.zeros(n)
        initial[0] = alpha_r
        initial[2] = 1.0 - alpha_r
    model = random_ctmc(n, density=0.4, seed=seed, absorbing=absorbing,
                        initial=initial)
    rewards = RewardStructure(np.linspace(0.3, 1.0, n))
    main, primed, rate, abs_idx = ScheduleBuilder.for_model(model, rewards, 0)
    main.extend_to(k + 1)
    if primed is not None:
        primed.extend_to(lp + 1)
    main_s = main.snapshot()
    primed_s = primed.snapshot() if primed is not None else None
    lp_eff = lp if primed is not None else None
    tr = VklTransform(main_s, primed_s, k, lp_eff, rate,
                      rewards.rates[abs_idx])
    vmodel, vrewards = build_vkl(main_s, primed_s, k, lp_eff, rate,
                                 rewards.rates[abs_idx], alpha_r)
    return tr, vmodel, vrewards


CASES = [
    dict(alpha_r=1.0, absorbing=1),
    dict(alpha_r=1.0, absorbing=0),
    dict(alpha_r=0.6, absorbing=1),
    dict(alpha_r=0.6, absorbing=2, seed=9),
    dict(alpha_r=0.0, absorbing=0, seed=5),
]


class TestClosedFormAgainstExplicitChain:
    @pytest.mark.parametrize("case", CASES)
    @pytest.mark.parametrize("t", [0.5, 3.0, 20.0])
    def test_trr_transform(self, case, t):
        tr, vmodel, vrewards = make_case(**case)
        res = invert_bounded(tr.trr, t, eps=1e-10, bound=vrewards.max_rate)
        ref = StandardRandomizationSolver().solve(vmodel, vrewards, TRR,
                                                  [t], eps=1e-13)
        assert res.value == pytest.approx(ref.values[0], abs=2e-10)

    @pytest.mark.parametrize("case", CASES[:3])
    @pytest.mark.parametrize("t", [0.5, 10.0])
    def test_cumulative_transform(self, case, t):
        tr, vmodel, vrewards = make_case(**case)
        res = invert_cumulative(tr.cumulative, t, eps=1e-10,
                                r_max=vrewards.max_rate)
        ref = StandardRandomizationSolver().solve(vmodel, vrewards, MRR,
                                                  [t], eps=1e-13)
        assert res.value / t == pytest.approx(ref.values[0], abs=2e-10)

    @pytest.mark.parametrize("case", CASES[:3])
    def test_p0_transform(self, case):
        # p̃_0 inverted = P[V(t) = s_0], checked via an indicator reward.
        tr, vmodel, vrewards = make_case(**case)
        ind = RewardStructure.indicator(vmodel.n_states, [0])
        t = 2.0
        res = invert_bounded(tr.p0, t, eps=1e-10, bound=1.0)
        ref = StandardRandomizationSolver().solve(vmodel, ind, TRR, [t],
                                                  eps=1e-13)
        assert res.value == pytest.approx(ref.values[0], abs=2e-10)

    @pytest.mark.parametrize("case", CASES[:3])
    def test_p_absorbed_a(self, case):
        tr, vmodel, vrewards = make_case(**case)
        sink = vmodel.n_states - 1
        ind = RewardStructure.indicator(vmodel.n_states, [sink])
        t = 5.0
        res = invert_bounded(tr.p_absorbed_a, t, eps=1e-10, bound=1.0)
        ref = StandardRandomizationSolver().solve(vmodel, ind, TRR, [t],
                                                  eps=1e-13)
        assert res.value == pytest.approx(ref.values[0], abs=2e-10)


class TestAnalyticStructure:
    def test_initial_value_theorem(self):
        # s·TRR̃(s) → TRR(0) = b(0) (reward at the start) as s → ∞.
        tr, vmodel, vrewards = make_case(alpha_r=1.0, absorbing=1)
        s = np.array([1e7 + 0.0j])
        val = (s * tr.trr(s)).real[0]
        assert val == pytest.approx(vrewards.rates[0], rel=1e-4)

    def test_conservation_via_p0_pole(self):
        # s·(p̃_0 + Σ p̃_k + ...) = 1 at any s: total probability is 1.
        # Check with the constant-reward trick: a reward of 1 everywhere
        # (including absorbing and the sink) has TRR(t) = 1 ⇒ transform
        # 1/s. Our TRR̃ excludes the sink (reward 0), so 1/s − p̃_a.
        tr, vmodel, _ = make_case(alpha_r=0.6, absorbing=1, k=8, lp=6)
        # Rebuild transform with unit rewards on everything:
        main, primed, rate, abs_idx = None, None, None, None
        # simpler: evaluate identity TRR̃_unit(s) + p̃_a(s) = 1/s using the
        # explicit chain's unit rewards through a fresh transform.
        n = 10
        initial = np.zeros(n)
        initial[0], initial[2] = 0.6, 0.4
        model = random_ctmc(n, density=0.4, seed=3, absorbing=1,
                            initial=initial)
        unit = RewardStructure.constant(n, 1.0)
        mainb, primedb, rate, abs_idx = ScheduleBuilder.for_model(
            model, unit, 0)
        mainb.extend_to(9)
        primedb.extend_to(7)
        tru = VklTransform(mainb.snapshot(), primedb.snapshot(), 8, 6, rate,
                           unit.rates[abs_idx])
        s = np.array([0.37 + 1.1j, 2.0 + 0.0j, 0.01 + 5.0j])
        lhs = tru.trr(s) + tru.p_absorbed_a(s)
        assert np.allclose(lhs, 1.0 / s, rtol=1e-10)

    def test_k_zero_edge(self):
        tr, vmodel, vrewards = make_case(alpha_r=1.0, absorbing=1, k=0)
        s = np.array([1.0 + 1.0j])
        # With K = 0: p̃_0 = 1/(s + Λ).
        rate = vmodel.max_output_rate
        assert np.allclose(tr.p0(s), 1.0 / (s + rate), rtol=1e-12)

    def test_too_short_schedule_rejected(self):
        model = random_ctmc(6, seed=1)
        rewards = RewardStructure.constant(6)
        main, primed, rate, abs_idx = ScheduleBuilder.for_model(
            model, rewards, 0)
        main.extend_to(3)
        with pytest.raises(ModelError):
            VklTransform(main.snapshot(), None, 100, None, rate,
                         rewards.rates[abs_idx])


from hypothesis import given, settings
from hypothesis import strategies as st


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(min_value=0, max_value=9999),
       n=st.integers(min_value=4, max_value=10),
       k=st.integers(min_value=1, max_value=12),
       absorbing=st.integers(min_value=0, max_value=2))
def test_conservation_property(seed, n, k, absorbing):
    """Property: TRR̃_unit(s) + p̃_a(s) = 1/s on random schedules —
    probability is conserved by the closed-form transform for any
    truncation point, chain and absorbing-state count."""
    if absorbing >= n - 2:
        absorbing = 0
    model = random_ctmc(n, density=0.5, seed=seed, absorbing=absorbing)
    unit = RewardStructure.constant(n, 1.0)
    main, primed, rate, abs_idx = ScheduleBuilder.for_model(model, unit, 0)
    main.extend_to(k + 1)
    tr = VklTransform(main.snapshot(), None, k, None, rate,
                      unit.rates[abs_idx])
    s = np.array([0.9 + 0.7j, 3.0 + 0.0j, 0.05 + 9.0j, 11.0 - 2.0j])
    lhs = tr.trr(s) + tr.p_absorbed_a(s)
    assert np.allclose(lhs, 1.0 / s, rtol=1e-9)
