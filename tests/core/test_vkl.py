"""Explicit V_{K,L} construction: structure, rates, rewards, initial."""

import numpy as np
import pytest

from repro import RewardStructure
from repro.core.schedules import ScheduleBuilder
from repro.core.vkl import build_vkl
from repro.exceptions import ModelError
from repro.models import random_ctmc


def setup_schedules(n=10, seed=3, absorbing=1, init_split=None):
    if init_split is None:
        initial = 0
    else:
        initial = np.zeros(n)
        initial[0] = init_split
        initial[1] = 1.0 - init_split
    model = random_ctmc(n, density=0.4, seed=seed, absorbing=absorbing,
                        initial=initial)
    rewards = RewardStructure(np.linspace(0.5, 2.0, n))
    main, primed, rate, abs_idx = ScheduleBuilder.for_model(model, rewards, 0)
    main.extend_to(12)
    if primed is not None:
        primed.extend_to(12)
    return model, rewards, main, primed, rate, abs_idx


class TestStructure:
    def test_state_layout_alpha1(self):
        model, rewards, main, primed, rate, abs_idx = setup_schedules()
        assert primed is None
        k = 8
        v, vr = build_vkl(main.snapshot(), None, k, None, rate,
                          rewards.rates[abs_idx], alpha_r=1.0)
        # s_0..s_K + A absorbing + sink a.
        assert v.n_states == (k + 1) + abs_idx.size + 1
        assert v.labels[0] == ("s", 0)
        assert v.labels[-1] == ("a",)

    def test_state_layout_with_primed(self):
        model, rewards, main, primed, rate, abs_idx = setup_schedules(
            init_split=0.7)
        assert primed is not None
        k, lp = 8, 6
        v, vr = build_vkl(main.snapshot(), primed.snapshot(), k, lp, rate,
                          rewards.rates[abs_idx], alpha_r=0.7)
        assert v.n_states == (k + 1) + (lp + 1) + abs_idx.size + 1
        assert np.isclose(v.initial[0], 0.7)
        assert np.isclose(v.initial[k + 1], 0.3)

    def test_exit_rates_are_lambda(self):
        model, rewards, main, primed, rate, abs_idx = setup_schedules()
        k = 8
        v, _ = build_vkl(main.snapshot(), None, k, None, rate,
                         rewards.rates[abs_idx], alpha_r=1.0)
        out = v.output_rates
        # s_1..s_K all exit at Λ; s_0 exits at Λ(1 - q_0) since its
        # self-loop is dropped; absorbing f_i and the sink a exit at 0.
        sched = main.snapshot()
        q0 = sched.qmass[0] / sched.a[0]
        assert out[0] == pytest.approx(rate * (1.0 - q0), rel=1e-12)
        for i in range(1, k + 1):
            assert out[i] == pytest.approx(rate, rel=1e-12)
        assert np.allclose(out[k + 1:], 0.0)

    def test_rewards_are_conditional(self):
        model, rewards, main, primed, rate, abs_idx = setup_schedules()
        k = 6
        sched = main.snapshot()
        _, vr = build_vkl(sched, None, k, None, rate,
                          rewards.rates[abs_idx], alpha_r=1.0)
        for i in range(k + 1):
            assert vr.rates[i] == pytest.approx(sched.b(i))
        assert vr.rates[-1] == 0.0  # the sink a carries no reward

    def test_absorbing_rewards_preserved(self):
        model, rewards, main, primed, rate, abs_idx = setup_schedules()
        k = 6
        _, vr = build_vkl(main.snapshot(), None, k, None, rate,
                          rewards.rates[abs_idx], alpha_r=1.0)
        assert vr.rates[k + 1] == pytest.approx(rewards.rates[abs_idx[0]])

    def test_mismatched_primed_args_rejected(self):
        model, rewards, main, primed, rate, abs_idx = setup_schedules()
        with pytest.raises(ModelError):
            build_vkl(main.snapshot(), None, 5, 3, rate,
                      rewards.rates[abs_idx], alpha_r=1.0)

    def test_alpha_below_one_needs_primed(self):
        model, rewards, main, primed, rate, abs_idx = setup_schedules()
        with pytest.raises(ModelError):
            build_vkl(main.snapshot(), None, 5, None, rate,
                      rewards.rates[abs_idx], alpha_r=0.5)

    def test_too_short_schedule_rejected(self):
        model, rewards, main, primed, rate, abs_idx = setup_schedules()
        with pytest.raises(ModelError):
            build_vkl(main.snapshot(), None, 500, None, rate,
                      rewards.rates[abs_idx], alpha_r=1.0)
