"""Truncation-point selection: minimality, validity, budget splitting."""

import numpy as np
import pytest

from repro import RewardStructure
from repro.core.schedules import ScheduleBuilder
from repro.core.truncation import (
    TruncationChoice,
    select_truncation,
    truncation_error_bound,
)
from repro.exceptions import TruncationError
from repro.markov.poisson import poisson_expected_excess
from repro.models import erlang_chain, random_ctmc


def builders_for(model, rewards, reg=0):
    main, primed, rate, _ = ScheduleBuilder.for_model(model, rewards, reg)
    return main, primed, rate


class TestSelection:
    def test_bound_achieved(self, random_irreducible):
        rewards = RewardStructure.constant(15)
        main, primed, rate = builders_for(random_irreducible, rewards)
        choice = select_truncation(main, primed, rate, t=10.0,
                                   eps_budget=1e-10, r_max=1.0)
        assert choice.error_bound <= 1e-10

    def test_minimality(self, random_irreducible):
        rewards = RewardStructure.constant(15)
        main, primed, rate = builders_for(random_irreducible, rewards)
        choice = select_truncation(main, primed, rate, t=10.0,
                                   eps_budget=1e-10, r_max=1.0)
        k = choice.k_point
        if k > 0:
            prev = (main.a_at(k - 1)
                    * poisson_expected_excess(rate * 10.0, k - 1))
            assert prev > 1e-10  # k-1 would not satisfy the budget

    def test_steps_property(self):
        c = TruncationChoice(k_point=7, l_point=3, error_bound=0.0)
        assert c.steps == 10
        c2 = TruncationChoice(k_point=7, l_point=None, error_bound=0.0)
        assert c2.steps == 7

    def test_k_grows_with_t(self, random_irreducible):
        rewards = RewardStructure.constant(15)
        main, primed, rate = builders_for(random_irreducible, rewards)
        ks = [select_truncation(main, primed, rate, t, 1e-10, 1.0).k_point
              for t in (1.0, 10.0, 100.0)]
        assert ks[0] <= ks[1] <= ks[2]

    def test_k_shrinks_with_eps(self, random_irreducible):
        rewards = RewardStructure.constant(15)
        main, primed, rate = builders_for(random_irreducible, rewards)
        loose = select_truncation(main, primed, rate, 10.0, 1e-4, 1.0)
        tight = select_truncation(main, primed, rate, 10.0, 1e-13, 1.0)
        assert loose.k_point <= tight.k_point

    def test_zero_rmax_trivial(self, random_irreducible):
        rewards = RewardStructure.constant(15)
        main, primed, rate = builders_for(random_irreducible, rewards)
        choice = select_truncation(main, primed, rate, 10.0, 1e-10, 0.0)
        assert choice.k_point == 0
        assert choice.error_bound == 0.0

    def test_exhausted_schedule_short_circuit(self, two_state):
        model, rewards, *_ = two_state
        main, primed, rate = builders_for(model, rewards)
        choice = select_truncation(main, primed, rate, 1e6, 1e-13, 1.0)
        assert choice.k_point <= 2  # schedule exhausts at a(2) = 0
        assert choice.error_bound == 0.0

    def test_hard_cap_raises(self):
        # An Erlang chain never regenerates: a(k) stays ~1 for many steps,
        # so a tiny cap must trip the guard.
        model, rewards = erlang_chain(50, 1.0)
        main, primed, rate = builders_for(model, rewards)
        with pytest.raises(TruncationError):
            select_truncation(main, primed, rate, 50.0, 1e-12, 1.0,
                              hard_cap=5)

    def test_validation(self, random_irreducible):
        rewards = RewardStructure.constant(15)
        main, primed, rate = builders_for(random_irreducible, rewards)
        with pytest.raises(ValueError):
            select_truncation(main, primed, rate, -1.0, 1e-10, 1.0)
        with pytest.raises(ValueError):
            select_truncation(main, primed, rate, 1.0, 0.0, 1.0)


class TestBoundFunction:
    def test_additivity(self):
        b_main = truncation_error_bound(0.5, 3, None, None, 10.0, 2.0)
        b_both = truncation_error_bound(0.5, 3, 0.25, 2, 10.0, 2.0)
        assert b_both > b_main

    def test_scales_with_rmax(self):
        b1 = truncation_error_bound(0.5, 3, None, None, 10.0, 1.0)
        b2 = truncation_error_bound(0.5, 3, None, None, 10.0, 3.0)
        assert b2 == pytest.approx(3.0 * b1)

    def test_primed_uses_tail_probability(self):
        # With a'(L)=1 and L=0 the primed term is r_max·P[N >= 1] <= r_max.
        b = truncation_error_bound(0.0, 0, 1.0, 0, 5.0, 1.0)
        assert 0.9 < b <= 1.0
