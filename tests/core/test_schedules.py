"""Regenerative schedules: probabilistic invariants of the recursion."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import RewardStructure
from repro.core.schedules import ScheduleBuilder
from repro.exceptions import ModelError
from repro.models import random_ctmc, two_state_availability


def make_builders(model, rewards, reg=0):
    return ScheduleBuilder.for_model(model, rewards, reg)


class TestForModel:
    def test_two_state_exhausts(self, two_state):
        model, rewards, *_ = two_state
        main, primed, rate, absorbing = make_builders(model, rewards)
        assert primed is None  # initial mass concentrated on r
        assert absorbing.size == 0
        main.extend_to(10)
        assert main.exhausted
        sched = main.snapshot()
        # From r=0 (rate Λ=10): survive prob 0.1 to state 1, then state 1
        # returns to 0 with probability 1 → a = [1, 0.1, 0].
        assert sched.a[0] == 1.0
        assert sched.a[1] == pytest.approx(0.1)
        assert sched.a[2] == pytest.approx(0.0, abs=1e-300)

    def test_primed_builder_when_distributed_initial(self):
        model = random_ctmc(8, seed=5, initial=None)
        init = np.zeros(8)
        init[0], init[3] = 0.4, 0.6
        model = random_ctmc(8, seed=5, initial=init)
        rewards = RewardStructure.constant(8)
        main, primed, *_ = ScheduleBuilder.for_model(model, rewards, 0)
        assert primed is not None
        assert primed.a_at(0) == pytest.approx(0.6)

    def test_absorbing_regenerative_rejected(self, erlang3):
        model, rewards = erlang3
        with pytest.raises(ModelError):
            ScheduleBuilder.for_model(model, rewards, 3)  # state 3 absorbing

    def test_initial_mass_on_absorbing_rejected(self, erlang3):
        model, rewards = erlang3
        bad = np.zeros(4)
        bad[3] = 1.0
        from repro import CTMC
        model2 = CTMC(model.generator, initial=bad)
        with pytest.raises(ModelError):
            ScheduleBuilder.for_model(model2, rewards, 0)


class TestInvariants:
    def test_a_non_increasing(self, random_irreducible):
        rewards = RewardStructure.constant(15)
        main, _, _, _ = make_builders(random_irreducible, rewards)
        main.extend_to(60)
        a = main.snapshot().a
        assert np.all(np.diff(a) <= 1e-15)

    def test_flow_conservation(self, random_absorbing):
        """a(k) = a(k+1) + qmass(k) + Σ_i vmass(k,i): every excursion
        either survives, regenerates, or absorbs."""
        rewards = RewardStructure.constant(14)
        main, _, _, absorbing = make_builders(random_absorbing, rewards)
        main.extend_to(50)
        s = main.snapshot()
        n = min(50, s.n - 1)
        recon = s.a[1:n + 1] + s.qmass[:n] + s.vmass[:n].sum(axis=1)
        assert np.allclose(recon, s.a[:n], atol=1e-14)

    def test_reward_mass_bounded(self, random_irreducible):
        r = np.linspace(0.0, 3.0, 15)
        rewards = RewardStructure(r)
        main, _, _, _ = make_builders(random_irreducible, rewards)
        main.extend_to(40)
        s = main.snapshot()
        assert np.all(s.c <= 3.0 * s.a + 1e-15)
        assert np.all(s.c >= 0.0)

    def test_b_conditional_reward(self, random_irreducible):
        rewards = RewardStructure.constant(15, 2.0)
        main, _, _, _ = make_builders(random_irreducible, rewards)
        main.extend_to(20)
        s = main.snapshot()
        for k in range(0, 20, 5):
            if s.a[k] > 0:
                assert s.b(k) == pytest.approx(2.0)

    def test_steps_done_counts_matvecs(self, random_irreducible):
        rewards = RewardStructure.constant(15)
        main, _, _, _ = make_builders(random_irreducible, rewards)
        main.extend_to(25)
        assert main.steps_done == 25
        main.extend_to(10)  # no-op: already there
        assert main.steps_done == 25

    def test_exhausted_stops_stepping(self, two_state):
        model, rewards, *_ = two_state
        main, _, _, _ = make_builders(model, rewards)
        main.extend_to(500)
        assert main.steps_done < 10  # exhausts after ~2 steps


@settings(max_examples=30, deadline=None)
@given(n=st.integers(min_value=3, max_value=12),
       seed=st.integers(min_value=0, max_value=9999),
       absorbing=st.integers(min_value=0, max_value=2))
def test_schedule_properties(n, seed, absorbing):
    """Property: on random chains, a(k) decreasing, flow conserved, and
    conditional branch masses form a probability (q+w+v = 1)."""
    if absorbing >= n - 2:
        absorbing = 0
    model = random_ctmc(n, density=0.4, seed=seed, absorbing=absorbing)
    rewards = RewardStructure.constant(n)
    main, _, rate, abs_idx = ScheduleBuilder.for_model(model, rewards, 0)
    main.extend_to(30)
    s = main.snapshot()
    m = min(30, s.n - 1)
    if m == 0:
        return
    assert np.all(np.diff(s.a[:m + 1]) <= 1e-12)
    total = s.a[1:m + 1] + s.qmass[:m] + s.vmass[:m].sum(axis=1)
    assert np.allclose(total, s.a[:m], rtol=1e-12, atol=1e-15)
