"""Original regenerative randomization (RR) vs references."""

import numpy as np
import pytest

from repro import (
    MRR,
    TRR,
    RegenerativeRandomizationSolver,
    RewardStructure,
    StandardRandomizationSolver,
)
from repro.models import random_ctmc, tandem_repair
from tests.conftest import exact_two_state_mrr, exact_two_state_ua


class TestCorrectness:
    def test_two_state(self, two_state):
        model, rewards, *_ = two_state
        times = [0.1, 1.0, 100.0]
        sol = RegenerativeRandomizationSolver().solve(model, rewards, TRR,
                                                      times, eps=1e-11)
        assert np.allclose(sol.values, exact_two_state_ua(times), atol=1e-11)
        mol = RegenerativeRandomizationSolver().solve(model, rewards, MRR,
                                                      times, eps=1e-11)
        assert np.allclose(mol.values, exact_two_state_mrr(times), atol=1e-11)

    @pytest.mark.parametrize("absorbing", [0, 1])
    def test_random_chain_vs_sr(self, absorbing):
        model = random_ctmc(12, density=0.35, seed=21, absorbing=absorbing)
        rewards = RewardStructure(np.linspace(0, 1.5, 12))
        times = [0.5, 5.0, 50.0]
        ref = StandardRandomizationSolver().solve(model, rewards, TRR,
                                                  times, eps=1e-13)
        sol = RegenerativeRandomizationSolver().solve(model, rewards, TRR,
                                                      times, eps=1e-10)
        assert np.allclose(sol.values, ref.values, atol=1e-10)

    def test_distributed_initial(self):
        init = np.zeros(10)
        init[1], init[4] = 0.5, 0.5  # α_r = 0 for default regenerative
        model = random_ctmc(10, density=0.4, seed=13, initial=init)
        rewards = RewardStructure.indicator(10, [0, 9])
        ref = StandardRandomizationSolver().solve(model, rewards, TRR,
                                                  [3.0], eps=1e-13)
        sol = RegenerativeRandomizationSolver().solve(model, rewards, TRR,
                                                      [3.0], eps=1e-10)
        assert sol.values[0] == pytest.approx(ref.values[0], abs=1e-10)
        assert sol.stats["alpha_r"] < 1.0
        assert sol.stats["L"][0] >= 0

    def test_stiff_tandem(self):
        model, rewards = tandem_repair(4, fail=1e-4, repair=1.0,
                                       coverage=0.95)
        ref = StandardRandomizationSolver().solve(model, rewards, TRR,
                                                  [1e4], eps=1e-13)
        sol = RegenerativeRandomizationSolver().solve(model, rewards, TRR,
                                                      [1e4], eps=1e-10)
        assert sol.values[0] == pytest.approx(ref.values[0], abs=1e-10)


class TestWork:
    def test_steps_are_k_plus_l(self, random_irreducible):
        rewards = RewardStructure.indicator(15, [3])
        sol = RegenerativeRandomizationSolver().solve(
            random_irreducible, rewards, TRR, [1.0, 10.0], eps=1e-10)
        k = sol.stats["K"]
        l = np.maximum(sol.stats["L"], 0)
        assert np.all(sol.steps == k + l)

    def test_steps_grow_slowly_in_t(self, random_irreducible):
        rewards = RewardStructure.indicator(15, [3])
        sol = RegenerativeRandomizationSolver().solve(
            random_irreducible, rewards, TRR, [10.0, 1e4], eps=1e-10)
        inner = sol.stats["inner_sr_steps"]
        # Transformation steps grow ~log t (t grew 1000×, steps must grow
        # far less); the inner SR solve carries the Λt growth instead.
        assert sol.steps[1] < 10 * sol.steps[0]
        assert inner[1] > 50 * inner[0]

    def test_explicit_regenerative_state(self, random_irreducible):
        rewards = RewardStructure.indicator(15, [3])
        ref = StandardRandomizationSolver().solve(random_irreducible,
                                                  rewards, TRR, [5.0],
                                                  eps=1e-13)
        for reg in (0, 4):
            sol = RegenerativeRandomizationSolver(regenerative=reg).solve(
                random_irreducible, rewards, TRR, [5.0], eps=1e-10)
            assert sol.values[0] == pytest.approx(ref.values[0], abs=1e-10)
            assert sol.stats["regenerative"] == reg

    def test_zero_rewards(self, two_state):
        model, _, *_ = two_state
        rewards = RewardStructure.indicator(2, [])
        sol = RegenerativeRandomizationSolver().solve(model, rewards, TRR,
                                                      [1.0], eps=1e-10)
        assert sol.values[0] == 0.0
