"""RRL — the paper's method — against closed forms, SR and RR."""

import numpy as np
import pytest

from repro import (
    MRR,
    TRR,
    RegenerativeRandomizationSolver,
    RewardStructure,
    RRLSolver,
    StandardRandomizationSolver,
)
from repro.models import mm1k_queue, random_ctmc
from tests.conftest import exact_two_state_mrr, exact_two_state_ua


class TestCorrectness:
    def test_two_state_both_measures(self, two_state):
        model, rewards, *_ = two_state
        times = [0.05, 1.0, 100.0, 1e4]
        trr = RRLSolver().solve(model, rewards, TRR, times, eps=1e-11)
        mrr = RRLSolver().solve(model, rewards, MRR, times, eps=1e-11)
        assert np.allclose(trr.values, exact_two_state_ua(times), atol=1e-11)
        assert np.allclose(mrr.values, exact_two_state_mrr(times), atol=1e-11)

    @pytest.mark.parametrize("absorbing", [0, 1, 2])
    @pytest.mark.parametrize("measure", [TRR, MRR])
    def test_random_chain_vs_sr(self, absorbing, measure):
        model = random_ctmc(12, density=0.35, seed=31, absorbing=absorbing)
        rewards = RewardStructure(np.linspace(0.2, 1.8, 12))
        times = [0.5, 5.0, 50.0]
        ref = StandardRandomizationSolver().solve(model, rewards, measure,
                                                  times, eps=1e-13)
        sol = RRLSolver().solve(model, rewards, measure, times, eps=1e-10)
        assert np.allclose(sol.values, ref.values, atol=2e-10)

    def test_agrees_with_rr(self, random_irreducible):
        rewards = RewardStructure.indicator(15, [2, 7])
        times = [1.0, 20.0]
        rr = RegenerativeRandomizationSolver().solve(
            random_irreducible, rewards, TRR, times, eps=1e-11)
        rrl = RRLSolver().solve(random_irreducible, rewards, TRR, times,
                                eps=1e-11)
        assert np.allclose(rr.values, rrl.values, atol=1e-10)
        assert np.array_equal(rr.steps, rrl.steps)  # same transformation

    def test_distributed_initial(self):
        init = np.zeros(10)
        init[0], init[5] = 0.3, 0.7
        model = random_ctmc(10, density=0.4, seed=17, initial=init)
        rewards = RewardStructure.indicator(10, [9])
        ref = StandardRandomizationSolver().solve(model, rewards, TRR,
                                                  [4.0], eps=1e-13)
        sol = RRLSolver().solve(model, rewards, TRR, [4.0], eps=1e-10)
        assert sol.values[0] == pytest.approx(ref.values[0], abs=1e-10)

    def test_queue_rewards(self):
        model, rewards = mm1k_queue(6, arrival=1.0, service=2.0)
        times = [1.0, 10.0, 100.0]
        ref = StandardRandomizationSolver().solve(model, rewards, TRR,
                                                  times, eps=1e-13)
        sol = RRLSolver().solve(model, rewards, TRR, times, eps=1e-10)
        assert np.allclose(sol.values, ref.values, atol=1e-9)


class TestWorkAndStats:
    def test_abscissae_reported(self, random_irreducible):
        rewards = RewardStructure.indicator(15, [3])
        sol = RRLSolver().solve(random_irreducible, rewards, TRR,
                                [1.0, 100.0], eps=1e-10)
        absc = sol.stats["n_abscissae"]
        assert np.all(absc >= 8)
        assert np.all(absc < 2000)

    def test_t_factor_configurable(self, two_state):
        model, rewards, *_ = two_state
        sol = RRLSolver(t_factor=16.0).solve(model, rewards, TRR, [1.0],
                                             eps=1e-10)
        assert sol.values[0] == pytest.approx(exact_two_state_ua(1.0),
                                              abs=1e-10)

    def test_steps_logarithmic_in_t(self, random_irreducible):
        rewards = RewardStructure.indicator(15, [3])
        sol = RRLSolver().solve(random_irreducible, rewards, TRR,
                                [1e2, 1e4, 1e6], eps=1e-12)
        s = sol.steps.astype(float)
        # Doubling the exponent of t adds a roughly constant increment.
        inc1, inc2 = s[1] - s[0], s[2] - s[1]
        assert inc2 < 3.0 * max(inc1, 1.0)

    def test_eps_honored_against_tight_sr(self):
        model = random_ctmc(10, density=0.4, seed=41)
        rewards = RewardStructure.indicator(10, [1])
        ref = StandardRandomizationSolver().solve(model, rewards, TRR,
                                                  [10.0], eps=1e-14)
        for eps in (1e-6, 1e-9, 1e-12):
            sol = RRLSolver().solve(model, rewards, TRR, [10.0], eps=eps)
            assert abs(sol.values[0] - ref.values[0]) <= eps

    def test_zero_rewards(self, two_state):
        model, _, *_ = two_state
        rewards = RewardStructure.indicator(2, [])
        sol = RRLSolver().solve(model, rewards, MRR, [1.0], eps=1e-10)
        assert sol.values[0] == 0.0

    def test_invalid_eps(self, two_state):
        model, rewards, *_ = two_state
        with pytest.raises(ValueError):
            RRLSolver().solve(model, rewards, TRR, [1.0], eps=-1.0)
