"""Certified bounds variant: the sandwich must contain the SR reference."""

import numpy as np
import pytest

from repro import (
    MRR,
    TRR,
    RewardStructure,
    RRLBoundsSolver,
    StandardRandomizationSolver,
)
from repro.models import Raid5Params, build_raid5_reliability, random_ctmc
from tests.conftest import exact_two_state_ua


class TestSandwich:
    def test_two_state(self, two_state):
        model, rewards, *_ = two_state
        times = [0.1, 1.0, 10.0]
        b = RRLBoundsSolver().solve_bounds(model, rewards, TRR, times,
                                           eps=1e-11)
        exact = exact_two_state_ua(times)
        assert np.all(b.lower <= exact + 1e-10)
        assert np.all(exact <= b.upper + 1e-10)
        assert np.all(b.width >= -1e-12)

    @pytest.mark.parametrize("measure", [TRR, MRR])
    def test_random_chain_contains_reference(self, measure):
        model = random_ctmc(10, density=0.4, seed=55, absorbing=1)
        rewards = RewardStructure(np.linspace(0.1, 1.0, 10))
        times = [1.0, 10.0]
        ref = StandardRandomizationSolver().solve(model, rewards, measure,
                                                  times, eps=1e-13)
        b = RRLBoundsSolver().solve_bounds(model, rewards, measure, times,
                                           eps=1e-10)
        slack = 1e-9
        assert np.all(b.lower <= ref.values + slack)
        assert np.all(ref.values <= b.upper + slack)

    def test_width_is_realized_truncation_loss(self):
        model = random_ctmc(10, density=0.4, seed=55)
        rewards = RewardStructure.indicator(10, [3])
        b = RRLBoundsSolver().solve_bounds(model, rewards, TRR, [5.0],
                                           eps=1e-8)
        # Width must be far below the a-priori eps/2 selection budget —
        # the union bound is conservative.
        assert b.width[0] <= 0.5e-8
        assert b.stats["p_absorbed"][0] >= -1e-12

    def test_midpoint_between_bounds(self, two_state):
        model, rewards, *_ = two_state
        b = RRLBoundsSolver().solve_bounds(model, rewards, TRR, [1.0],
                                           eps=1e-10)
        assert b.lower[0] <= b.midpoint[0] <= b.upper[0]

    def test_upper_clipped_at_rmax(self):
        model = random_ctmc(6, density=0.5, seed=2)
        rewards = RewardStructure.constant(6, 3.0)
        b = RRLBoundsSolver().solve_bounds(model, rewards, TRR, [1.0],
                                           eps=1e-6)
        assert np.all(b.upper <= 3.0 + 1e-12)

    def test_zero_rewards(self, two_state):
        model, _, *_ = two_state
        rewards = RewardStructure.indicator(2, [])
        b = RRLBoundsSolver().solve_bounds(model, rewards, TRR, [1.0])
        assert b.lower[0] == b.upper[0] == 0.0

    def test_raid_certificate(self):
        model, rewards, _ = build_raid5_reliability(Raid5Params(groups=4))
        b = RRLBoundsSolver().solve_bounds(model, rewards, TRR,
                                           [10.0, 1000.0], eps=1e-12)
        assert np.all(b.width <= 1e-12)
        assert np.all(np.diff(b.lower) > 0)  # UR grows

    def test_invalid_eps(self, two_state):
        model, rewards, *_ = two_state
        with pytest.raises(ValueError):
            RRLBoundsSolver().solve_bounds(model, rewards, TRR, [1.0],
                                           eps=0.0)
