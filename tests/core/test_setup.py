"""Solver preparation: regenerative-state defaults and setup wiring."""

import numpy as np
import pytest

from repro import CTMC, RewardStructure
from repro.core._setup import default_regenerative_state, prepare
from repro.exceptions import ModelError
from repro.models import erlang_chain, random_ctmc


class TestDefaultRegenerative:
    def test_most_likely_initial_state(self):
        init = np.zeros(6)
        init[2], init[4] = 0.7, 0.3
        model = random_ctmc(6, density=0.5, seed=1, initial=init)
        assert default_regenerative_state(model) == 2

    def test_absorbing_states_excluded(self):
        # Initial mass on a transient state; absorbing state must never
        # be chosen even if ties would favour it.
        model = CTMC.from_transitions(3, [(0, 1, 1.0), (1, 0, 1.0),
                                          (1, 2, 0.1)], initial=0)
        assert default_regenerative_state(model) == 0

    def test_all_absorbing_rejected(self):
        model = CTMC.from_transitions(2, [], initial=0)
        with pytest.raises(ModelError):
            default_regenerative_state(model)


class TestPrepare:
    def test_alpha_r_and_primed(self):
        init = np.zeros(8)
        init[0], init[3] = 0.25, 0.75
        model = random_ctmc(8, density=0.5, seed=9, initial=init)
        rewards = RewardStructure.constant(8)
        setup = prepare(model, rewards, None, None)
        assert setup.regenerative == 3
        assert setup.alpha_r == pytest.approx(0.75)
        assert setup.primed is not None
        assert setup.primed.a_at(0) == pytest.approx(0.25)

    def test_no_primed_when_concentrated(self, two_state):
        model, rewards, *_ = two_state
        setup = prepare(model, rewards, None, None)
        assert setup.primed is None
        assert setup.alpha_r == 1.0

    def test_absorbing_rewards_aligned(self):
        model, rewards = erlang_chain(3, 1.0)
        setup = prepare(model, rewards, 0, None)
        assert list(setup.absorbing) == [3]
        assert setup.absorbing_rewards[0] == 1.0

    def test_custom_rate_respected(self, two_state):
        model, rewards, *_ = two_state
        setup = prepare(model, rewards, None, 50.0)
        assert setup.rate == 50.0
