"""Smoke-run every example script (reduced sizes via REPRO_G).

Examples are part of the public surface: they must keep executing
end-to-end and printing their headline lines as the library evolves.
"""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, monkeypatch, capsys, g: str | None = "4",
                argv: list[str] | None = None) -> str:
    if g is not None:
        monkeypatch.setenv("REPRO_G", g)
    monkeypatch.setattr(sys, "argv", [name] + (argv or []))
    runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    return capsys.readouterr().out


def test_quickstart(monkeypatch, capsys):
    out = run_example("quickstart.py", monkeypatch, capsys, g=None)
    assert "UA(t)" in out and "MRR(t)" in out
    # Every reported error line must show an error below 1e-7.
    for line in out.splitlines():
        if "max|err|" in line:
            err = float(line.split("=")[1].split()[0])
            assert err < 1e-7


def test_raid5_unreliability(monkeypatch, capsys):
    out = run_example("raid5_unreliability.py", monkeypatch, capsys)
    assert "UR(t)" in out and "abscissae" in out


def test_raid5_availability(monkeypatch, capsys):
    out = run_example("raid5_availability.py", monkeypatch, capsys)
    assert "steady-state unavailability" in out
    assert "RSD steps" in out


def test_performability(monkeypatch, capsys):
    out = run_example("performability.py", monkeypatch, capsys)
    assert "Expected throughput" in out
    # The cross-check line reports the deviation vs SR.
    dev_line = [ln for ln in out.splitlines() if "max deviation" in ln][0]
    assert "e-" in dev_line


def test_custom_model(monkeypatch, capsys):
    out = run_example("custom_model.py", monkeypatch, capsys, g=None)
    assert "regenerative" in out.lower()
    assert "hub" in out


@pytest.mark.slow
def test_bounds_and_diagnostics(monkeypatch, capsys):
    # This one builds a G=8 model and runs four bound inversions; it is
    # the slowest example (~30 s) and marked accordingly.
    out = run_example("bounds_and_diagnostics.py", monkeypatch, capsys,
                      g=None)
    assert "Certified bounds" in out
    assert "MTTF" in out


def test_multiprocessor(monkeypatch, capsys):
    out = run_example("multiprocessor.py", monkeypatch, capsys, g=None)
    assert "coverage" in out and "MTTF" in out
    assert "FAIL" not in out
