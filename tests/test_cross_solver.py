"""Cross-solver consistency: every registered transient solver must agree
on every generated scenario.

For each scenario from the parametric generator, RR, RRL, SR, RSD (on
irreducible models), AU and ODE are run on the same ``(measure, t, ε)``
grid. Methods with guaranteed error bounds (SR, RR, RRL, RSD, AU-on-TRR)
must agree pairwise within their *combined* ε budgets; the unguaranteed
comparators (ODE everywhere, AU's Simpson-integrated MRR) get a looser
numerical tolerance. A disagreement here means a solver's truncation
analysis — not just its speed — is broken, which is exactly the class of
bug a refactor of the shared stepping kernel could introduce.
"""

import numpy as np
import pytest

from repro.analysis.runner import get_solver
from repro.batch.scenarios import build_scenario_model, generate_scenarios
from repro.markov.base import SolveCell
from repro.markov.rewards import Measure, RewardStructure

EPS = 1e-8

#: Tolerance for methods with rigorous total-error guarantees: two methods
#: each eps-accurate can differ by 2·eps; a small float fuzz rides along.
GUARANTEED_TOL = 4.0 * EPS

#: ODE (heuristic local error control) and AU's Simpson-integrated MRR.
NUMERIC_TOL = 5e-6

TRR_SCENARIOS = (
    generate_scenarios(families=("raid5",), times=(1.0, 50.0), eps=EPS)[:2]
    + generate_scenarios(families=("multiprocessor",),
                         times=(1.0, 50.0), eps=EPS)[:2]
    + generate_scenarios(families=("birth_death", "block"), seed=5,
                         random_count=2, times=(0.5, 5.0), eps=EPS)
)

MRR_SCENARIOS = [
    s.with_measure(Measure.MRR)
    for s in (generate_scenarios(families=("birth_death",), seed=9,
                                 random_count=1, times=(0.5, 5.0),
                                 eps=EPS)
              + generate_scenarios(families=("multiprocessor",),
                                   times=(1.0, 20.0), eps=EPS)[:1]
              + generate_scenarios(families=("block",), seed=3,
                                   random_count=1, times=(0.5, 5.0),
                                   eps=EPS))
]


def _methods_for(model, measure):
    """(guaranteed methods, numeric-tolerance methods) for a scenario."""
    guaranteed = ["SR", "RR", "RRL"]
    numeric = ["ODE"]
    if model.is_irreducible():
        guaranteed.append("RSD")
    if measure is Measure.TRR:
        guaranteed.append("AU")
    else:
        numeric.append("AU")
    return guaranteed, numeric


def _solve_all(scenario):
    model, rewards = build_scenario_model(scenario)
    guaranteed, numeric = _methods_for(model, scenario.measure)
    values = {}
    for method in guaranteed + numeric:
        sol = get_solver(method).solve(model, rewards, scenario.measure,
                                       list(scenario.times), scenario.eps)
        # Unified stats schema: every solver reports its rate.
        assert "rate" in sol.stats, f"{method} solution lacks stats['rate']"
        values[method] = np.asarray(sol.values)
    return guaranteed, numeric, values


@pytest.mark.parametrize("scenario", TRR_SCENARIOS,
                         ids=lambda s: s.name)
def test_trr_consistency(scenario):
    guaranteed, numeric, values = _solve_all(scenario)
    reference = values["RRL"]
    for method in guaranteed:
        assert values[method] == pytest.approx(reference,
                                               abs=GUARANTEED_TOL), \
            f"{method} disagrees with RRL on {scenario.name}"
    for method in numeric:
        assert values[method] == pytest.approx(reference,
                                               abs=NUMERIC_TOL), \
            f"{method} disagrees with RRL on {scenario.name}"


@pytest.mark.parametrize("scenario", MRR_SCENARIOS,
                         ids=lambda s: s.name)
def test_mrr_consistency(scenario):
    guaranteed, numeric, values = _solve_all(scenario)
    reference = values["RRL"]
    for method in guaranteed:
        assert values[method] == pytest.approx(reference,
                                               abs=GUARANTEED_TOL), \
            f"{method} disagrees with RRL on {scenario.name}"
    for method in numeric:
        assert values[method] == pytest.approx(reference,
                                               abs=NUMERIC_TOL), \
            f"{method} disagrees with RRL on {scenario.name}"


def _fusable_methods_for(model):
    """The registry's stack-fusable methods applicable to this model
    (RSD declares requires_irreducible)."""
    from repro.solvers import registry

    return [m for m in sorted(registry.stack_fusable_methods())
            if model.is_irreducible()
            or not registry.get_spec(m).requires_irreducible]


@pytest.mark.parametrize("scenario", TRR_SCENARIOS + MRR_SCENARIOS,
                         ids=lambda s: s.name)
def test_fused_equals_unfused_bitwise(scenario):
    """Every generated scenario, fused with perturbed sibling cells, must
    reproduce its standalone solution bit for bit — per fusable solver.

    The sibling cells vary everything fusion is allowed to vary (rewards,
    eps, times) so the stacked pass cannot accidentally share anything
    beyond the stepping itself.
    """
    model, rewards = build_scenario_model(scenario)
    cell = SolveCell(rewards=rewards, measure=scenario.measure,
                     times=scenario.times, eps=scenario.eps)
    siblings = [
        SolveCell(rewards=RewardStructure(0.5 * rewards.rates),
                  measure=scenario.measure, times=scenario.times,
                  eps=scenario.eps),
        SolveCell(rewards=rewards, measure=scenario.measure,
                  times=scenario.times, eps=scenario.eps * 0.1),
        SolveCell(rewards=rewards, measure=scenario.measure,
                  times=scenario.times[:1], eps=scenario.eps),
    ]
    for method in _fusable_methods_for(model):
        solver = get_solver(method)
        fused = solver.solve_fused(model, [cell] + siblings)
        assert len(fused) == 4
        for got, ref_cell in zip(fused, [cell] + siblings):
            solo = get_solver(method).solve(
                model, ref_cell.rewards, ref_cell.measure,
                list(ref_cell.times), ref_cell.eps)
            assert np.array_equal(got.values, solo.values), \
                f"fused {method} values drifted on {scenario.name}"
            assert np.array_equal(got.steps, solo.steps), \
                f"fused {method} steps drifted on {scenario.name}"
            assert got.stats["fused_width"] == 4


def test_matrix_covers_every_registered_solver():
    """Pin: a solver registered in the capability registry must appear in
    this module's consistency matrix. Adding a new solver without
    teaching it to this suite fails here, not silently."""
    from repro.solvers import registry

    covered = set()
    for scenario in TRR_SCENARIOS + MRR_SCENARIOS:
        model, _ = build_scenario_model(scenario)
        guaranteed, numeric = _methods_for(model, scenario.measure)
        covered.update(guaranteed)
        covered.update(numeric)
    covered.add("MS")  # exercised by test_multistep_agrees_on_trr
    missing = set(registry.known_methods()) - covered
    assert not missing, (
        f"registered solver(s) {sorted(missing)} are not exercised by "
        "the cross-solver matrix; add them to _methods_for (or a "
        "dedicated test) so every registered method stays consistency-"
        "checked")


def test_multistep_agrees_on_trr():
    """MS (TRR-only) rides the same kernel; check it against SR."""
    scenario = generate_scenarios(families=("birth_death",), seed=13,
                                  random_count=1, times=(0.5, 5.0),
                                  eps=EPS)[0]
    model, rewards = build_scenario_model(scenario)
    ms = get_solver("MS").solve(model, rewards, Measure.TRR,
                                list(scenario.times), scenario.eps)
    sr = get_solver("SR").solve(model, rewards, Measure.TRR,
                                list(scenario.times), scenario.eps)
    assert ms.values == pytest.approx(sr.values, abs=GUARANTEED_TOL)
