"""JobQueue: journal durability, kill-and-resume bit-identity, failure
survival and corruption handling."""

import json

import numpy as np
import pytest

from repro.batch.planner import SolveRequest
from repro.batch.scenarios import Scenario
from repro.exceptions import QueueError
from repro.markov.rewards import Measure
from repro.service import JobQueue, SolveService
from repro.service.protocol import SCHEMA_VERSION


def _scenario(n=7, birth=0.4, death=1.2):
    return Scenario(name=f"q-bd-{n}", family="birth_death",
                    params={"n": n, "birth": birth, "death": death},
                    times=(0.5, 2.0), eps=1e-8)


def _requests(count=6):
    out = []
    for i in range(count):
        out.append(SolveRequest(scenario=_scenario(n=5 + i),
                                measure=Measure.TRR, times=(0.5, 2.0),
                                eps=1e-8, method=("SR", "RSD", "RRL")[i % 3],
                                key=("job", i)))
    return out


class TestSubmitAndInspect:
    def test_submit_assigns_sequential_ids(self, tmp_path):
        queue = JobQueue(tmp_path / "q")
        ids = queue.submit(_requests(3))
        assert ids == [0, 1, 2]
        assert queue.submit(_requests(2)) == [3, 4]
        assert queue.status()["submitted"] == 5
        assert queue.status()["pending"] == 5

    def test_poll_unknown_id_raises(self, tmp_path):
        queue = JobQueue(tmp_path / "q")
        queue.submit(_requests(1))
        assert queue.poll(0) is None
        with pytest.raises(QueueError, match="unknown job id"):
            queue.poll(99)

    def test_collect_incomplete_raises(self, tmp_path):
        queue = JobQueue(tmp_path / "q")
        queue.submit(_requests(2))
        queue.run(limit=1, checkpoint=1)
        with pytest.raises(QueueError, match="pending"):
            queue.collect()
        partial = queue.collect(require_complete=False)
        assert len(partial) == 1

    def test_resume_missing_journal_raises(self, tmp_path):
        with pytest.raises(QueueError, match="nothing to resume"):
            JobQueue.resume(tmp_path / "nowhere")

    def test_run_on_complete_queue_is_noop(self, tmp_path):
        queue = JobQueue(tmp_path / "q")
        queue.submit(_requests(2))
        queue.run()
        assert queue.run() == []
        assert queue.status()["pending"] == 0


class TestKillAndResume:
    def test_resume_is_bit_identical_to_in_process(self, tmp_path):
        """The acceptance test: kill after half the jobs, resume from
        the journal alone, and every outcome must match uninterrupted
        in-process execution bit for bit."""
        requests = _requests(6)
        reference = SolveService(fuse=False).solve(requests)

        queue = JobQueue(tmp_path / "q")
        queue.submit(requests)
        done = queue.run(SolveService(fuse=True), limit=3, checkpoint=1)
        assert len(done) == 3
        del queue  # the "kill": only the journal survives

        resumed = JobQueue.resume(tmp_path / "q")
        assert len(resumed.pending()) == 3
        resumed.run(SolveService(fuse=True), checkpoint=2)
        outcomes = resumed.collect()

        assert [o.key for o in outcomes] == [r.key for r in requests]
        for got, ref in zip(outcomes, reference):
            assert got.ok and ref.ok
            assert np.array_equal(got.value.values, ref.value.values)
            assert np.array_equal(got.value.steps, ref.value.steps)

    def test_torn_final_line_is_ignored_job_stays_pending(self, tmp_path):
        queue = JobQueue(tmp_path / "q")
        queue.submit(_requests(2))
        queue.run(limit=1, checkpoint=1)
        journal = tmp_path / "q" / "journal.jsonl"
        # Simulate a writer killed mid-append: a torn, non-JSON tail.
        with open(journal, "a") as fh:
            fh.write('{"schema_version":1,"kind":"result","id":1,"outco')
        resumed = JobQueue.resume(tmp_path / "q")
        status = resumed.status()
        assert status["completed"] == 1
        assert status["pending"] == 1  # the torn result never happened
        # Replaying must have truncated the fragment, so this run's
        # appends start a fresh record instead of merging into it...
        resumed.run()
        assert resumed.status()["pending"] == 0
        # ...which a *third* replay proves by reading every record back
        # (an un-truncated fragment would swallow the first append and
        # corrupt the journal for good).
        final = JobQueue.resume(tmp_path / "q")
        assert final.status()["pending"] == 0
        assert len(final.collect()) == 2

    def test_valid_tail_without_newline_is_kept_and_repaired(self,
                                                            tmp_path):
        queue = JobQueue(tmp_path / "q")
        queue.submit(_requests(2))
        journal = tmp_path / "q" / "journal.jsonl"
        # Hand-edited journal: complete final record, missing newline.
        journal.write_bytes(journal.read_bytes().rstrip(b"\n"))
        resumed = JobQueue.resume(tmp_path / "q")
        assert resumed.status()["submitted"] == 2  # record kept
        resumed.run()
        final = JobQueue.resume(tmp_path / "q")
        assert final.status()["pending"] == 0
        assert len(final.collect()) == 2

    def test_readers_never_mutate_a_torn_journal(self, tmp_path):
        """status/poll/collect are read-only: a torn tail they observe
        might be another process's in-flight append, so only a writer
        may cut it."""
        queue = JobQueue(tmp_path / "q")
        queue.submit(_requests(2))
        journal = tmp_path / "q" / "journal.jsonl"
        with open(journal, "a") as fh:
            fh.write('{"schema_version":1,"kind":"result","id":0,"ou')
        torn = journal.read_bytes()
        reader = JobQueue.resume(tmp_path / "q")
        assert reader.status()["pending"] == 2
        assert reader.poll(0) is None
        assert reader.collect(require_complete=False) == []
        assert journal.read_bytes() == torn  # untouched
        # A writer, by contrast, repairs before its first append.
        writer = JobQueue.resume(tmp_path / "q")
        writer.run(checkpoint=1)
        assert JobQueue.resume(tmp_path / "q").status()["pending"] == 0

    def test_non_object_journal_line_is_clean_corruption(self, tmp_path):
        queue = JobQueue(tmp_path / "q")
        queue.submit(_requests(1))
        journal = tmp_path / "q" / "journal.jsonl"
        journal.write_text("5\n" + journal.read_text())
        with pytest.raises(QueueError, match="not an object"):
            JobQueue.resume(tmp_path / "q")

    def test_record_missing_id_is_clean_corruption(self, tmp_path):
        queue = JobQueue(tmp_path / "q")
        queue.submit(_requests(1))
        journal = tmp_path / "q" / "journal.jsonl"
        journal.write_text(
            '{"schema_version": 1, "kind": "job", "request": {}}\n'
            + journal.read_text())
        with pytest.raises(QueueError, match="missing field 'id'"):
            JobQueue.resume(tmp_path / "q")

    def test_queue_path_collision_with_file_raises(self, tmp_path):
        blocker = tmp_path / "not-a-dir"
        blocker.write_text("occupied")
        with pytest.raises(QueueError, match="cannot create"):
            JobQueue(blocker)

    def test_corrupt_interior_line_raises(self, tmp_path):
        queue = JobQueue(tmp_path / "q")
        queue.submit(_requests(2))
        journal = tmp_path / "q" / "journal.jsonl"
        lines = journal.read_text().splitlines()
        lines[0] = "garbage not json"
        journal.write_text("\n".join(lines) + "\n")
        with pytest.raises(QueueError, match="corrupt journal"):
            JobQueue.resume(tmp_path / "q")

    def test_unsupported_schema_version_raises(self, tmp_path):
        queue = JobQueue(tmp_path / "q")
        queue.submit(_requests(1))
        journal = tmp_path / "q" / "journal.jsonl"
        record = json.loads(journal.read_text().splitlines()[0])
        record["schema_version"] = SCHEMA_VERSION + 7
        journal.write_text(json.dumps(record) + "\n" +
                           journal.read_text())
        with pytest.raises(QueueError, match="schema_version"):
            JobQueue.resume(tmp_path / "q")


class TestFailureCapture:
    def test_failed_cell_survives_journal_round_trip(self, tmp_path):
        doomed = SolveRequest(scenario=_scenario(), measure=Measure.TRR,
                              times=(0.5,), eps=1e-8, method="SR",
                              solver_kwargs={"max_steps": 2},
                              key="doomed")
        fine = _requests(1)[0]
        queue = JobQueue(tmp_path / "q")
        queue.submit([doomed, fine])
        queue.run()
        del queue

        resumed = JobQueue.resume(tmp_path / "q")
        assert resumed.status() == {"path": str(tmp_path / "q"),
                                    "submitted": 2, "completed": 2,
                                    "failed": 1, "pending": 0}
        failed = resumed.poll(0)
        assert not failed.ok
        assert failed.error_type == "TruncationError"
        assert "max_steps" in failed.error
        assert "TruncationError" in failed.traceback
        assert resumed.poll(1).ok

    def test_checkpoint_validation(self, tmp_path):
        queue = JobQueue(tmp_path / "q")
        with pytest.raises(ValueError, match="checkpoint"):
            queue.run(checkpoint=0)
