"""``SolveService`` facade: bit-identical to the planner plumbing it
replaces, correct scatter/ordering for mixed workloads, and proper plan
policy plumbing (fuse on/off, custom runners)."""

import numpy as np
import pytest

from repro.batch.planner import SolveRequest, execute_requests
from repro.batch.runner import BatchExecutionError, BatchRunner, BatchTask
from repro.batch.scenarios import Scenario
from repro.markov.base import TransientSolution
from repro.markov.rewards import Measure
from repro.service import ServiceResult, SolveService


def _scenario(name="svc-bd", n=8, birth=0.5, death=1.5):
    return Scenario(name=name, family="birth_death",
                    params={"n": n, "birth": birth, "death": death},
                    times=(0.5, 2.0), eps=1e-8)


def _requests():
    s = _scenario()
    out = []
    for i, method in enumerate(("SR", "SR", "RSD", "RRL")):
        out.append(SolveRequest(scenario=s, measure=Measure.TRR,
                                times=s.times, eps=1e-8 * 10.0 ** -(i % 2),
                                method=method, key=(method, i)))
    return out


def _passthrough(tag):
    return tag * 2


class TestFacadeEquivalence:
    @pytest.mark.parametrize("fuse", [True, False])
    def test_bit_identical_to_execute_requests(self, fuse):
        requests = _requests()
        direct = execute_requests(requests, BatchRunner(max_workers=1),
                                  fuse=fuse)
        via_service = SolveService(fuse=fuse).solve(requests)
        assert [o.key for o in via_service] == [o.key for o in direct]
        for a, b in zip(via_service, direct):
            assert a.ok and b.ok
            assert np.array_equal(a.value.values, b.value.values)
            assert np.array_equal(a.value.steps, b.value.steps)

    def test_fused_equals_unfused_through_facade(self):
        requests = _requests()
        fused = SolveService(fuse=True).solve(requests)
        unfused = SolveService(fuse=False).solve(requests)
        for a, b in zip(fused, unfused):
            assert np.array_equal(a.value.values, b.value.values)


class TestMixedWorkload:
    def test_execute_separates_requests_and_tasks(self):
        requests = _requests()
        tasks = [BatchTask(fn=_passthrough, args=("x",), key="t0"),
                 BatchTask(fn=_passthrough, args=("y",), key="t1")]
        result = SolveService().execute(requests, tasks)
        assert isinstance(result, ServiceResult)
        assert [o.key for o in result.outcomes] \
            == [r.key for r in requests]
        assert [o.key for o in result.task_outcomes] == ["t0", "t1"]
        assert [o.value for o in result.task_outcomes] == ["xx", "yy"]
        assert result.all_outcomes \
            == result.outcomes + result.task_outcomes
        assert result.plan.n_requests == len(requests)

    def test_solutions_unwraps_in_order(self):
        result = SolveService().execute(_requests())
        sols = result.solutions()
        assert all(isinstance(s, TransientSolution) for s in sols)

    def test_solutions_raises_on_failure(self):
        bad = SolveRequest(scenario=_scenario(), measure=Measure.TRR,
                           times=(0.5,), eps=1e-8, method="SR",
                           solver_kwargs={"max_steps": 2}, key="doomed")
        result = SolveService().execute([bad])
        assert not result.outcomes[0].ok
        assert result.outcomes[0].error_type == "TruncationError"
        with pytest.raises(BatchExecutionError, match="TruncationError"):
            result.solutions()


class TestConfigurationPlumbing:
    def test_solve_one(self):
        request = _requests()[0]
        sol = SolveService().solve_one(request)
        assert isinstance(sol, TransientSolution)
        assert sol.method == "SR"

    def test_plan_reports_policy(self):
        service = SolveService(fuse=True)
        plan = service.plan(_requests())
        assert plan.fuse_enabled
        assert "fusion on" in plan.summary()
        assert not SolveService(fuse=False).plan(_requests()).fuse_enabled

    def test_properties_and_custom_runner(self):
        runner = BatchRunner(max_workers=1, chunk_size=3)
        service = SolveService(runner=runner, fuse=False)
        assert service.runner is runner
        assert service.fuse is False

    def test_pooled_matches_inline(self):
        requests = _requests()
        inline = SolveService(workers=1).solve(requests)
        pooled = SolveService(workers=2).solve(requests)
        for a, b in zip(inline, pooled):
            assert a.ok and b.ok
            assert np.array_equal(a.value.values, b.value.values)


class TestExperimentsIntegration:
    def test_run_grid_accepts_explicit_service(self):
        from repro.analysis.experiments import ExperimentConfig, run_grid

        cfg = ExperimentConfig(groups=(2,), times=(1.0, 10.0))
        default = run_grid(cfg, include_timings=False)
        explicit = run_grid(cfg, SolveService(workers=1, fuse=True),
                            include_timings=False)
        assert explicit.table1.columns == default.table1.columns
        assert explicit.table2.columns == default.table2.columns
        assert explicit.ur_values == default.ur_values

    def test_config_service_carries_policy(self):
        from repro.analysis.experiments import ExperimentConfig

        cfg = ExperimentConfig(groups=(2,), times=(1.0,), workers=2,
                               fuse=False)
        service = cfg.service()
        assert service.fuse is False
        assert service.runner.max_workers == 2

    def test_quick_preset(self):
        from repro.analysis.experiments import ExperimentConfig

        cfg = ExperimentConfig.quick()
        assert cfg.groups == (2, 3)
        assert cfg.eps == 1e-10
