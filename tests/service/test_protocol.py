"""Wire-protocol round trips: every protocol object must survive
encode → JSON text → decode, and a decoded request must *solve*
bit-identically to the in-memory original — for every scenario family
and every method. Plus strict validation: wrong versions, unknown kinds
and non-plain data are rejected loudly."""

import json

import numpy as np
import pytest

from repro.analysis.runner import get_solver
from repro.batch.planner import SolveRequest
from repro.batch.runner import BatchOutcome
from repro.batch.scenarios import Scenario, scenario_families
from repro.exceptions import ProtocolError
from repro.markov.ctmc import CTMC
from repro.markov.rewards import Measure, RewardStructure
from repro.service import protocol
from repro.service.protocol import (
    SCHEMA_VERSION,
    ctmc_from_dict,
    ctmc_to_dict,
    from_dict,
    outcome_from_dict,
    outcome_to_dict,
    request_from_dict,
    request_to_dict,
    rewards_from_dict,
    rewards_to_dict,
    scenario_from_dict,
    scenario_to_dict,
    solution_from_dict,
    solution_to_dict,
    to_dict,
)

#: One representative (tiny) scenario per registered family.
FAMILY_SCENARIOS = {
    "raid5": Scenario(name="p-raid", family="raid5",
                      params={"groups": 2, "spare_disks": 1,
                              "spare_controllers": 1,
                              "kind": "availability"},
                      times=(0.5, 2.0), eps=1e-8),
    "multiprocessor": Scenario(name="p-mp", family="multiprocessor",
                               params={"processors": 2, "memories": 2,
                                       "coverage": 0.99,
                                       "kind": "availability"},
                               times=(0.5, 2.0), eps=1e-8),
    "birth_death": Scenario(name="p-bd", family="birth_death",
                            params={"n": 6, "birth": 0.5, "death": 1.5},
                            times=(0.5, 2.0), eps=1e-8),
    "block": Scenario(name="p-block", family="block",
                      params={"n_blocks": 2, "block_size": 3,
                              "inter_scale": 1e-3, "seed": 5},
                      times=(0.5, 2.0), eps=1e-8),
}

METHODS = ("SR", "RSD", "AU", "MS", "RR", "RRL")


def _wire_trip(obj):
    """Encode, force through actual JSON text, decode."""
    return from_dict(json.loads(json.dumps(to_dict(obj))))


def _solve(request: SolveRequest):
    """Solve a request from scratch (no worker cache involved)."""
    model, rewards = request.resolve()
    solver = get_solver(request.method, **dict(request.solver_kwargs))
    return solver.solve(model, rewards, request.measure,
                        list(request.times), request.eps)


class TestFamilyMethodMatrix:
    """The headline guarantee: every family × every method replays
    bit-identically from the wire."""

    def test_covers_every_registered_family(self):
        assert set(FAMILY_SCENARIOS) == set(scenario_families())

    @pytest.mark.parametrize("family", sorted(FAMILY_SCENARIOS))
    @pytest.mark.parametrize("method", METHODS)
    def test_request_round_trip_solves_bit_identically(self, family,
                                                       method):
        scenario = FAMILY_SCENARIOS[family]
        request = SolveRequest(scenario=scenario, measure=Measure.TRR,
                               times=scenario.times, eps=scenario.eps,
                               method=method, key=("rt", family, method))
        decoded = _wire_trip(request)
        assert decoded.key == request.key
        assert decoded.method == request.method
        assert decoded.times == request.times
        assert decoded.scenario == request.scenario

        original = _solve(request)
        replayed = _solve(decoded)
        assert np.array_equal(original.values, replayed.values)
        assert np.array_equal(original.steps, replayed.steps)
        assert np.array_equal(original.times, replayed.times)
        assert original.stats["rate"] == replayed.stats["rate"]


class TestScenarioCodec:
    @pytest.mark.parametrize("family", sorted(FAMILY_SCENARIOS))
    def test_scenario_round_trip_is_equal(self, family):
        scenario = FAMILY_SCENARIOS[family]
        decoded = scenario_from_dict(
            json.loads(json.dumps(scenario_to_dict(scenario))))
        assert decoded == scenario  # frozen dataclass: field-wise

    def test_mrr_measure_survives(self):
        s = FAMILY_SCENARIOS["birth_death"].with_measure(Measure.MRR)
        assert scenario_from_dict(scenario_to_dict(s)).measure is Measure.MRR


class TestModelCodec:
    def _model(self):
        q = np.array([[-1.0, 0.7, 0.3],
                      [2.0, -2.5, 0.5],
                      [0.0, 4.0, -4.0]])
        return CTMC(q, initial=np.array([0.2, 0.3, 0.5]),
                    labels=[("up", 2), ("up", 1), ("down", 0)])

    def test_ctmc_round_trip_is_bit_exact(self):
        model = self._model()
        decoded = ctmc_from_dict(
            json.loads(json.dumps(ctmc_to_dict(model))))
        assert np.array_equal(decoded.generator.indptr,
                              model.generator.indptr)
        assert np.array_equal(decoded.generator.indices,
                              model.generator.indices)
        assert np.array_equal(decoded.generator.data, model.generator.data)
        assert np.array_equal(decoded.initial, model.initial)
        assert list(decoded.labels) == list(model.labels)  # tuples kept

    def test_rewards_round_trip(self):
        r = RewardStructure(np.array([0.0, 0.25, 1.0 / 3.0]))
        decoded = rewards_from_dict(
            json.loads(json.dumps(rewards_to_dict(r))))
        assert np.array_equal(decoded.rates, r.rates)

    def test_model_backed_request_solves_identically(self):
        model = self._model()
        rewards = RewardStructure.indicator(3, [2])
        request = SolveRequest(model=model, rewards=rewards,
                               measure=Measure.TRR, times=(1.0, 5.0),
                               eps=1e-9, method="RRL", key="live-model")
        decoded = _wire_trip(request)
        assert np.array_equal(decoded.model.initial, model.initial)
        original = _solve(request)
        replayed = _solve(decoded)
        assert np.array_equal(original.values, replayed.values)
        assert np.array_equal(original.steps, replayed.steps)

    def test_solver_kwargs_survive(self):
        request = SolveRequest(scenario=FAMILY_SCENARIOS["birth_death"],
                               measure=Measure.TRR, times=(1.0,),
                               eps=1e-8, method="RRL",
                               solver_kwargs={"regenerative": 2})
        decoded = _wire_trip(request)
        assert dict(decoded.solver_kwargs) == {"regenerative": 2}
        assert np.array_equal(_solve(request).values,
                              _solve(decoded).values)


class TestSolutionAndOutcomeCodec:
    def _solution(self):
        request = SolveRequest(scenario=FAMILY_SCENARIOS["birth_death"],
                               measure=Measure.TRR, times=(0.5, 2.0),
                               eps=1e-8, method="RRL")
        return _solve(request)

    def test_solution_round_trip(self):
        sol = self._solution()
        decoded = solution_from_dict(
            json.loads(json.dumps(solution_to_dict(sol))))
        assert np.array_equal(decoded.values, sol.values)
        assert np.array_equal(decoded.steps, sol.steps)
        assert np.array_equal(decoded.times, sol.times)
        assert decoded.steps.dtype == np.int64
        assert decoded.measure is sol.measure
        assert decoded.method == sol.method
        assert decoded.stats["rate"] == sol.stats["rate"]
        # Diagnostic arrays/lists survive as lists.
        assert list(decoded.stats["n_abscissae"]) \
            == list(sol.stats["n_abscissae"])

    def test_success_outcome_round_trip(self):
        out = BatchOutcome(key=("cell", 3), ok=True,
                           value=self._solution(),
                           duration=0.125, worker_pid=4242)
        decoded = outcome_from_dict(
            json.loads(json.dumps(outcome_to_dict(out))))
        assert decoded.key == ("cell", 3)  # tuple restored, not list
        assert decoded.ok
        assert np.array_equal(decoded.value.values, out.value.values)
        assert decoded.duration == 0.125
        assert decoded.worker_pid == 4242

    def test_failure_outcome_round_trip(self):
        out = BatchOutcome(key=("steps", "UA", 20, "SR"), ok=False,
                           error_type="TruncationError",
                           error="SR needs 9999 steps (> max_steps=10)",
                           traceback="Traceback (most recent call last):"
                                     "\n  ...\nTruncationError: boom",
                           duration=0.5)
        decoded = outcome_from_dict(
            json.loads(json.dumps(outcome_to_dict(out))))
        assert not decoded.ok
        assert decoded.value is None
        assert decoded.error_type == "TruncationError"
        assert decoded.error == out.error
        assert decoded.traceback == out.traceback
        assert decoded.key == out.key

    def test_plain_value_outcome_round_trip(self):
        # Timing/analytic columns produce lists (with None holes).
        out = BatchOutcome(key="timing", ok=True,
                           value=[0.25, None, 1.5])
        decoded = outcome_from_dict(
            json.loads(json.dumps(outcome_to_dict(out))))
        assert decoded.value == [0.25, None, 1.5]

    def test_live_exception_objects_are_rejected(self):
        out = BatchOutcome(key="bad", ok=False,
                           error_type=ValueError)  # type: ignore[arg-type]
        with pytest.raises(ProtocolError, match="live exception"):
            outcome_to_dict(out)


class TestValidation:
    def _request_dict(self):
        return request_to_dict(SolveRequest(
            scenario=FAMILY_SCENARIOS["birth_death"],
            measure=Measure.TRR, times=(1.0,), eps=1e-8, method="SR"))

    def test_schema_version_mismatch_rejected(self):
        d = self._request_dict()
        d["schema_version"] = SCHEMA_VERSION + 1
        with pytest.raises(ProtocolError, match="schema_version"):
            request_from_dict(d)

    def test_kind_mismatch_rejected(self):
        d = self._request_dict()
        with pytest.raises(ProtocolError, match="expected kind"):
            scenario_from_dict(d)

    def test_missing_field_rejected(self):
        d = self._request_dict()
        del d["times"]
        with pytest.raises(ProtocolError, match="missing field 'times'"):
            request_from_dict(d)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ProtocolError, match="unknown protocol kind"):
            from_dict({"schema_version": SCHEMA_VERSION, "kind": "nope"})

    def test_non_plain_key_rejected_at_encode_time(self):
        request = SolveRequest(scenario=FAMILY_SCENARIOS["birth_death"],
                               measure=Measure.TRR, times=(1.0,),
                               eps=1e-8, method="SR", key=object())
        with pytest.raises(ProtocolError, match="not wire-serializable"):
            request_to_dict(request)

    def test_non_protocol_object_rejected(self):
        with pytest.raises(ProtocolError, match="not a protocol type"):
            to_dict(42)

    def test_loads_rejects_malformed_json(self):
        with pytest.raises(ProtocolError, match="malformed"):
            protocol.loads("{not json")

    def test_dumps_loads_round_trip(self):
        request = SolveRequest(scenario=FAMILY_SCENARIOS["block"],
                               measure=Measure.TRR, times=(1.0,),
                               eps=1e-8, method="RSD",
                               key=("a", ("b", 1), 2.5))
        decoded = protocol.loads(protocol.dumps(request))
        assert decoded.key == ("a", ("b", 1), 2.5)
        assert decoded.scenario == request.scenario
        assert "\n" not in protocol.dumps(request)  # journal-line safe
