"""The capability-declaring solver registry: registration semantics,
capability-derived dispatch sets, and unknown-method errors across every
entry point (runner, planner, protocol, CLI)."""

import warnings

import pytest

from repro.exceptions import (
    ProtocolError,
    RegistryError,
    UnknownMethodError,
)
from repro.solvers import registry
from repro.solvers.registry import SolverSpec

EXPECTED_METHODS = {"AU", "MS", "ODE", "RR", "RRL", "RSD", "SR"}


class TestRegistrations:
    def test_all_builtin_solvers_registered(self):
        assert set(registry.known_methods()) == EXPECTED_METHODS

    def test_specs_sorted_and_complete(self):
        specs = registry.specs()
        assert [s.name for s in specs] == sorted(EXPECTED_METHODS)
        assert all(s.summary for s in specs)

    def test_case_insensitive_lookup(self):
        assert registry.get_spec("rrl").name == "RRL"
        assert registry.is_registered("sr")
        assert not registry.is_registered("FFT")

    def test_get_solver_forwards_kwargs(self):
        solver = registry.get_solver("RRL", t_factor=4.0)
        assert solver._t_factor == 4.0

    def test_reregistration_is_idempotent(self):
        spec = registry.get_spec("SR")
        before = registry.known_methods()
        assert registry.register(spec) is spec
        # An equal rebuilt spec is also a no-op keeping the entry.
        import dataclasses

        clone = dataclasses.replace(spec)
        registry.register(clone)
        assert registry.known_methods() == before
        assert registry.get_spec("SR") is spec

    def test_conflicting_registration_raises(self):
        spec = SolverSpec(name="SR", constructor=lambda **kw: None,
                          summary="impostor")
        with pytest.raises(RegistryError, match="already registered"):
            registry.register(spec)

    def test_capability_change_is_a_conflict_even_same_constructor(self):
        # Capability flags drive planner policy: flipping one under an
        # existing name must be an explicit replace, never a silent no-op.
        import dataclasses

        spec = registry.get_spec("SR")
        flipped = dataclasses.replace(spec, stack_fusable=False)
        with pytest.raises(RegistryError, match="already registered"):
            registry.register(flipped)
        assert registry.get_spec("SR").stack_fusable is True

    def test_register_replace_and_unregister(self):
        spec = SolverSpec(name="XX", constructor=lambda **kw: None,
                          summary="scratch solver")
        try:
            registry.register(spec)
            assert registry.is_registered("XX")
            other = SolverSpec(name="XX", constructor=lambda **kw: 1,
                               summary="other")
            with pytest.raises(RegistryError):
                registry.register(other)
            registry.register(other, replace=True)
            assert registry.get_spec("xx") is other
        finally:
            registry.unregister("XX")
        assert not registry.is_registered("XX")

    def test_lower_case_name_rejected(self):
        with pytest.raises(RegistryError, match="upper-case"):
            SolverSpec(name="sr", constructor=lambda **kw: None,
                       summary="bad")


class TestCapabilities:
    def test_capability_sets(self):
        assert registry.stack_fusable_methods() == {"SR", "RSD"}
        assert registry.schedule_memoizable_methods() == {"RR", "RRL"}
        assert registry.kernel_aware_methods() == \
            EXPECTED_METHODS - {"ODE"}

    def test_unknown_capability_rejected(self):
        with pytest.raises(RegistryError, match="unknown capability"):
            registry.methods_with("quantum_aware")

    def test_capabilities_listing(self):
        assert registry.get_spec("RRL").capabilities() == \
            ("kernel_aware", "schedule_memoizable")
        assert registry.get_spec("ODE").capabilities() == ()

    def test_planner_sets_are_registry_derived_and_deprecated(self):
        import repro.batch.planner as planner

        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            fusable = planner.FUSABLE_METHODS
            kernel_aware = planner.KERNEL_AWARE_METHODS
        assert fusable == registry.stack_fusable_methods()
        assert kernel_aware == registry.kernel_aware_methods()
        assert all(issubclass(w.category, DeprecationWarning)
                   for w in caught)
        assert len(caught) == 2

    def test_schedule_fingerprint_ignores_solution_phase_knobs(self):
        # The fingerprint hook declares what the K+L transformation
        # depends on: RRL's t_factor / RR's inner_max_steps tune only
        # the per-t solution phase, so they must not fragment the cache.
        for method in registry.schedule_memoizable_methods():
            fp = registry.get_spec(method).schedule_fingerprint
            assert fp({"t_factor": 4.0}) == fp({})
            assert fp({"inner_max_steps": 7}) == fp({})
            assert fp({"regenerative": 3}) != fp({})
            assert fp({"rate": 2.0}) != fp({})

    def test_step_budget_metadata(self):
        assert registry.get_spec("SR").step_budget_kwarg == "max_steps"
        assert registry.get_spec("RR").step_budget_kwarg == \
            "inner_max_steps"
        assert registry.get_spec("RRL").step_budget_kwarg is None
        assert registry.get_spec("SR").predict_steps is not None

    def test_unmapped_step_budget_kwarg_raises_structured_error(self):
        import dataclasses

        from repro.analysis.experiments import ExperimentConfig

        alien = dataclasses.replace(registry.get_spec("SR"),
                                    step_budget_kwarg="budget")
        with pytest.raises(RegistryError, match="step_budget_kwarg"):
            ExperimentConfig().step_budget_for(alien)

    def test_table_labels(self):
        assert registry.get_spec("RR").table_label == "RR/RRL"
        assert registry.get_spec("RRL").table_label == "RR/RRL"
        assert registry.get_spec("RSD").table_label == "RSD"


class TestUnknownMethodEntryPoints:
    """Every dispatch layer must reject an unknown tag with a structured
    error carrying the known-method list."""

    def test_runner_get_solver(self):
        from repro.analysis.runner import get_solver

        with pytest.raises(UnknownMethodError, match="known methods"):
            get_solver("FFT")
        # Backward compatibility: still a ValueError.
        with pytest.raises(ValueError, match="unknown method"):
            get_solver("FFT")

    def test_runner_registry_view(self):
        from repro.analysis.runner import SOLVER_REGISTRY

        assert set(SOLVER_REGISTRY) == EXPECTED_METHODS
        assert "FFT" not in SOLVER_REGISTRY
        with pytest.raises(KeyError):
            SOLVER_REGISTRY["FFT"]

    def test_planner_request_construction(self):
        from repro.batch.planner import SolveRequest
        from repro.batch.scenarios import Scenario
        from repro.markov.rewards import Measure

        scenario = Scenario(name="s", family="birth_death",
                            params={"n": 4, "birth": 1.0, "death": 2.0},
                            times=(1.0,), eps=1e-8)
        with pytest.raises(UnknownMethodError, match="FFT"):
            SolveRequest(scenario=scenario, measure=Measure.TRR,
                         times=(1.0,), eps=1e-8, method="FFT")

    def test_protocol_decode(self):
        from repro.batch.planner import SolveRequest
        from repro.batch.scenarios import Scenario
        from repro.markov.rewards import Measure
        from repro.service.protocol import request_from_dict, \
            request_to_dict

        scenario = Scenario(name="s", family="birth_death",
                            params={"n": 4, "birth": 1.0, "death": 2.0},
                            times=(1.0,), eps=1e-8)
        wire = request_to_dict(SolveRequest(
            scenario=scenario, measure=Measure.TRR, times=(1.0,),
            eps=1e-8, method="RRL"))
        wire["method"] = "FFT"  # a journal from an alien deployment
        with pytest.raises(ProtocolError, match="known methods"):
            request_from_dict(wire)

    def test_cli_solve_choices_generated_from_registry(self, capsys):
        from repro.cli import build_parser

        parser = build_parser()
        with pytest.raises(SystemExit) as exc:
            parser.parse_args(["solve", "--method", "FFT"])
        assert exc.value.code == 2
        assert "FFT" in capsys.readouterr().err

    def test_cli_batch_submit_unknown_method(self, tmp_path, capsys):
        from repro.cli import main

        code = main(["batch", "submit", "--queue", str(tmp_path / "q"),
                     "--scenarios", "birth_death", "--methods", "FFT"])
        assert code == 1
        err = capsys.readouterr().err
        assert "unknown method" in err and "RRL" in err

    def test_cli_solvers_list(self, capsys):
        from repro.cli import main

        assert main(["solvers", "list"]) == 0
        out = capsys.readouterr().out
        for name in EXPECTED_METHODS:
            assert name in out
        assert "schedule-memoizable" in out
        assert "stack-fusable" in out
