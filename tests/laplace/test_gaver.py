"""Gaver–Stehfest comparator: correct weights, limited accuracy."""

import numpy as np
import pytest

from repro.laplace.gaver import invert_gaver_stehfest, stehfest_weights
from repro.laplace.inversion import invert_bounded


class TestWeights:
    def test_textbook_m3(self):
        assert stehfest_weights(3) == (1.0, -49.0, 366.0, -858.0, 810.0,
                                       -270.0)

    def test_weights_sum_to_zero_m_ge_2(self):
        # Σ ζ_k = 0 for M >= 2 (the rule integrates constants exactly via
        # the 1/s factor, so the raw weights cancel).
        for m in (2, 4, 7):
            assert sum(stehfest_weights(m)) == pytest.approx(0.0, abs=1e-6)

    def test_invalid_m(self):
        with pytest.raises(ValueError):
            stehfest_weights(0)


class TestInversion:
    def test_exponential_moderate_accuracy(self):
        t = 2.0
        res = invert_gaver_stehfest(lambda s: 1.0 / (s + 1.0), t, m=7)
        assert res.value == pytest.approx(np.exp(-t), abs=1e-4)
        assert res.n_abscissae == 14

    def test_constant(self):
        res = invert_gaver_stehfest(lambda s: 5.0 / s, 3.0, m=6)
        assert res.value == pytest.approx(5.0, abs=1e-6)

    def test_validation(self):
        with pytest.raises(ValueError):
            invert_gaver_stehfest(lambda s: 1.0 / s, 0.0)

    def test_durbin_beats_gaver_at_tight_eps(self):
        """The design-choice ablation in miniature: at ε = 1e-12 Durbin
        delivers, Gaver–Stehfest structurally cannot (double precision
        caps it at ~1e-5)."""
        t, decay = 1.0, 0.5
        exact = np.exp(-decay * t)
        durbin = invert_bounded(lambda s: 1.0 / (s + decay), t, eps=1e-12,
                                bound=1.0)
        gs = invert_gaver_stehfest(lambda s: 1.0 / (s + decay), t, m=7)
        assert abs(durbin.value - exact) <= 1e-12
        assert abs(gs.value - exact) > 1e-9

    def test_increasing_m_diverges_in_double_precision(self):
        # Beyond the sweet spot the weights (±1e9 at M=7, ±1e13 at M=10)
        # amplify round-off; accuracy stops improving or degrades.
        t, decay = 1.0, 1.0
        exact = np.exp(-t)
        err7 = abs(invert_gaver_stehfest(
            lambda s: 1.0 / (s + decay), t, m=7).value - exact)
        err12 = abs(invert_gaver_stehfest(
            lambda s: 1.0 / (s + decay), t, m=12).value - exact)
        assert err12 > err7 / 10  # no miracle 10x gain past the ceiling
