"""End-to-end numerical inversion with the paper's error control."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import InversionError
from repro.laplace.inversion import invert, invert_bounded, invert_cumulative


class TestBoundedInversion:
    @pytest.mark.parametrize("t", [0.1, 1.0, 10.0, 1e3])
    def test_exponential(self, t):
        decay = 0.8
        res = invert_bounded(lambda s: 1.0 / (s + decay), t, eps=1e-10,
                             bound=1.0)
        assert res.value == pytest.approx(np.exp(-decay * t), abs=1e-10)

    def test_constant_function(self):
        # f(t) = c has transform c/s; bounded by c.
        res = invert_bounded(lambda s: 3.0 / s, 5.0, eps=1e-10, bound=3.0)
        assert res.value == pytest.approx(3.0, abs=1e-9)

    def test_damped_cosine(self):
        # f(t) = e^{-t} cos(2t): F = (s+1)/((s+1)^2+4).
        t = 2.0
        res = invert_bounded(lambda s: (s + 1.0) / ((s + 1.0) ** 2 + 4.0),
                             t, eps=1e-9, bound=1.0)
        assert res.value == pytest.approx(np.exp(-t) * np.cos(2 * t),
                                          abs=1e-9)

    def test_two_state_unavailability_transform(self):
        # UA(t) of the λ/μ machine: F(s) = λ/(s(s+λ+μ)).
        lam, mu, t = 1.0, 10.0, 3.0
        res = invert_bounded(lambda s: lam / (s * (s + lam + mu)), t,
                             eps=1e-11, bound=1.0)
        exact = lam / (lam + mu) * (1.0 - np.exp(-(lam + mu) * t))
        assert res.value == pytest.approx(exact, abs=1e-11)

    def test_abscissa_count_reported(self):
        res = invert_bounded(lambda s: 1.0 / (s + 1.0), 1.0, eps=1e-10,
                             bound=1.0)
        assert res.n_abscissae >= 8
        assert res.t_period == pytest.approx(8.0)
        assert res.damping > 0.0

    def test_t_factor(self):
        res = invert_bounded(lambda s: 1.0 / (s + 1.0), 1.0, eps=1e-8,
                             bound=1.0, t_factor=16.0)
        assert res.t_period == pytest.approx(16.0)
        assert res.value == pytest.approx(np.exp(-1.0), abs=1e-8)

    def test_max_terms_exhaustion_raises(self):
        with pytest.raises(InversionError):
            invert_bounded(lambda s: 1.0 / (s + 1.0), 1.0, eps=1e-12,
                           bound=1.0, max_terms=10)

    def test_validation(self):
        with pytest.raises(ValueError):
            invert_bounded(lambda s: 1.0 / s, -1.0, eps=1e-9, bound=1.0)
        with pytest.raises(ValueError):
            invert_bounded(lambda s: 1.0 / s, 1.0, eps=0.0, bound=1.0)


class TestCumulativeInversion:
    @pytest.mark.parametrize("t", [0.5, 5.0, 500.0])
    def test_ramp(self, t):
        # C(t) = r·t (constant reward r): transform r/s².
        r = 0.7
        res = invert_cumulative(lambda s: r / (s * s), t, eps=1e-10, r_max=r)
        assert res.value / t == pytest.approx(r, abs=1e-10)

    def test_exponential_accumulation(self):
        # C(t) = ∫ e^{-τ}dτ = 1 - e^{-t}: transform 1/(s(s+1)).
        t = 4.0
        res = invert_cumulative(lambda s: 1.0 / (s * (s + 1.0)), t,
                                eps=1e-10, r_max=1.0)
        assert res.value == pytest.approx(1.0 - np.exp(-t), abs=1e-9 * t)

    def test_budgets_scale_with_t(self):
        # The cumulative path must stay accurate for large t where C ~ t.
        t = 1e4
        res = invert_cumulative(lambda s: 1.0 / (s * (s + 1.0)), t,
                                eps=1e-11, r_max=1.0)
        assert res.value == pytest.approx(1.0, abs=1e-11 * t)


class TestDispatch:
    def test_kinds(self):
        b = invert(lambda s: 1.0 / (s + 1.0), 1.0, eps=1e-9, bound=1.0,
                   kind="bounded")
        c = invert(lambda s: 1.0 / (s * s), 1.0, eps=1e-9, bound=1.0,
                   kind="cumulative")
        assert b.value == pytest.approx(np.exp(-1.0), abs=1e-9)
        assert c.value == pytest.approx(1.0, abs=1e-9)
        with pytest.raises(ValueError):
            invert(lambda s: 1.0 / s, 1.0, eps=1e-9, bound=1.0, kind="nope")


@settings(max_examples=30, deadline=None)
@given(decay=st.floats(min_value=0.05, max_value=20.0),
       t=st.floats(min_value=0.05, max_value=100.0),
       eps_exp=st.integers(min_value=6, max_value=11))
def test_exponential_inversion_property(decay, t, eps_exp):
    """Property: |inverted − e^{-decay t}| <= eps across the parameter box.

    The 2.5x headroom is deliberate: the inversion splits eps between
    discretization and truncation using conservative *estimates*, and deep
    Hypothesis exploration finds corners where floating-point rounding in
    the epsilon-algorithm acceleration overshoots the nominal budget
    (observed 1.13e-9 vs 1e-9, later 1.85e-6 vs 1e-6 at decay≈10.47,
    t=0.05 — the acceleration stops on its converged_diff estimate, which
    undershoots the true residual in this corner) without indicating a
    correctness bug. Tolerance bookkeeping, not a numerical failure — see
    ROADMAP "Open items".
    """
    eps = 10.0 ** (-eps_exp)
    res = invert_bounded(lambda s: 1.0 / (s + decay), t, eps=eps, bound=1.0)
    assert abs(res.value - np.exp(-decay * t)) <= 2.5 * eps
