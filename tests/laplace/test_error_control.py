"""Damping selection: the chosen `a` must achieve the aliasing budget,
and the paper-faithful Taylor variant must agree with the stable form."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.laplace.error_control import (
    aliasing_error_bounded,
    aliasing_error_cumulative,
    damping_for_bounded,
    damping_for_cumulative,
    damping_for_cumulative_taylor,
)


class TestBounded:
    def test_budget_achieved_exactly(self):
        eps4, r_max, T = 2.5e-13, 1.0, 8.0
        a = damping_for_bounded(eps4, r_max, T)
        assert aliasing_error_bounded(a, r_max, T) == pytest.approx(
            eps4, rel=1e-9)

    def test_paper_formula(self):
        # a = log(1 + 4 r_max/eps) / (2T) with eps4 = eps/4.
        eps, r_max, T = 1e-12, 1.0, 8.0
        a = damping_for_bounded(eps / 4.0, r_max, T)
        assert a == pytest.approx(math.log1p(4.0 * r_max / eps) / (2.0 * T))

    def test_zero_bound(self):
        assert damping_for_bounded(1e-12, 0.0, 8.0) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            damping_for_bounded(0.0, 1.0, 8.0)
        with pytest.raises(ValueError):
            damping_for_bounded(1e-12, 1.0, 0.0)
        with pytest.raises(ValueError):
            damping_for_bounded(1e-12, -1.0, 8.0)


class TestCumulative:
    @pytest.mark.parametrize("t", [1.0, 100.0, 1e5])
    @pytest.mark.parametrize("r_max", [1.0, 20.0])
    def test_budget_achieved(self, t, r_max):
        eps4 = t * 1e-12 / 4.0
        T = 8.0 * t
        a = damping_for_cumulative(eps4, r_max, t, T)
        assert aliasing_error_cumulative(a, r_max, t, T) == pytest.approx(
            eps4, rel=1e-6)

    def test_taylor_variant_agrees(self):
        # The regime the paper patches: eps tiny vs t·r_max (y << 1e-3).
        for t in (1.0, 1e3, 1e5):
            eps4 = t * 1e-12 / 4.0
            T = 8.0 * t
            a_stable = damping_for_cumulative(eps4, 1.0, t, T)
            a_taylor = damping_for_cumulative_taylor(eps4, 1.0, t, T)
            assert a_taylor == pytest.approx(a_stable, rel=1e-6)

    def test_taylor_explicit_branch(self):
        # Force the non-Taylor branch too (moderate y) and compare.
        a_stable = damping_for_cumulative(0.1, 1.0, 1.0, 8.0)
        a_taylor = damping_for_cumulative_taylor(0.1, 1.0, 1.0, 8.0,
                                                 y_switch=1e-12)
        assert a_taylor == pytest.approx(a_stable, rel=1e-9)

    def test_zero_reward(self):
        assert damping_for_cumulative(1e-12, 0.0, 1.0, 8.0) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            damping_for_cumulative(0.0, 1.0, 1.0, 8.0)
        with pytest.raises(ValueError):
            damping_for_cumulative(1e-12, 1.0, -1.0, 8.0)


@settings(max_examples=60, deadline=None)
@given(eps_exp=st.integers(min_value=4, max_value=14),
       r_max=st.floats(min_value=1e-3, max_value=1e3),
       t=st.floats(min_value=1e-2, max_value=1e6))
def test_damping_properties(eps_exp, r_max, t):
    """Property: positive damping, achieved budgets, no cancellation."""
    eps = 10.0 ** (-eps_exp)
    T = 8.0 * t
    a_b = damping_for_bounded(eps / 4.0, r_max, T)
    assert a_b > 0.0
    assert aliasing_error_bounded(a_b, r_max, T) <= eps / 4.0 * (1 + 1e-9)
    a_c = damping_for_cumulative(t * eps / 4.0, r_max, t, T)
    assert a_c > 0.0
    achieved = aliasing_error_cumulative(a_c, r_max, t, T)
    assert achieved <= t * eps / 4.0 * (1.0 + 1e-6)
