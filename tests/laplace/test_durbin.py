"""Durbin series terms and partial sums against known transforms."""

import numpy as np
import pytest

from repro.laplace.durbin import durbin_partial_sums, durbin_terms


def inv_exp(decay):
    """Transform of e^{-decay·t}: 1/(s + decay)."""
    return lambda s: 1.0 / (s + decay)


class TestDurbinSeries:
    def test_first_term_is_half_f_at_a(self):
        t, a, T = 1.0, 0.5, 8.0
        gen = durbin_terms(inv_exp(1.0), t, a, T, max_terms=5)
        first = next(gen)
        expected = np.exp(a * t) / T * (1.0 / (a + 1.0)) / 2.0
        assert first == pytest.approx(expected, rel=1e-12)

    def test_partial_sums_accumulate(self):
        t, a, T = 1.0, 0.5, 8.0
        terms = list(durbin_terms(inv_exp(1.0), t, a, T, max_terms=40))
        sums = list(durbin_partial_sums(inv_exp(1.0), t, a, T, max_terms=40))
        assert sums[0] == pytest.approx(terms[0])
        assert sums[-1] == pytest.approx(sum(terms), rel=1e-12)

    def test_raw_series_approaches_target(self):
        # Without acceleration the truncated Durbin sum converges slowly
        # but visibly toward e^{-t}; check the trend over many terms.
        t, T = 1.0, 8.0
        a = np.log(1.0 + 4.0 / 1e-8) / (2.0 * T)
        sums = np.fromiter(
            durbin_partial_sums(inv_exp(1.0), t, a, T, max_terms=4000),
            dtype=float)
        target = np.exp(-t)
        # Tail average smooths the Gibbs oscillation.
        assert np.mean(sums[-500:]) == pytest.approx(target, abs=1e-3)

    def test_max_terms_respected(self):
        out = list(durbin_terms(inv_exp(2.0), 1.0, 0.3, 8.0, max_terms=17))
        assert len(out) == 17

    def test_batching_equivalence(self):
        args = (inv_exp(0.7), 2.0, 0.4, 16.0, 50)
        one = list(durbin_terms(*args, batch=1))
        big = list(durbin_terms(*args, batch=32))
        assert np.allclose(one, big, rtol=1e-13)

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            next(durbin_terms(inv_exp(1.0), 0.0, 0.1, 8.0, 5))
        with pytest.raises(ValueError):
            next(durbin_terms(inv_exp(1.0), 1.0, 0.1, -8.0, 5))
