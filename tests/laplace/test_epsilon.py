"""Wynn epsilon algorithm: acceleration of classic slowly-convergent
series and degeneracy handling."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.laplace.epsilon import EpsilonAccelerator, wynn_epsilon


def partial_sums(terms):
    return np.cumsum(np.asarray(terms, dtype=float))


class TestAcceleration:
    def test_geometric_series_exact(self):
        # Σ x^k = 1/(1-x): the Shanks transform is exact for geometric
        # sequences after a handful of terms.
        x = 0.7
        sums = partial_sums(x ** np.arange(12))
        est = wynn_epsilon(sums)
        assert est == pytest.approx(1.0 / (1.0 - x), abs=1e-12)

    def test_alternating_log2(self):
        # Σ (-1)^{k+1}/k = ln 2 converges like 1/n; epsilon makes 20 terms
        # worth ~1e-12 — the same mechanism Crump's inversion relies on.
        k = np.arange(1, 22, dtype=float)
        sums = partial_sums((-1.0) ** (k + 1) / k)
        est = wynn_epsilon(sums)
        assert est == pytest.approx(np.log(2.0), abs=1e-10)
        # Raw partial sums are nowhere near that accurate.
        assert abs(sums[-1] - np.log(2.0)) > 1e-2

    def test_pi_leibniz(self):
        k = np.arange(0, 25, dtype=float)
        sums = partial_sums((-1.0) ** k / (2.0 * k + 1.0))
        est = wynn_epsilon(sums)
        assert est == pytest.approx(np.pi / 4.0, abs=1e-10)

    def test_incremental_matches_batch(self):
        x = 0.5
        sums = partial_sums(x ** np.arange(10))
        acc = EpsilonAccelerator()
        last = None
        for s in sums:
            last = acc.add(s)
        assert last == pytest.approx(wynn_epsilon(sums), abs=0.0)
        assert acc.n_terms == 10
        assert acc.estimate == last


class TestDegeneracy:
    def test_constant_sequence(self):
        # Identical partial sums (already converged): no division blowup.
        acc = EpsilonAccelerator()
        for _ in range(8):
            est = acc.add(4.25)
        assert est == 4.25

    def test_eventually_constant(self):
        sums = [1.0, 1.5, 1.75, 2.0, 2.0, 2.0, 2.0]
        acc = EpsilonAccelerator()
        for s in sums:
            est = acc.add(s)
        assert est == pytest.approx(2.0)
        assert np.isfinite(est)

    def test_zero_terms(self):
        acc = EpsilonAccelerator()
        assert acc.n_terms == 0
        assert acc.estimate == 0.0

    def test_single_term(self):
        acc = EpsilonAccelerator()
        assert acc.add(3.0) == 3.0


@settings(max_examples=40, deadline=None)
@given(ratio=st.floats(min_value=-0.9, max_value=0.9),
       scale=st.floats(min_value=0.1, max_value=100.0),
       n=st.integers(min_value=6, max_value=25))
def test_geometric_property(ratio, scale, n):
    """Property: epsilon recovers the limit of any geometric series to
    near machine precision, regardless of sign/scale."""
    if abs(ratio) < 1e-6:
        ratio = 0.5
    sums = partial_sums(scale * ratio ** np.arange(n))
    est = wynn_epsilon(sums)
    limit = scale / (1.0 - ratio)
    assert est == pytest.approx(limit, rel=1e-8, abs=1e-8)
