"""Unit tests for the BatchRunner: failure capture, determinism,
chunking, timeouts and the inline fallback."""

import multiprocessing
import time

import pytest

from repro.batch.runner import (
    BatchExecutionError,
    BatchOutcome,
    BatchRunner,
    BatchTask,
)
from repro.exceptions import TruncationError


# Worker functions must be module-level so the pool can pickle them.
def _square(x):
    return x * x


def _fail(kind):
    if kind == "truncation":
        raise TruncationError("over budget")
    raise ValueError(f"bad kind {kind}")


def _slow_square(x):
    # Later tasks finish *sooner*: exposes any completion-order leakage.
    time.sleep(max(0.0, 0.3 - 0.05 * x))
    return x * x


def _sleepy(seconds):
    time.sleep(seconds)
    return seconds


class TestInline:
    def test_single_worker_runs_inline(self):
        runner = BatchRunner(max_workers=1)
        outs = runner.run([BatchTask(fn=_square, args=(i,), key=i)
                           for i in range(5)])
        assert [o.value for o in outs] == [0, 1, 4, 9, 16]
        assert all(o.ok for o in outs)
        assert all(o.duration >= 0.0 for o in outs)

    def test_single_task_avoids_pool(self):
        # Even with workers > 1 a single task should not pay pool startup.
        runner = BatchRunner(max_workers=4)
        start = time.perf_counter()
        outs = runner.run([BatchTask(fn=_square, args=(3,), key="only")])
        assert outs[0].value == 9
        assert time.perf_counter() - start < 0.5

    def test_empty_task_list(self):
        assert BatchRunner(max_workers=2).run([]) == []

    def test_failure_capture_inline(self):
        outs = BatchRunner(max_workers=1).run(
            [BatchTask(fn=_fail, args=("truncation",), key="t"),
             BatchTask(fn=_square, args=(2,), key="ok"),
             BatchTask(fn=_fail, args=("other",), key="v")])
        assert [o.ok for o in outs] == [False, True, False]
        assert outs[0].error_type == "TruncationError"
        assert "over budget" in outs[0].error
        assert "TruncationError" in outs[0].traceback
        assert outs[2].error_type == "ValueError"
        # A failure never aborts the batch: the middle task succeeded.
        assert outs[1].value == 4

    def test_unwrap(self):
        ok = BatchOutcome(key="k", ok=True, value=42)
        assert ok.unwrap() == 42
        bad = BatchOutcome(key="k", ok=False, error_type="ValueError",
                           error="nope")
        with pytest.raises(BatchExecutionError, match="ValueError: nope"):
            bad.unwrap()


class TestPool:
    def test_deterministic_ordering(self):
        runner = BatchRunner(max_workers=2)
        tasks = [BatchTask(fn=_slow_square, args=(i,), key=i)
                 for i in range(6)]
        outs = runner.run(tasks)
        # Input order, not completion order.
        assert [o.key for o in outs] == list(range(6))
        assert [o.value for o in outs] == [i * i for i in range(6)]

    def test_chunking_preserves_order_and_results(self):
        runner = BatchRunner(max_workers=2, chunk_size=3)
        outs = runner.run([BatchTask(fn=_square, args=(i,), key=i)
                           for i in range(10)])
        assert [o.value for o in outs] == [i * i for i in range(10)]

    def test_worker_failure_capture(self):
        runner = BatchRunner(max_workers=2)
        outs = runner.run(
            [BatchTask(fn=_fail, args=("truncation",), key="boom"),
             BatchTask(fn=_square, args=(5,), key="fine")])
        assert outs[0].ok is False
        assert outs[0].error_type == "TruncationError"
        assert outs[0].worker_pid is not None
        assert outs[1].value == 25

    def test_task_timeout_recorded(self):
        runner = BatchRunner(max_workers=2, task_timeout=0.2)
        start = time.perf_counter()
        outs = runner.run(
            [BatchTask(fn=_sleepy, args=(1.5,), key="slow"),
             BatchTask(fn=_square, args=(2,), key="fast")])
        elapsed = time.perf_counter() - start
        assert outs[0].ok is False
        assert outs[0].error_type == "TimeoutError"
        assert outs[1].ok is True and outs[1].value == 4
        # run() must honour its deadline rather than joining the hung
        # worker (1.5s sleep): it abandons the pool after the timeout.
        assert elapsed < 1.2, f"run() blocked {elapsed:.2f}s on a timeout"

    def test_chunk_deadline_measured_from_submission(self):
        # Regression: deadlines used to start when *collection* of a
        # chunk started, so a slow (but in-budget) early chunk granted
        # every later chunk that much extra wall-clock. Four 0.8s tasks
        # on two workers with a 1.2s budget: the first pair finishes at
        # ~0.8s (in budget), the second pair at ~1.6s after submission
        # and must be recorded as timed out — under collection-anchored
        # deadlines it would have sailed through with ~0.8s of slack.
        # Forked workers keep pool startup (which also counts against
        # the budget) far below the timing margins here; spawn-only
        # platforms would need much coarser sleeps.
        if "fork" not in multiprocessing.get_all_start_methods():
            pytest.skip("needs the fork start method for tight timings")
        runner = BatchRunner(max_workers=2, task_timeout=1.2,
                             mp_context="fork")
        start = time.perf_counter()
        outs = runner.run([BatchTask(fn=_sleepy, args=(0.8,), key=i)
                           for i in range(4)])
        elapsed = time.perf_counter() - start
        assert [o.ok for o in outs] == [True, True, False, False]
        assert outs[2].error_type == "TimeoutError"
        assert "submission" in outs[2].error
        # The deadline is honoured in wall-clock too: the run must not
        # wait out the second pair's full sleep.
        assert elapsed < 1.55, f"run() blocked {elapsed:.2f}s past deadline"

    def test_task_weight_scales_timeout_budget(self):
        # A fused task doing N cells' worth of work declares weight=N;
        # its chunk budget must be task_timeout * N, not * 1.
        runner = BatchRunner(max_workers=2, task_timeout=0.25,
                             mp_context="fork" if "fork" in
                             multiprocessing.get_all_start_methods()
                             else None)
        heavy = BatchTask(fn=_sleepy, args=(0.6,), key="w", weight=4)
        light = BatchTask(fn=_sleepy, args=(1.2,), key="l")  # weight 1
        outs = runner.run([heavy, light])
        assert outs[0].ok is True       # 0.6s < 0.25 * 4: weight honoured
        assert outs[1].ok is False      # 1.2s > 0.25 * 1
        assert outs[1].error_type == "TimeoutError"

    def test_map_convenience(self):
        runner = BatchRunner(max_workers=1)
        outs = runner.map(_square, [1, 2, 3], key_fn=lambda x: f"item-{x}")
        assert [o.key for o in outs] == ["item-1", "item-2", "item-3"]
        assert [o.value for o in outs] == [1, 4, 9]


class TestValidation:
    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            BatchRunner(max_workers=0)
        with pytest.raises(ValueError):
            BatchRunner(chunk_size=0)
        with pytest.raises(ValueError):
            BatchRunner(task_timeout=0.0)

    def test_default_workers_positive(self):
        assert BatchRunner().max_workers >= 1
