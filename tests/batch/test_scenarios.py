"""Unit tests for the parametric scenario generator."""

import pickle

import numpy as np
import pytest

from repro.batch.runner import BatchRunner
from repro.batch.scenarios import (
    Scenario,
    build_scenario_model,
    generate_scenarios,
    scenario_families,
    scenario_tasks,
    solve_scenario,
)
from repro.exceptions import ModelError
from repro.markov.rewards import Measure


class TestGeneration:
    def test_families_registered(self):
        assert set(scenario_families()) == {
            "raid5", "multiprocessor", "birth_death", "block"}

    def test_deterministic_for_seed(self):
        a = generate_scenarios(seed=42, random_count=3)
        b = generate_scenarios(seed=42, random_count=3)
        assert [s.name for s in a] == [s.name for s in b]
        assert [s.params for s in a] == [s.params for s in b]

    def test_seed_changes_random_families(self):
        a = generate_scenarios(families=("birth_death",), seed=1,
                               random_count=4)
        b = generate_scenarios(families=("birth_death",), seed=2,
                               random_count=4)
        assert [s.params for s in a] != [s.params for s in b]

    def test_family_filter(self):
        only = generate_scenarios(families=("block",), random_count=2)
        assert {s.family for s in only} == {"block"}
        assert len(only) == 2

    def test_unknown_family_rejected(self):
        with pytest.raises(ModelError, match="unknown scenario families"):
            generate_scenarios(families=("nope",))

    def test_measures_expand_grid(self):
        scs = generate_scenarios(families=("birth_death",), random_count=2,
                                 measures=(Measure.TRR, Measure.MRR))
        assert len(scs) == 4
        assert sum(s.measure is Measure.MRR for s in scs) == 2
        mrr_names = [s.name for s in scs if s.measure is Measure.MRR]
        assert all(name.endswith("/mrr") for name in mrr_names)

    def test_scenarios_are_picklable(self):
        for s in generate_scenarios(random_count=2):
            clone = pickle.loads(pickle.dumps(s))
            assert clone == s


class TestBuilding:
    def test_every_scenario_builds(self):
        for s in generate_scenarios(random_count=2):
            model, rewards = build_scenario_model(s)
            assert model.n_states == rewards.n_states
            assert rewards.max_rate > 0.0

    def test_rebuild_is_bit_identical(self):
        # Pool workers rebuild models from the spec; the rebuild must
        # match exactly or parallel results could drift from serial ones.
        s = generate_scenarios(families=("block",), random_count=1)[0]
        m1, r1 = build_scenario_model(s)
        m2, r2 = build_scenario_model(s)
        assert np.array_equal(m1.generator.toarray(), m2.generator.toarray())
        assert np.array_equal(r1.rates, r2.rates)

    def test_unknown_family_build_error(self):
        bad = Scenario(name="x", family="martian", params={})
        with pytest.raises(ModelError, match="unknown scenario family"):
            bad.build()


class TestSolving:
    def test_solve_scenario_end_to_end(self):
        s = generate_scenarios(families=("birth_death",), random_count=1,
                               times=(1.0, 5.0), eps=1e-8)[0]
        sol = solve_scenario(s, method="SR")
        assert sol.values.shape == (2,)
        assert np.all(sol.values >= 0.0)

    def test_scenario_tasks_through_runner(self):
        scs = generate_scenarios(families=("birth_death",), random_count=2,
                                 times=(1.0,), eps=1e-8)
        tasks = scenario_tasks(scs, methods=("SR", "ODE"))
        assert [t.key for t in tasks] == [
            (s.name, m) for s in scs for m in ("SR", "ODE")]
        outs = BatchRunner(max_workers=1).run(tasks)
        assert all(o.ok for o in outs)
        # SR and ODE agree on the same scenario.
        by_key = {o.key: o.value for o in outs}
        for s in scs:
            sr = by_key[(s.name, "SR")].values[0]
            ode = by_key[(s.name, "ODE")].values[0]
            assert sr == pytest.approx(ode, abs=1e-6)
