"""Unit tests for the model-fused execution planner: request identity,
plan shape (fusion groups, coalescing), scatter bookkeeping, per-worker
caching, failure isolation and the bit-for-bit fused == unfused promise."""

import numpy as np
import pytest

from repro.analysis.runner import get_solver
from repro.batch.kernel import kernel_build_count
from repro.batch.planner import (
    SolveRequest,
    execute_requests,
    model_fingerprint,
    plan_requests,
    run_request,
    solve_requests,
    worker_cache_clear,
    worker_cache_info,
)
from repro.batch.runner import BatchRunner
from repro.batch.scenarios import (
    Scenario,
    generate_scenarios,
    scenario_requests,
    solve_scenarios,
)
from repro.exceptions import ModelError, UnknownMethodError
from repro.markov.ctmc import CTMC
from repro.markov.rewards import Measure, RewardStructure


def _bd_scenario(name="bd", n=8, birth=0.5, death=1.5, times=(0.5, 2.0),
                 eps=1e-8, measure=Measure.TRR):
    return Scenario(name=name, family="birth_death",
                    params={"n": n, "birth": birth, "death": death},
                    measure=measure, times=times, eps=eps)


def _request(method="SR", eps=1e-8, times=(0.5, 2.0),
             measure=Measure.TRR, key=None, **scenario_kwargs):
    scenario = _bd_scenario(times=times, eps=eps, **scenario_kwargs)
    return SolveRequest(scenario=scenario, measure=measure, times=times,
                        eps=eps, method=method,
                        key=key or (scenario.name, method, eps))


class TestSolveRequest:
    def test_requires_exactly_one_model_source(self):
        model = CTMC(np.array([[-1.0, 1.0], [2.0, -2.0]]))
        rewards = RewardStructure.indicator(2, [1])
        with pytest.raises(ModelError, match="exactly one"):
            SolveRequest(measure=Measure.TRR, times=(1.0,))
        with pytest.raises(ModelError, match="exactly one"):
            SolveRequest(measure=Measure.TRR, times=(1.0,), model=model,
                         rewards=rewards, scenario=_bd_scenario())

    def test_model_backed_needs_rewards(self):
        model = CTMC(np.array([[-1.0, 1.0], [2.0, -2.0]]))
        with pytest.raises(ModelError, match="rewards"):
            SolveRequest(measure=Measure.TRR, times=(1.0,), model=model)

    def test_normalization(self):
        req = _request(method="sr", times=[1, 10])
        assert req.method == "SR"
        assert req.times == (1.0, 10.0)

    def test_resolve_scenario_default_rewards(self):
        req = _request()
        model, rewards = req.resolve()
        assert rewards.n_states == model.n_states

    def test_hashable_transport_shape(self):
        # The request is the future job-queue's unit of work: it must be
        # usable as a set member / dict key despite the dict field.
        a = _request(key="a")
        b = _request(key="a")
        assert a == b and hash(a) == hash(b)
        assert len({a, b}) == 1
        assert {a: 1}[b] == 1


class TestFingerprints:
    def test_same_scenario_same_fingerprint(self):
        assert model_fingerprint(_request(eps=1e-8)) == \
            model_fingerprint(_request(eps=1e-10, method="RSD"))

    def test_different_params_different_fingerprint(self):
        assert model_fingerprint(_request(n=8)) != \
            model_fingerprint(_request(n=9))

    def test_live_model_fingerprint_is_content_based(self):
        q = np.array([[-1.0, 1.0], [2.0, -2.0]])
        rewards = RewardStructure.indicator(2, [1])
        a = SolveRequest(measure=Measure.TRR, times=(1.0,), model=CTMC(q),
                         rewards=rewards)
        b = SolveRequest(measure=Measure.TRR, times=(1.0,), model=CTMC(q),
                         rewards=rewards)
        c = SolveRequest(measure=Measure.TRR, times=(1.0,),
                         model=CTMC(2.0 * q), rewards=rewards)
        assert model_fingerprint(a) == model_fingerprint(b)
        assert model_fingerprint(a) != model_fingerprint(c)


class TestPlanShape:
    def test_fuses_same_model_same_method(self):
        reqs = [_request(eps=1e-6, key="a"), _request(eps=1e-8, key="b"),
                _request(eps=1e-10, key="c")]
        plan = plan_requests(reqs)
        assert plan.n_tasks == 1
        assert plan.fused_tasks == 1
        assert plan.fused_cells == 3
        # The fused task carries the group's worth of timeout budget.
        assert plan.tasks[0].weight == 3

    def test_does_not_fuse_across_methods_or_models(self):
        reqs = [_request(method="SR"), _request(method="RSD"),
                _request(method="SR", n=9), _request(method="RRL")]
        plan = plan_requests(reqs)
        assert plan.fused_tasks == 0
        assert plan.n_tasks == 4

    def test_coalesces_identical_requests(self):
        reqs = [_request(key="x"), _request(key="y"), _request(key="z")]
        plan = plan_requests(reqs)
        assert plan.n_tasks == 1
        assert plan.coalesced == 2
        # One solve fans out to all three keys.
        outs = plan.scatter(BatchRunner(max_workers=1).run(plan.tasks))
        assert [o.key for o in outs] == ["x", "y", "z"]
        assert np.array_equal(outs[0].value.values, outs[1].value.values)

    def test_no_fuse_is_identity_plan(self):
        reqs = [_request(eps=1e-6), _request(eps=1e-8), _request(eps=1e-8)]
        plan = plan_requests(reqs, fuse=False)
        assert plan.n_tasks == 3
        assert plan.fused_tasks == 0
        assert plan.coalesced == 0

    def test_summary_mentions_shape(self):
        plan = plan_requests([_request(eps=1e-6), _request(eps=1e-8)])
        assert "2 requests" in plan.summary()
        assert "1 fused" in plan.summary()


class TestExecution:
    @pytest.mark.parametrize("method", ["SR", "RSD"])
    def test_fused_equals_unfused_bitwise(self, method):
        reqs = [_request(method=method, eps=eps, key=eps)
                for eps in (1e-6, 1e-8, 1e-10)]
        fused = execute_requests(reqs, fuse=True)
        unfused = execute_requests(reqs, fuse=False)
        for a, b in zip(fused, unfused):
            assert a.ok and b.ok
            assert np.array_equal(a.value.values, b.value.values)
            assert np.array_equal(a.value.steps, b.value.steps)
            assert a.value.stats["fused_width"] == 3
            assert "fused_width" not in b.value.stats

    def test_fused_equals_direct_solver(self):
        req = _request(eps=1e-9)
        (out,) = execute_requests([req, _request(eps=1e-7)])[:1]
        model, rewards = req.resolve()
        direct = get_solver("SR").solve(model, rewards, req.measure,
                                        list(req.times), req.eps)
        assert np.array_equal(out.value.values, direct.values)

    def test_pooled_equals_inline(self):
        scens = generate_scenarios(families=("birth_death",), seed=3,
                                   random_count=2, times=(0.5, 2.0),
                                   eps=1e-8,
                                   measures=(Measure.TRR, Measure.MRR))
        reqs = scenario_requests(scens, methods=("SR", "RRL"))
        inline = execute_requests(reqs, BatchRunner(max_workers=1))
        pooled = execute_requests(reqs, BatchRunner(max_workers=2))
        assert [o.key for o in pooled] == [o.key for o in inline]
        for a, b in zip(inline, pooled):
            assert a.ok and b.ok
            assert np.array_equal(a.value.values, b.value.values)

    def test_solve_requests_unwraps(self):
        sols = solve_requests([_request(eps=1e-8), _request(method="RRL")])
        assert len(sols) == 2
        assert sols[0].method == "SR"
        assert sols[1].method == "RRL"

    def test_solve_scenarios_convenience(self):
        scens = generate_scenarios(families=("birth_death",), seed=3,
                                   random_count=2, times=(0.5, 2.0),
                                   eps=1e-8)
        outs = solve_scenarios(scens, methods=("RSD",))
        assert [o.key for o in outs] == [(s.name, "RSD") for s in scens]
        assert all(o.ok for o in outs)

    def test_unknown_method_rejected_at_construction(self):
        # Since the solver registry became the dispatch authority, a bad
        # method tag fails when the request is *built* (with the known-
        # method list), not deep inside a worker. UnknownMethodError
        # subclasses ValueError for pre-registry callers.
        with pytest.raises(UnknownMethodError, match="unknown method"):
            _request(method="FFT")
        with pytest.raises(ValueError, match="known methods"):
            _request(method="FFT")


class TestFailureIsolation:
    def test_over_budget_cell_fails_alone_in_fused_group(self):
        # max_steps=1 makes every real solve raise TruncationError; fuse
        # a failing cell with a healthy one via solver_kwargs on only...
        # solver_kwargs differ -> would not fuse. Instead: one cell with
        # a horizon far past the group's budget under shared kwargs.
        kwargs = {"max_steps": 2000}
        good = SolveRequest(scenario=_bd_scenario(times=(0.5,)),
                            measure=Measure.TRR, times=(0.5,), eps=1e-8,
                            method="SR", solver_kwargs=kwargs, key="good")
        bad = SolveRequest(scenario=_bd_scenario(times=(5000.0,)),
                           measure=Measure.TRR, times=(5000.0,), eps=1e-8,
                           method="SR", solver_kwargs=kwargs, key="bad")
        plan = plan_requests([good, bad])
        assert plan.fused_tasks == 1
        outs = execute_requests([good, bad])
        assert outs[0].ok is True
        assert outs[1].ok is False
        assert outs[1].error_type == "TruncationError"
        # And the surviving cell's numbers match its standalone solve.
        solo = run_request(good)
        assert np.array_equal(outs[0].value.values, solo.values)


class TestWorkerCache:
    def test_kernel_built_once_per_model(self):
        worker_cache_clear()
        reqs = [_request(method=m, eps=e, key=(m, e))
                for m in ("SR", "RSD", "RRL") for e in (1e-6, 1e-8)]
        before = kernel_build_count()
        outs = execute_requests(reqs, fuse=False)
        assert all(o.ok for o in outs)
        built = kernel_build_count() - before
        # Six unfused cells over one model: exactly one kernel build.
        assert built == 1
        info = worker_cache_info()
        assert info["misses"] == 1
        assert info["hits"] == len(reqs) - 1

    def test_cache_serves_scenario_default_rewards(self):
        worker_cache_clear()
        sol = run_request(_request())
        assert sol.method == "SR"
        assert worker_cache_info()["size"] == 1
