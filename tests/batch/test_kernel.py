"""Unit tests for the shared uniformization kernel.

The load-bearing property: batching vectors into a stack must be
*bit-for-bit* identical to stepping each vector alone — the solvers that
were rewired onto the kernel may not change a single ulp.
"""

import numpy as np
import pytest

from repro.batch.kernel import (
    UniformizationKernel,
    ensure_model_kernel,
    fox_glynn_cache_clear,
    fox_glynn_cache_info,
    kernel_build_count,
    shared_fox_glynn,
)
from repro.exceptions import ModelError
from repro.markov.poisson import fox_glynn
from repro.models.library import random_ctmc, two_state_availability


@pytest.fixture
def kernel_and_model():
    model = random_ctmc(40, density=0.2, seed=7)
    kernel, dtmc, rate = UniformizationKernel.from_model(model)
    return kernel, dtmc, rate, model


class TestStackedPropagation:
    def test_stack_equals_per_vector_bitwise(self, kernel_and_model):
        kernel, dtmc, _, model = kernel_and_model
        rng = np.random.default_rng(3)
        stack = rng.dirichlet(np.ones(model.n_states), size=5).T  # (n, 5)
        out_stack = kernel.propagate(stack.copy(), 17)
        for j in range(stack.shape[1]):
            out_one = kernel.propagate(stack[:, j].copy(), 17)
            assert np.array_equal(out_stack[:, j], out_one)

    def test_step_matches_dtmc_step_bitwise(self, kernel_and_model):
        kernel, dtmc, _, _ = kernel_and_model
        pi = dtmc.initial.copy()
        assert np.array_equal(kernel.step(pi), dtmc.step(pi))

    def test_reward_sequence_stack_columns(self, kernel_and_model):
        kernel, dtmc, _, model = kernel_and_model
        rng = np.random.default_rng(11)
        r = rng.random(model.n_states)
        stack = rng.dirichlet(np.ones(model.n_states), size=3).T
        d_stack = kernel.reward_sequence(stack, r, 12)
        assert d_stack.shape == (12, 3)
        for j in range(3):
            d_one = kernel.reward_sequence(stack[:, j], r, 12)
            assert np.array_equal(d_stack[:, j], d_one)

    def test_reward_sequence_matches_manual_loop(self, kernel_and_model):
        kernel, dtmc, _, model = kernel_and_model
        r = np.linspace(0.0, 1.0, model.n_states)
        d = kernel.reward_sequence(dtmc.initial, r, 9)
        pi = dtmc.initial.copy()
        for n in range(9):
            assert d[n] == r @ pi
            pi = dtmc.step(pi)

    def test_reward_sequences_columns_bitwise(self, kernel_and_model):
        # The fused-solver primitive: one initial, a stack of reward
        # vectors — every column must equal its single-reward run ulp
        # for ulp, because SR/RSD fusion relies on exactly this.
        kernel, dtmc, _, model = kernel_and_model
        rng = np.random.default_rng(23)
        rewards = rng.random((model.n_states, 4))
        d = kernel.reward_sequences(dtmc.initial, rewards, 15)
        assert d.shape == (15, 4)
        for j in range(4):
            d_one = kernel.reward_sequence(dtmc.initial,
                                           rewards[:, j], 15)
            assert np.array_equal(d[:, j], d_one)

    def test_reward_sequences_steps_once_per_level(self, kernel_and_model):
        kernel, dtmc, _, model = kernel_and_model
        before = kernel.steps_done
        kernel.reward_sequences(dtmc.initial, np.ones((model.n_states, 6)),
                                10)
        # 9 steps for 10 levels, independent of the 6 reward columns.
        assert kernel.steps_done - before == 9

    def test_reward_sequences_shape_checks(self, kernel_and_model):
        kernel, dtmc, _, model = kernel_and_model
        with pytest.raises(ModelError):
            kernel.reward_sequences(np.ones((model.n_states, 2)),
                                    np.ones((model.n_states, 2)), 3)
        with pytest.raises(ModelError):
            kernel.reward_sequences(dtmc.initial, np.ones(model.n_states),
                                    3)
        with pytest.raises(ValueError):
            kernel.reward_sequences(dtmc.initial,
                                    np.ones((model.n_states, 2)), 0)

    def test_propagate_zero_steps_is_identity(self, kernel_and_model):
        kernel, dtmc, _, _ = kernel_and_model
        out = kernel.propagate(dtmc.initial, 0)
        assert np.array_equal(out, dtmc.initial)

    def test_step_counter(self, kernel_and_model):
        kernel, dtmc, _, _ = kernel_and_model
        assert kernel.steps_done == 0
        kernel.propagate(dtmc.initial, 4)
        assert kernel.steps_done == 4


class TestStepRate:
    def test_matches_explicit_generator_step(self):
        model, _ = two_state_availability()
        kernel, _, _ = UniformizationKernel.from_model(model)
        v = model.initial.copy()
        lam = model.max_output_rate
        expected = v + (model.generator.T @ v) / lam
        assert np.allclose(kernel.step_rate(v, lam), expected,
                           rtol=0.0, atol=0.0)

    def test_requires_generator(self):
        model, _ = two_state_availability()
        dtmc, rate = model.uniformize()
        kernel = UniformizationKernel.from_dtmc(dtmc, rate)
        with pytest.raises(ModelError):
            kernel.step_rate(dtmc.initial, 1.0)

    def test_rejects_nonpositive_rate(self):
        model, _ = two_state_availability()
        kernel, dtmc, _ = UniformizationKernel.from_model(model)
        with pytest.raises(ValueError):
            kernel.step_rate(dtmc.initial, 0.0)

    def test_generator_only_kernel(self):
        # AU's cheap construction: no P is built, step_rate still works
        # and fixed-rate stepping is refused.
        model, _ = two_state_availability()
        kernel = UniformizationKernel.from_generator(model)
        assert kernel.n_states == model.n_states
        v = model.initial.copy()
        lam = model.max_output_rate
        expected = v + (model.generator.T @ v) / lam
        assert np.array_equal(kernel.step_rate(v, lam), expected)
        with pytest.raises(ModelError):
            kernel.step(v)
        with pytest.raises(ModelError):
            UniformizationKernel(None)


class TestFoxGlynnCache:
    def test_hit_behavior(self):
        fox_glynn_cache_clear()
        w1 = shared_fox_glynn(50.0, 1e-10)
        info = fox_glynn_cache_info()
        assert info.misses == 1 and info.hits == 0
        w2 = shared_fox_glynn(50.0, 1e-10)
        info = fox_glynn_cache_info()
        assert info.hits == 1
        assert w1 is w2  # same cached object, not a recomputation
        shared_fox_glynn(50.0, 1e-8)  # different eps → different key
        assert fox_glynn_cache_info().misses == 2

    def test_cached_window_matches_direct(self):
        fox_glynn_cache_clear()
        cached = shared_fox_glynn(123.5, 1e-9)
        direct = fox_glynn(123.5, 1e-9)
        assert cached.left == direct.left and cached.right == direct.right
        assert np.array_equal(cached.weights, direct.weights)

    def test_kernel_window_uses_shared_cache(self):
        model, _ = two_state_availability()
        kernel, _, rate = UniformizationKernel.from_model(model)
        fox_glynn_cache_clear()
        kernel.window(5.0, 1e-10)
        kernel.window(5.0, 1e-10)
        info = fox_glynn_cache_info()
        assert info.misses == 1 and info.hits == 1

    def test_window_requires_rate(self):
        model, _ = two_state_availability()
        dtmc, _ = model.uniformize()
        kernel = UniformizationKernel.from_dtmc(dtmc)
        with pytest.raises(ModelError):
            kernel.window(1.0, 1e-10)


class TestValidation:
    def test_rejects_non_square(self):
        with pytest.raises(ModelError):
            UniformizationKernel(np.ones((2, 3)))

    def test_rejects_negative_steps(self):
        model, _ = two_state_availability()
        kernel, dtmc, _ = UniformizationKernel.from_model(model)
        with pytest.raises(ValueError):
            kernel.propagate(dtmc.initial, -1)

    def test_reward_sequence_shape_checks(self):
        model, _ = two_state_availability()
        kernel, dtmc, _ = UniformizationKernel.from_model(model)
        with pytest.raises(ModelError):
            kernel.reward_sequence(dtmc.initial, np.ones(5), 3)
        with pytest.raises(ValueError):
            kernel.reward_sequence(dtmc.initial, np.ones(2), 0)


class TestEnsureModelKernel:
    def test_builds_when_none(self):
        model, _ = two_state_availability()
        kernel, dtmc, rate = ensure_model_kernel(model, None)
        assert kernel.dtmc is dtmc
        assert rate == pytest.approx(model.max_output_rate)

    def test_accepts_matching_injected_kernel(self):
        model, _ = two_state_availability()
        built, _, _ = UniformizationKernel.from_model(model)
        before = kernel_build_count()
        kernel, dtmc, rate = ensure_model_kernel(model, built)
        assert kernel is built
        assert dtmc is built.dtmc
        assert kernel_build_count() == before  # no rebuild

    def test_rejects_kernel_without_dtmc(self):
        model, _ = two_state_availability()
        dtmc, rate = model.uniformize()
        bare = UniformizationKernel.from_dtmc(dtmc, rate)
        with pytest.raises(ModelError, match="from_model"):
            ensure_model_kernel(model, bare)

    def test_rejects_size_and_rate_mismatch(self):
        model, _ = two_state_availability()
        other = random_ctmc(5, density=0.5, seed=1)
        wrong_size, _, _ = UniformizationKernel.from_model(other)
        with pytest.raises(ModelError, match="states"):
            ensure_model_kernel(model, wrong_size)
        built, _, _ = UniformizationKernel.from_model(model)
        with pytest.raises(ModelError, match="rate"):
            ensure_model_kernel(model, built,
                                rate=2.0 * model.max_output_rate)

    def test_rejects_kernel_from_different_same_size_model(self):
        import numpy as _np
        from repro.markov.ctmc import CTMC

        slow = CTMC(_np.array([[-0.5, 0.5], [1.0, -1.0]]))
        fast = CTMC(_np.array([[-4.0, 4.0], [8.0, -8.0]]))
        slow_kernel, _, _ = UniformizationKernel.from_model(slow)
        # Same size, but the kernel's rate cannot dominate fast's rates.
        with pytest.raises(ModelError, match="max output rate"):
            ensure_model_kernel(fast, slow_kernel)
        # Same size and compatible rates, different initial distribution.
        shifted = CTMC(_np.array([[-0.5, 0.5], [1.0, -1.0]]),
                       initial=_np.array([0.25, 0.75]))
        shifted_kernel, _, _ = UniformizationKernel.from_model(shifted)
        with pytest.raises(ModelError, match="initial"):
            ensure_model_kernel(slow, shifted_kernel)
