"""Backend conformance matrix and thread-safety regression tests.

The execution backend is the one layer allowed to vary *how* work runs
while changing *nothing* about what comes back: for every registered
solver on every scenario family, serial == threads == processes must be
bit-identical, failure capture and deadline semantics must match across
the pool backends, and the thread backend must actually deliver its
headline cache topology (one kernel/schedule build per model per
*process*, not per worker). The hammer tests at the bottom pin the
lock-protected counters: an unlocked ``count += 1`` loses updates under
a thread pool, which is exactly the regression they would catch.
"""

import threading
import time
from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

from repro.batch.backends import (
    BACKEND_NAMES,
    ProcessBackend,
    SerialBackend,
    ThreadBackend,
    resolve_backend,
)
from repro.batch.kernel import UniformizationKernel, kernel_build_count
from repro.batch.planner import (
    SolveRequest,
    run_request,
    worker_cache_clear,
    worker_cache_info,
)
from repro.batch.runner import BatchRunner, BatchTask
from repro.batch.scenarios import Scenario, generate_scenarios
from repro.core.schedule_cache import (
    ScheduleCache,
    process_schedule_cache_info,
)
from repro.markov.rewards import Measure
from repro.service import SolveService
from repro.solvers import registry

EPS = 1e-8

#: One scenario per generator family (deterministic), the cross-backend
#: equivalent of the cross-solver matrix.
FAMILY_SCENARIOS = (
    generate_scenarios(families=("raid5",), times=(1.0, 50.0), eps=EPS)[:1]
    + generate_scenarios(families=("multiprocessor",),
                         times=(1.0, 50.0), eps=EPS)[:1]
    # Same draws as the cross-solver matrix: known-good for every method.
    + [s for s in generate_scenarios(families=("birth_death", "block"),
                                     seed=5, random_count=2,
                                     times=(0.5, 5.0), eps=EPS)
       if s.name in ("bd-0-n21", "block-0-2x4")]
)

_SMALL_BD = Scenario(name="backend-bd", family="birth_death",
                     params={"n": 40, "birth": 1.0, "death": 1.4},
                     measure=Measure.TRR, times=(0.5,), eps=1e-6)

_MEMO_BD = Scenario(name="backend-bd-memo", family="birth_death",
                    params={"n": 400, "birth": 1.0, "death": 1.5},
                    measure=Measure.TRR, times=(10.0,), eps=1e-8)


def _conformance_requests() -> list[SolveRequest]:
    """Every registered solver × every scenario family (where legal)."""
    requests = []
    for scenario in FAMILY_SCENARIOS:
        model, _ = scenario.build()
        irreducible = model.is_irreducible()
        for method in registry.known_methods():
            if method == "RSD" and not irreducible:
                continue  # steady-state detection needs an irreducible chain
            requests.append(SolveRequest(
                scenario=scenario, measure=scenario.measure,
                times=scenario.times, eps=scenario.eps, method=method,
                key=(scenario.name, method)))
    return requests


def _service(backend: str) -> SolveService:
    workers = 1 if backend == "serial" else 2
    return SolveService(workers=workers, backend=backend)


class TestConformanceMatrix:
    def test_all_backends_bit_identical_for_every_solver(self):
        requests = _conformance_requests()
        # Sanity: the matrix really covers every registered solver.
        assert {m for _, m in (r.key for r in requests)} \
            == set(registry.known_methods())

        reference = None
        for backend in BACKEND_NAMES:
            worker_cache_clear()
            outcomes = _service(backend).solve(requests)
            assert [o.key for o in outcomes] == [r.key for r in requests]
            sols = {}
            for out in outcomes:
                assert out.ok, (backend, out.key, out.error)
                sols[out.key] = out.value
            if reference is None:
                reference = sols
                continue
            for key, sol in sols.items():
                ref = reference[key]
                assert np.array_equal(sol.values, ref.values), \
                    (backend, key)
                assert np.array_equal(sol.steps, ref.steps), (backend, key)
                assert sol.method == ref.method
                assert sol.stats["rate"] == ref.stats["rate"]

    def test_failure_capture_identical_across_backends(self):
        # One cell fails in-solver (SR over its step cap), one succeeds:
        # every backend must capture the same structured failure without
        # letting it poison the healthy cell.
        requests = [
            SolveRequest(scenario=_MEMO_BD, measure=Measure.TRR,
                         times=(50.0,), eps=1e-10, method="SR",
                         solver_kwargs={"max_steps": 5}, key="overflow"),
            SolveRequest(scenario=_SMALL_BD, measure=Measure.TRR,
                         times=_SMALL_BD.times, eps=_SMALL_BD.eps,
                         method="SR", key="fine"),
        ]
        captured = {}
        for backend in BACKEND_NAMES:
            worker_cache_clear()
            bad, good = _service(backend).solve(requests)
            assert not bad.ok and bad.error_type == "TruncationError"
            assert "max_steps" in bad.error
            assert good.ok
            captured[backend] = (bad.error, good.value.values.tobytes())
        assert len(set(captured.values())) == 1, captured


def _sleep_return(seconds):
    time.sleep(seconds)
    return seconds


class TestDeadlineSemantics:
    @pytest.mark.parametrize("backend", ["threads", "processes"])
    def test_pool_backends_enforce_submission_deadlines(self, backend):
        runner = BatchRunner(max_workers=2, task_timeout=0.2,
                             backend=backend)
        start = time.perf_counter()
        outs = runner.run(
            [BatchTask(fn=_sleep_return, args=(1.5,), key="slow"),
             BatchTask(fn=_sleep_return, args=(0.01,), key="fast")])
        elapsed = time.perf_counter() - start
        assert outs[0].ok is False
        assert outs[0].error_type == "TimeoutError"
        assert "submission" in outs[0].error
        assert outs[1].ok is True and outs[1].value == 0.01
        # The deadline contract beats a clean join: run() must not wait
        # out the hung worker's full sleep on either backend.
        assert elapsed < 1.2, f"{backend} blocked {elapsed:.2f}s"

    def test_serial_backend_never_interrupts(self):
        runner = BatchRunner(max_workers=1, task_timeout=0.05,
                             backend="serial")
        outs = runner.run(
            [BatchTask(fn=_sleep_return, args=(0.15,), key="inline")])
        assert outs[0].ok is True  # inline runs are never interrupted


class TestCacheTopology:
    def _memo_requests(self, n=6):
        return [SolveRequest(scenario=_MEMO_BD, measure=Measure.TRR,
                             times=(10.0 * (i + 1),), eps=1e-8,
                             method="RRL", key=i)
                for i in range(n)]

    def test_threads_share_one_cache_set(self):
        """Thread workers share the process-wide caches: a same-model
        grid builds ONE kernel and ONE schedule transformation total,
        however many workers raced for them."""
        requests = self._memo_requests()
        worker_cache_clear()
        builds_before = kernel_build_count()
        outcomes = SolveService(workers=3, backend="threads").solve(requests)
        assert all(o.ok for o in outcomes)
        assert kernel_build_count() - builds_before == 1
        info = process_schedule_cache_info()
        assert info["misses"] == 1 and info["hits"] == len(requests) - 1
        hits = [o.value.stats["schedule_cache_hit"] for o in outcomes]
        assert sum(1 for h in hits if not h) == 1

    def test_processes_pay_per_worker_and_match_threads(self):
        """Process workers each warm a private cache: at most one
        schedule build per worker (visible through the per-cell stats),
        none in the parent — and the numbers still match the threaded
        run bit for bit."""
        requests = self._memo_requests()
        worker_cache_clear()
        threaded = SolveService(workers=2, backend="threads").solve(requests)

        worker_cache_clear()
        builds_before = kernel_build_count()
        pooled = SolveService(workers=2, backend="processes").solve(requests)
        assert kernel_build_count() - builds_before == 0  # parent idle
        assert all(o.ok for o in pooled)
        builds = sum(1 for o in pooled
                     if not o.value.stats["schedule_cache_hit"])
        assert 1 <= builds <= 2, builds
        for a, b in zip(pooled, threaded):
            assert np.array_equal(a.value.values, b.value.values)
            assert np.array_equal(a.value.steps, b.value.steps)


class TestBackendResolution:
    def test_names_and_instances(self):
        assert isinstance(resolve_backend("serial"), SerialBackend)
        assert isinstance(resolve_backend("threads"), ThreadBackend)
        assert isinstance(resolve_backend("processes"), ProcessBackend)
        backend = ThreadBackend(max_workers=3)
        assert resolve_backend(backend) is backend
        with pytest.raises(ValueError, match="unknown backend"):
            resolve_backend("fibers")

    def test_env_var_supplies_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "threads")
        assert BatchRunner(max_workers=2).backend_name == "threads"
        monkeypatch.setenv("REPRO_BACKEND", "bogus")
        with pytest.raises(ValueError, match="REPRO_BACKEND"):
            BatchRunner(max_workers=2)

    def test_mp_context_pins_processes(self, monkeypatch):
        # An explicit start method beats the env *default* but conflicts
        # with an explicit non-process backend.
        monkeypatch.setenv("REPRO_BACKEND", "threads")
        assert BatchRunner(mp_context="fork").backend_name == "processes"
        with pytest.raises(ValueError, match="mp_context"):
            BatchRunner(backend="threads", mp_context="fork")

    def test_instance_rejects_conflicting_pool_shape(self):
        # A ready instance owns its pool shape: explicit shape args
        # alongside it must error rather than be silently dropped.
        with pytest.raises(ValueError, match="owns its own pool shape"):
            resolve_backend(ThreadBackend(), mp_context="fork")
        with pytest.raises(ValueError, match="task_timeout"):
            BatchRunner(task_timeout=30.0, backend=ThreadBackend())
        with pytest.raises(ValueError, match="max_workers"):
            BatchRunner(max_workers=4, backend=SerialBackend())


# -- lock-protected counter regressions ------------------------------------

_N_THREADS = 8


def _hammer(fn, per_thread):
    with ThreadPoolExecutor(max_workers=_N_THREADS) as pool:
        list(pool.map(lambda _: [fn() for _ in range(per_thread)],
                      range(_N_THREADS)))


class TestCounterThreadSafety:
    def test_kernel_build_count_is_exact_under_threads(self):
        p = np.array([[0.5, 0.5], [0.5, 0.5]])
        before = kernel_build_count()
        _hammer(lambda: UniformizationKernel(p), per_thread=250)
        assert kernel_build_count() - before == _N_THREADS * 250

    def test_worker_cache_counters_are_exact_under_threads(self):
        request = SolveRequest(scenario=_SMALL_BD, measure=Measure.TRR,
                               times=_SMALL_BD.times, eps=_SMALL_BD.eps,
                               method="SR", key="hammer")
        worker_cache_clear()
        _hammer(lambda: run_request(request), per_thread=10)
        info = worker_cache_info()
        assert info["hits"] + info["misses"] == _N_THREADS * 10
        assert info["misses"] == 1  # one build, everyone else hits

    def test_schedule_cache_counters_are_exact_under_threads(self):
        model, rewards = _SMALL_BD.build()
        cache = ScheduleCache()
        _hammer(lambda: cache.setup_for(model, rewards), per_thread=10)
        info = cache.info()
        assert info["hits"] + info["misses"] == _N_THREADS * 10
        assert info["misses"] == 1 and len(cache) == 1

    def test_concurrent_rrl_solves_share_one_setup_bit_identically(self):
        """End-to-end hammer: many threads solving same-model RRL cells
        through one shared ScheduleCache must produce exactly the serial
        numbers (the setup lock serializes builder extension)."""
        requests = [SolveRequest(scenario=_MEMO_BD, measure=Measure.TRR,
                                 times=(5.0 * (i + 1),), eps=1e-8,
                                 method="RRL", key=i)
                    for i in range(8)]
        worker_cache_clear()
        serial = SolveService(workers=1).solve(requests)
        worker_cache_clear()
        threaded = SolveService(workers=_N_THREADS,
                                backend="threads").solve(requests)
        for a, b in zip(threaded, serial):
            assert a.ok and b.ok
            assert np.array_equal(a.value.values, b.value.values)
            assert np.array_equal(a.value.steps, b.value.steps)
        assert process_schedule_cache_info()["misses"] == 1
