"""Cross-method integration: every solver must agree with every other on
shared workloads, within the sum of their budgets.

This is the package's strongest guarantee: SR's error is rigorous, RR and
RRL take entirely different routes (explicit truncated chain vs closed-
form transform + numerical inversion), RSD adds detection, the ODE solver
shares no code with randomization at all. Agreement across all of them on
dependability-shaped models is very unlikely to be coincidental.
"""

import numpy as np
import pytest

from repro import MRR, TRR, RewardStructure
from repro.analysis import solve
from repro.models import (
    Raid5Params,
    build_raid5_availability,
    build_raid5_reliability,
    raid5_performability_rewards,
    random_ctmc,
    tandem_repair,
)

EPS = 1e-10
TIMES = [0.5, 5.0, 50.0, 500.0]


def agreement_matrix(model, rewards, measure, methods, times=TIMES,
                     eps=EPS):
    sols = {m: solve(model, rewards, measure, times, eps=eps, method=m)
            for m in methods}
    worst = 0.0
    for a in methods:
        for b in methods:
            dev = float(np.max(np.abs(sols[a].values - sols[b].values)))
            worst = max(worst, dev)
    return worst, sols


class TestSmallModels:
    def test_irreducible_all_methods(self, random_irreducible):
        rewards = RewardStructure.indicator(15, [2, 9])
        worst, _ = agreement_matrix(random_irreducible, rewards, TRR,
                                    ["RRL", "RR", "SR", "RSD", "AU", "ODE"])
        assert worst < 5e-8  # ODE/AU are the loose ones

    def test_irreducible_randomization_family_tight(self,
                                                    random_irreducible):
        rewards = RewardStructure.indicator(15, [2, 9])
        worst, _ = agreement_matrix(random_irreducible, rewards, TRR,
                                    ["RRL", "RR", "SR", "RSD"])
        assert worst < 2 * EPS

    def test_absorbing_all_applicable(self, random_absorbing):
        n = random_absorbing.n_states
        rewards = RewardStructure.indicator(n, [n - 2, n - 1])
        worst, _ = agreement_matrix(random_absorbing, rewards, TRR,
                                    ["RRL", "RR", "SR"])
        assert worst < 2 * EPS

    def test_mrr_family(self, random_irreducible):
        rewards = RewardStructure(np.linspace(0, 2, 15))
        worst, _ = agreement_matrix(random_irreducible, rewards, MRR,
                                    ["RRL", "RR", "SR", "RSD"])
        assert worst < 2 * EPS

    def test_stiff_tandem_long_horizon(self):
        model, rewards = tandem_repair(5, fail=1e-4, repair=2.0,
                                       coverage=0.99)
        worst, _ = agreement_matrix(model, rewards, TRR,
                                    ["RRL", "RR", "SR", "RSD"],
                                    times=[10.0, 1e3, 1e5])
        assert worst < 2 * EPS


class TestRaidWorkloads:
    @pytest.fixture(scope="class")
    def raid_ua(self):
        return build_raid5_availability(Raid5Params(groups=5))

    @pytest.fixture(scope="class")
    def raid_ur(self):
        return build_raid5_reliability(Raid5Params(groups=5))

    def test_ua_rrl_vs_rsd_vs_sr(self, raid_ua):
        model, rewards, _ = raid_ua
        worst, sols = agreement_matrix(model, rewards, TRR,
                                       ["RRL", "RSD", "SR"],
                                       times=[1.0, 10.0, 100.0])
        assert worst < 2 * EPS

    def test_ur_rrl_vs_sr(self, raid_ur):
        model, rewards, _ = raid_ur
        worst, _ = agreement_matrix(model, rewards, TRR,
                                    ["RRL", "SR"], times=[1.0, 50.0, 500.0])
        assert worst < 2 * EPS

    def test_ua_mrr_rrl_vs_sr(self, raid_ua):
        model, rewards, _ = raid_ua
        worst, _ = agreement_matrix(model, rewards, MRR,
                                    ["RRL", "SR"], times=[1.0, 100.0])
        assert worst < 2 * EPS

    def test_performability_rrl_vs_sr(self, raid_ua):
        model, _, explored = raid_ua
        p = Raid5Params(groups=5)
        rewards = raid5_performability_rewards(explored, p)
        worst, _ = agreement_matrix(model, rewards, TRR, ["RRL", "SR"],
                                    times=[1.0, 100.0])
        assert worst < 5 * EPS  # r_max = 5 scales the budget

    def test_rrl_large_horizon_consistency(self, raid_ua):
        # For t beyond any reasonable SR budget, RRL must agree with the
        # stationary solution of the irreducible model.
        from repro.markov.steady_state import stationary_distribution
        model, rewards, _ = raid_ua
        sol = solve(model, rewards, TRR, [1e7], eps=1e-12, method="RRL")
        pi = stationary_distribution(model)
        assert sol.values[0] == pytest.approx(rewards.expectation(pi),
                                              abs=1e-10)

    def test_ur_saturates_to_one(self, raid_ur):
        model, rewards, _ = raid_ur
        sol = solve(model, rewards, TRR, [1e8], eps=1e-10, method="RRL")
        assert sol.values[0] == pytest.approx(1.0, abs=1e-6)


class TestBudgetScaling:
    """The reported values at eps and eps/1000 must differ by < eps."""

    @pytest.mark.parametrize("method", ["RRL", "RR", "SR"])
    def test_self_consistency_under_eps(self, method):
        model = random_ctmc(10, density=0.4, seed=77, absorbing=1)
        rewards = RewardStructure.indicator(10, [9])
        t = [25.0]
        loose = solve(model, rewards, TRR, t, eps=1e-7, method=method)
        tight = solve(model, rewards, TRR, t, eps=1e-12, method=method)
        assert abs(loose.values[0] - tight.values[0]) < 1e-7
