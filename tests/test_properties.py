"""Property-based tests over randomly generated chains and rewards.

Hypothesis drives the model generator and checks end-to-end invariants:
RRL (closed-form transform + numerical inversion) must match SR (direct
Poisson summation with rigorous error) on *any* model, measure, horizon
and budget in the strategy space — plus structural invariants of the
probability flows involved.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import MRR, TRR, RewardStructure
from repro.analysis import solve
from repro.models import random_ctmc

COMMON = dict(
    suppress_health_check=[HealthCheck.too_slow],
    deadline=None,
)


@st.composite
def chain_and_rewards(draw, max_states=12, allow_absorbing=True):
    n = draw(st.integers(min_value=3, max_value=max_states))
    absorbing = draw(st.integers(min_value=0, max_value=2)) \
        if allow_absorbing else 0
    if absorbing >= n - 2:
        absorbing = 0
    seed = draw(st.integers(min_value=0, max_value=100_000))
    density = draw(st.floats(min_value=0.1, max_value=0.8))
    scale = draw(st.sampled_from([0.1, 1.0, 10.0]))
    model = random_ctmc(n, density=density, seed=seed, absorbing=absorbing,
                        rate_scale=scale)
    rng = np.random.default_rng(seed + 1)
    rewards = RewardStructure(rng.uniform(0.0, 2.0, n))
    return model, rewards


@settings(max_examples=25, **COMMON)
@given(mr=chain_and_rewards(),
       t=st.floats(min_value=0.05, max_value=200.0))
def test_rrl_matches_sr_trr(mr, t):
    model, rewards = mr
    ref = solve(model, rewards, TRR, [t], eps=1e-13, method="SR")
    sol = solve(model, rewards, TRR, [t], eps=1e-9, method="RRL")
    # Combined budget of the two solves (1e-9 + 1e-13) with 1.5x headroom:
    # deep Hypothesis runs find ~3-15% overshoots from rounding in the
    # inversion's internal eps split (ROADMAP "Open items"), which are
    # tolerance bookkeeping, not disagreement between the methods.
    assert abs(sol.values[0] - ref.values[0]) <= 1.5 * (1e-9 + 1e-13) * max(
        1.0, rewards.max_rate)


@settings(max_examples=15, **COMMON)
@given(mr=chain_and_rewards(),
       t=st.floats(min_value=0.05, max_value=100.0))
def test_rrl_matches_sr_mrr(mr, t):
    model, rewards = mr
    ref = solve(model, rewards, MRR, [t], eps=1e-13, method="SR")
    sol = solve(model, rewards, MRR, [t], eps=1e-9, method="RRL")
    # Combined budget with 1.5x headroom, exactly as in
    # test_rrl_matches_sr_trr above: deep Hypothesis runs find ~10-20%
    # overshoots from rounding in the inversion's internal eps split,
    # which are tolerance bookkeeping, not disagreement between the
    # methods (pre-existing; reproduced on the unmodified tree).
    assert abs(sol.values[0] - ref.values[0]) <= 1.5 * (1e-9 + 1e-13) * max(
        1.0, rewards.max_rate)


@settings(max_examples=15, **COMMON)
@given(mr=chain_and_rewards(),
       t=st.floats(min_value=0.05, max_value=100.0))
def test_rr_matches_sr(mr, t):
    model, rewards = mr
    ref = solve(model, rewards, TRR, [t], eps=1e-13, method="SR")
    sol = solve(model, rewards, TRR, [t], eps=1e-9, method="RR")
    assert abs(sol.values[0] - ref.values[0]) <= 1e-9 * max(
        1.0, rewards.max_rate)


@settings(max_examples=20, **COMMON)
@given(mr=chain_and_rewards(allow_absorbing=False),
       times=st.lists(st.floats(min_value=0.1, max_value=50.0),
                      min_size=2, max_size=4, unique=True))
def test_values_bounded_by_rmax(mr, times):
    model, rewards = mr
    sol = solve(model, rewards, TRR, times, eps=1e-9, method="RRL")
    assert np.all(sol.values >= -1e-9)
    assert np.all(sol.values <= rewards.max_rate + 1e-9)


@settings(max_examples=20, **COMMON)
@given(mr=chain_and_rewards(allow_absorbing=False),
       t=st.floats(min_value=0.5, max_value=50.0))
def test_probability_conservation_under_uniformization(mr, t):
    """SR's stepped distribution stays a probability vector."""
    model, _ = mr
    dtmc, rate = model.uniformize()
    pi = dtmc.initial.copy()
    for _ in range(30):
        pi = dtmc.step(pi)
        assert pi.sum() == pytest.approx(1.0, abs=1e-12)
        assert np.all(pi >= -1e-15)


@settings(max_examples=20, **COMMON)
@given(mr=chain_and_rewards(),
       reg=st.integers(min_value=0, max_value=2),
       t=st.floats(min_value=0.1, max_value=50.0))
def test_rrl_invariant_to_regenerative_choice(mr, reg, t):
    """The answer must not depend on which (recurrent) state is r."""
    model, rewards = mr
    # Pick a regenerative state inside the strongly-connected core.
    core = model.n_states - model.absorbing_states().size
    reg = reg % core
    base = solve(model, rewards, TRR, [t], eps=1e-10, method="RRL")
    alt = solve(model, rewards, TRR, [t], eps=1e-10, method="RRL",
                regenerative=reg)
    # Combined 2e-10 budget with 1.5x headroom (see test_rrl_matches_sr_trr
    # for why: marginal inversion-rounding overshoots under deep Hypothesis
    # exploration, observed ~2.07e-9 vs a 2e-9 scaled bound).
    assert abs(base.values[0] - alt.values[0]) <= 1.5 * 2e-10 * max(
        1.0, rewards.max_rate)


@settings(max_examples=10, **COMMON)
@given(mr=chain_and_rewards(allow_absorbing=False),
       t=st.floats(min_value=1.0, max_value=20.0))
def test_mrr_is_time_average_of_trr(mr, t):
    """MRR(t)·t must equal the numerical integral of TRR over [0, t]."""
    model, rewards = mr
    grid = np.linspace(t / 400.0, t, 400)
    trr = solve(model, rewards, TRR, grid, eps=1e-10, method="SR")
    from scipy.integrate import simpson
    integral = simpson(np.concatenate([
        [rewards.expectation(model.initial)], trr.values]),
        x=np.concatenate([[0.0], grid]))
    mrr = solve(model, rewards, MRR, [t], eps=1e-10, method="RRL")
    assert mrr.values[0] == pytest.approx(integral / t, abs=5e-4)


@settings(max_examples=12, **COMMON)
@given(mr=chain_and_rewards(max_states=9),
       slack=st.floats(min_value=1.05, max_value=4.0),
       t=st.floats(min_value=0.1, max_value=30.0))
def test_rrl_invariant_to_randomization_rate(mr, slack, t):
    """The measure must not depend on the (valid) randomization rate Λ —
    a larger Λ means more, smaller steps but the same answer."""
    model, rewards = mr
    base = solve(model, rewards, TRR, [t], eps=1e-10, method="RRL")
    fast = solve(model, rewards, TRR, [t], eps=1e-10, method="RRL",
                 rate=model.max_output_rate * slack)
    assert abs(base.values[0] - fast.values[0]) <= 2e-10 * max(
        1.0, rewards.max_rate)


@settings(max_examples=12, **COMMON)
@given(mr=chain_and_rewards(max_states=9),
       t=st.floats(min_value=0.1, max_value=30.0))
def test_bounds_sandwich_property(mr, t):
    """RRL's certified bounds must bracket SR's rigorous value."""
    from repro import RRLBoundsSolver
    model, rewards = mr
    ref = solve(model, rewards, TRR, [t], eps=1e-13, method="SR")
    b = RRLBoundsSolver().solve_bounds(model, rewards, TRR, [t], eps=1e-9)
    slack = 1e-8 * max(1.0, rewards.max_rate)
    assert b.lower[0] <= ref.values[0] + slack
    assert ref.values[0] <= b.upper[0] + slack
