"""Fault-tolerant multiprocessor model."""

import numpy as np
import pytest

from repro import TRR, RRLSolver
from repro.analysis.validation import cross_validate
from repro.exceptions import ModelError
from repro.markov.mttf import mean_time_to_absorption
from repro.models import (
    MultiprocessorParams,
    build_multiprocessor_availability,
    build_multiprocessor_reliability,
    multiprocessor_capacity_rewards,
)
from repro.models.multiprocessor import CRASHED


class TestParams:
    def test_validation(self):
        with pytest.raises(ModelError):
            MultiprocessorParams(processors=0)
        with pytest.raises(ModelError):
            MultiprocessorParams(min_memories=5, memories=4)
        with pytest.raises(ModelError):
            MultiprocessorParams(coverage=1.5)
        with pytest.raises(ModelError):
            MultiprocessorParams(repair=-1.0)


class TestStructure:
    def test_state_count(self):
        # Operational states: fp in 0..n_p-min_p, fm in 0..n_m-min_m,
        # plus CRASHED.
        p = MultiprocessorParams(processors=3, memories=2,
                                 min_processors=1, min_memories=1)
        model, _, ex = build_multiprocessor_availability(p)
        assert model.n_states == 3 * 2 + 1

    def test_availability_irreducible(self):
        model, _, _ = build_multiprocessor_availability(
            MultiprocessorParams())
        assert model.is_irreducible()

    def test_reliability_absorbing(self):
        model, rewards, ex = build_multiprocessor_reliability(
            MultiprocessorParams())
        assert list(model.absorbing_states()) == [ex.state_index(CRASHED)]
        assert rewards.rates[ex.state_index(CRASHED)] == 1.0

    def test_repair_priority_processors_first(self):
        p = MultiprocessorParams()
        model, _, ex = build_multiprocessor_availability(p)
        i = ex.state_index((1, 1))
        q = model.generator
        assert q[i, ex.state_index((0, 1))] == pytest.approx(p.repair)
        assert q[i, ex.state_index((1, 0))] == 0.0

    def test_perfect_coverage_removes_crash_arcs_from_full(self):
        p = MultiprocessorParams(coverage=1.0)
        model, _, ex = build_multiprocessor_availability(p)
        i = ex.state_index((0, 0))
        assert model.generator[i, ex.state_index(CRASHED)] == 0.0


class TestBehaviour:
    def test_cross_method_agreement(self):
        model, rewards, _ = build_multiprocessor_availability(
            MultiprocessorParams())
        report = cross_validate(model, rewards, TRR, [1.0, 100.0, 1e4],
                                eps=1e-10)
        assert report.passed, report.render()

    def test_coverage_dominates_unreliability(self):
        t = [1000.0]
        u = []
        for cov in (0.999, 0.9):
            p = MultiprocessorParams(coverage=cov)
            model, rewards, _ = build_multiprocessor_reliability(p)
            u.append(RRLSolver().solve(model, rewards, TRR, t,
                                       eps=1e-10).values[0])
        assert u[1] > 10 * u[0]

    def test_mttf_scales_with_coverage(self):
        mt = []
        for cov in (0.9, 0.999):
            p = MultiprocessorParams(coverage=cov)
            model, _, _ = build_multiprocessor_reliability(p)
            mt.append(mean_time_to_absorption(model).mean)
        assert mt[1] > mt[0]

    def test_capacity_rewards(self):
        p = MultiprocessorParams(processors=4, memories=2)
        model, _, ex = build_multiprocessor_availability(p)
        rw = multiprocessor_capacity_rewards(ex, p)
        assert rw.rates[ex.state_index((0, 0))] == 2.0  # min(4, 2)
        assert rw.rates[ex.state_index((3, 0))] == 1.0  # min(1, 2)
        assert rw.rates[ex.state_index(CRASHED)] == 0.0
