"""RAID-5 model generator: invariants, structure, paper cross-checks."""

import numpy as np
import pytest

from repro import TRR, RRLSolver
from repro.exceptions import ModelError
from repro.models import (
    Raid5Params,
    build_raid5_availability,
    build_raid5_reliability,
    raid5_performability_rewards,
)
from repro.models.raid5 import FAILED


@pytest.fixture(scope="module")
def small_ua():
    return build_raid5_availability(Raid5Params(groups=5))


@pytest.fixture(scope="module")
def small_ur():
    return build_raid5_reliability(Raid5Params(groups=5))


class TestParams:
    def test_defaults_are_paper_values(self):
        p = Raid5Params()
        assert (p.disks_per_group, p.spare_disks, p.spare_controllers) == \
            (5, 3, 1)
        assert (p.disk_fail, p.disk_fail_overloaded, p.controller_fail) == \
            (1e-5, 2e-5, 5e-5)
        assert (p.reconstruction, p.disk_repair, p.controller_repair) == \
            (1.0, 4.0, 4.0)
        assert (p.spare_repair, p.global_repair) == (0.25, 0.25)

    def test_validation(self):
        with pytest.raises(ModelError):
            Raid5Params(groups=0)
        with pytest.raises(ModelError):
            Raid5Params(reconstruction_success=1.5)
        with pytest.raises(ModelError):
            Raid5Params(disk_fail=-1.0)
        with pytest.raises(ModelError):
            Raid5Params(spare_disks=-1)

    def test_initial_state(self):
        p = Raid5Params(groups=3)
        assert p.initial_state == (0, 0, 0, 3, True, 0, 1)


class TestStateSpaceInvariants:
    def test_every_state_satisfies_invariants(self, small_ua):
        model, _, explored = small_ua
        g = 5
        for state in explored.index:
            if state == FAILED:
                continue
            nfd, ndr, nwd, nsd, al, nfc, nsc = state
            assert 0 <= nfc <= 1
            assert nfd + ndr + nwd <= g
            if nfc == 0:
                assert nwd == 0
            else:
                assert ndr == 0
                assert al is True
            if nfd + ndr + nwd <= 1:
                assert al is True
            assert 0 <= nsd <= 3 and 0 <= nsc <= 1

    def test_irreducible_availability(self, small_ua):
        model, _, _ = small_ua
        assert model.is_irreducible()
        assert model.absorbing_states().size == 0

    def test_reliability_has_single_absorbing_failed(self, small_ur):
        model, _, explored = small_ur
        absorbing = model.absorbing_states()
        assert absorbing.size == 1
        assert explored.state_index(FAILED) == absorbing[0]

    def test_one_transition_less(self):
        # Paper: "models with absorbing state have the same number of
        # states and one transition less" (the global repair arc).
        p = Raid5Params(groups=4)
        ua, _, _ = build_raid5_availability(p)
        ur, _, _ = build_raid5_reliability(p)
        assert ua.n_states == ur.n_states
        assert ua.n_transitions == ur.n_transitions + 1

    def test_max_rate_formula(self):
        # Λ ≈ (G−1)·μ_DRC + μ_DRP + 3·μ_SR (+ small failure terms) —
        # the structure that reproduces the paper's SR step counts.
        for g in (5, 10, 20):
            model, _, _ = build_raid5_availability(Raid5Params(groups=g))
            lam = model.max_output_rate
            base = (g - 1) * 1.0 + 4.0 + 3 * 0.25
            assert base < lam < base + 0.01

    def test_reward_is_failed_indicator(self, small_ua):
        model, rewards, explored = small_ua
        idx = explored.state_index(FAILED)
        assert rewards.rates[idx] == 1.0
        assert rewards.rates.sum() == 1.0

    def test_rates_all_positive_offdiag(self, small_ua):
        model, _, _ = small_ua
        coo = model.generator.tocoo()
        off = coo.data[coo.row != coo.col]
        assert np.all(off > 0.0)

    def test_state_count_scaling(self):
        # The aggregated space grows ~quadratically in G (triangle of
        # (NFD, NDR) pairs times the spare/alignment/controller factors).
        n5 = build_raid5_availability(Raid5Params(groups=5))[0].n_states
        n10 = build_raid5_availability(Raid5Params(groups=10))[0].n_states
        assert 2.5 < n10 / n5 < 4.5


class TestPaperCrossChecks:
    def test_paper_step_counts_g20(self):
        """RRL step counts must reproduce the paper's Table 2 (G=20)."""
        model, rewards, _ = build_raid5_reliability(Raid5Params(groups=20))
        sol = RRLSolver().solve(model, rewards, TRR,
                                [1.0, 10.0, 1e2, 1e3, 1e4, 1e5], eps=1e-12)
        paper = np.array([56, 323, 2233, 2708, 2937, 3157])
        assert np.all(np.abs(sol.steps - paper) <= 2)

    def test_paper_ur_value_g20(self):
        model, rewards, _ = build_raid5_reliability(Raid5Params(groups=20))
        sol = RRLSolver().solve(model, rewards, TRR, [1e5], eps=1e-10)
        # P_R calibration targets the paper's 0.50480 (see EXPERIMENTS.md).
        assert sol.values[0] == pytest.approx(0.50480, abs=5e-4)

    def test_ur_monotone_in_time(self, small_ur):
        model, rewards, _ = small_ur
        sol = RRLSolver().solve(model, rewards, TRR,
                                [1.0, 10.0, 100.0, 1000.0], eps=1e-12)
        assert np.all(np.diff(sol.values) > 0.0)

    def test_ur_increases_with_groups(self):
        # More groups ⇒ more disks ⇒ lower reliability.
        t = [1e4]
        u = []
        for g in (4, 8):
            model, rewards, _ = build_raid5_reliability(Raid5Params(groups=g))
            u.append(RRLSolver().solve(model, rewards, TRR, t,
                                       eps=1e-10).values[0])
        assert u[1] > u[0]

    def test_more_spares_help_availability(self):
        t = [1e4]
        ua = []
        for d_h in (1, 4):
            p = Raid5Params(groups=5, spare_disks=d_h)
            model, rewards, _ = build_raid5_availability(p)
            ua.append(RRLSolver().solve(model, rewards, TRR, t,
                                        eps=1e-12).values[0])
        assert ua[1] < ua[0]

    def test_perfect_reconstruction_lowers_unreliability(self):
        t = [1e4]
        u = []
        for pr in (0.99, 1.0):
            p = Raid5Params(groups=5, reconstruction_success=pr)
            model, rewards, _ = build_raid5_reliability(p)
            u.append(RRLSolver().solve(model, rewards, TRR, t,
                                       eps=1e-10).values[0])
        assert u[1] < u[0]


class TestPerformabilityRewards:
    def test_reward_range(self, small_ua):
        model, _, explored = small_ua
        p = Raid5Params(groups=5)
        rw = raid5_performability_rewards(explored, p)
        assert rw.max_rate == pytest.approx(5.0)  # all groups full speed
        idx = explored.state_index(FAILED)
        assert rw.rates[idx] == 0.0
        assert np.all(rw.rates >= 0.0)

    def test_initial_state_full_throughput(self, small_ua):
        model, _, explored = small_ua
        p = Raid5Params(groups=5)
        rw = raid5_performability_rewards(explored, p)
        idx = explored.state_index(p.initial_state)
        assert rw.rates[idx] == pytest.approx(5.0)

    def test_degraded_states_lose_throughput(self, small_ua):
        model, _, explored = small_ua
        p = Raid5Params(groups=5)
        rw = raid5_performability_rewards(explored, p)
        one_failed = (1, 0, 0, 3, True, 0, 1)
        idx = explored.state_index(one_failed)
        assert rw.rates[idx] == pytest.approx(4.5)  # 4 full + 1 at 0.5
