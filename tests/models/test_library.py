"""Library models: closed-form spot checks and structural properties."""

import numpy as np
import pytest

from repro import TRR, StandardRandomizationSolver
from repro.exceptions import ModelError
from repro.markov.steady_state import stationary_distribution
from repro.models import (
    birth_death,
    cyclic_chain,
    erlang_chain,
    mm1k_queue,
    random_ctmc,
    tandem_repair,
    two_state_availability,
)


class TestTwoState:
    def test_structure(self):
        model, rewards = two_state_availability(2.0, 5.0)
        assert model.n_states == 2
        assert model.output_rates[0] == 2.0
        assert rewards.rates[1] == 1.0

    def test_validation(self):
        with pytest.raises(ModelError):
            two_state_availability(0.0, 1.0)


class TestBirthDeath:
    def test_stationary_geometric(self):
        m = birth_death(7, 1.0, 2.0)
        pi = stationary_distribution(m)
        expected = 0.5 ** np.arange(7)
        expected /= expected.sum()
        assert np.allclose(pi, expected)

    def test_validation(self):
        with pytest.raises(ModelError):
            birth_death(1, 1.0, 1.0)


class TestErlang:
    def test_cdf(self):
        from scipy import stats
        model, rewards = erlang_chain(4, 3.0)
        sol = StandardRandomizationSolver().solve(model, rewards, TRR,
                                                  [0.3, 1.0], eps=1e-12)
        exact = stats.gamma.cdf([0.3, 1.0], a=4, scale=1.0 / 3.0)
        assert np.allclose(sol.values, exact, atol=1e-11)

    def test_validation(self):
        with pytest.raises(ModelError):
            erlang_chain(0, 1.0)


class TestQueue:
    def test_rewards_are_lengths(self):
        model, rewards = mm1k_queue(5, 1.0, 1.5)
        assert np.allclose(rewards.rates, np.arange(6))

    def test_stationary_mean(self):
        model, rewards = mm1k_queue(10, 1.0, 2.0)
        pi = stationary_distribution(model)
        mean = rewards.expectation(pi)
        rho = 0.5
        pk = rho ** np.arange(11)
        pk /= pk.sum()
        assert mean == pytest.approx(float(np.arange(11) @ pk))


class TestCyclic:
    def test_periodic_structure(self):
        m = cyclic_chain(4, 2.0)
        assert m.n_transitions == 4
        assert m.is_irreducible()
        dtmc, _ = m.uniformize()  # minimal rate: no self-loops
        assert np.allclose(dtmc.transition_matrix.diagonal(), 0.0)


class TestTandem:
    def test_perfect_coverage_is_birth_death(self):
        model, rewards = tandem_repair(3, 0.1, 1.0, coverage=1.0)
        assert model.n_states == 4
        # No direct jump 0 -> down with full coverage.
        assert model.generator[0, 3] == 0.0

    def test_uncovered_failures_jump_to_down(self):
        model, _ = tandem_repair(3, 0.1, 1.0, coverage=0.9)
        assert model.generator[0, 3] > 0.0

    def test_down_probability_increases_without_coverage(self):
        t = [100.0]
        vals = []
        for cov in (1.0, 0.8):
            model, rewards = tandem_repair(3, 0.01, 1.0, coverage=cov)
            vals.append(StandardRandomizationSolver().solve(
                model, rewards, TRR, t, eps=1e-11).values[0])
        assert vals[1] > vals[0]


class TestRandomCtmc:
    def test_core_strongly_connected(self):
        m = random_ctmc(12, density=0.2, seed=2, absorbing=2)
        core = m.restricted_to(range(10))
        assert core.is_irreducible()

    def test_absorbing_states_absorb(self):
        m = random_ctmc(10, density=0.3, seed=4, absorbing=2)
        assert list(m.absorbing_states()) == [8, 9]

    def test_deterministic_by_seed(self):
        a = random_ctmc(8, seed=5).generator.toarray()
        b = random_ctmc(8, seed=5).generator.toarray()
        assert np.array_equal(a, b)

    def test_validation(self):
        with pytest.raises(ModelError):
            random_ctmc(1)
        with pytest.raises(ModelError):
            random_ctmc(5, absorbing=5)
