"""State-space exploration engine."""

import numpy as np
import pytest

from repro.exceptions import ModelError
from repro.models import StateSpaceBuilder


def ring_transitions(n):
    def f(state):
        yield (state + 1) % n, 1.0
    return f


class TestExploration:
    def test_ring(self):
        ex = StateSpaceBuilder(ring_transitions(5)).explore(0)
        assert ex.model.n_states == 5
        assert ex.model.n_transitions == 5
        assert ex.state_index(3) == 3  # BFS order from 0

    def test_unreachable_states_not_built(self):
        def f(state):
            if state == 0:
                yield 1, 2.0
            # state 1 is a dead end; symbolic state 99 never referenced
        ex = StateSpaceBuilder(f).explore(0)
        assert ex.model.n_states == 2

    def test_duplicate_arcs_accumulate(self):
        def f(state):
            if state == "a":
                yield "b", 1.0
                yield "b", 2.5  # distinct physical events, same target
                yield "a2", 1.0
            elif state == "a2":
                yield "a", 1.0
            elif state == "b":
                yield "a", 1.0
        ex = StateSpaceBuilder(f).explore("a")
        i, j = ex.state_index("a"), ex.state_index("b")
        assert ex.model.generator[i, j] == pytest.approx(3.5)

    def test_zero_rates_dropped_self_loops_ignored(self):
        def f(state):
            yield state, 5.0       # self-loop: ignored
            yield "other", 0.0     # zero rate: dropped (state not created)
            if state == 0:
                yield 1, 1.0
            else:
                yield 0, 1.0
        ex = StateSpaceBuilder(f).explore(0)
        assert ex.model.n_states == 2

    def test_labels_preserve_symbolic_states(self):
        ex = StateSpaceBuilder(ring_transitions(3)).explore(0)
        assert list(ex.model.labels) == [0, 1, 2]

    def test_initial_distribution_over_seeds(self):
        def f(state):
            yield (state + 1) % 4, 1.0
        ex = StateSpaceBuilder(f).explore(
            0, initial_probability={0: 0.25, 2: 0.75})
        init = ex.model.initial
        assert init[ex.state_index(0)] == pytest.approx(0.25)
        assert init[ex.state_index(2)] == pytest.approx(0.75)

    def test_max_states_guard(self):
        def unbounded(state):
            yield state + 1, 1.0
        with pytest.raises(ModelError):
            StateSpaceBuilder(unbounded, max_states=100).explore(0)

    def test_negative_rate_rejected(self):
        def f(state):
            yield 1 - state, -2.0
        with pytest.raises(ModelError):
            StateSpaceBuilder(f).explore(0)

    def test_hashable_tuple_states(self):
        def f(state):
            a, b = state
            if a < 2:
                yield (a + 1, b), 1.0
            if b < 2:
                yield (a, b + 1), 0.5
            if a > 0:
                yield (a - 1, b), 2.0
            if b > 0:
                yield (a, b - 1), 2.0
        ex = StateSpaceBuilder(f).explore((0, 0))
        assert ex.model.n_states == 9
        assert ex.model.is_irreducible()
