"""Public API surface: exports, version, and the README quickstart."""

import numpy as np
import pytest

import repro
from repro.exceptions import (
    ConvergenceError,
    InversionError,
    MeasureError,
    ModelError,
    ReproError,
    TruncationError,
)


class TestExports:
    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_version(self):
        assert repro.__version__.count(".") == 2

    def test_solver_method_names_unique(self):
        from repro.analysis import SOLVER_REGISTRY
        tags = [factory().method_name  # type: ignore[attr-defined]
                for factory in SOLVER_REGISTRY.values()]
        assert len(set(tags)) == len(tags)

    def test_markov_and_core_reexports_consistent(self):
        from repro.core import RRLSolver as core_rrl
        assert repro.RRLSolver is core_rrl


class TestExceptionHierarchy:
    @pytest.mark.parametrize("exc", [ModelError, MeasureError,
                                     ConvergenceError, TruncationError,
                                     InversionError])
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, ReproError)
        assert issubclass(exc, Exception)

    def test_convergence_error_payload(self):
        e = ConvergenceError("nope", iterations=5, residual=0.1)
        assert e.iterations == 5
        assert e.residual == 0.1

    def test_catch_all(self):
        from repro import CTMC
        with pytest.raises(ReproError):
            CTMC(np.zeros((2, 3)))


class TestReadmeQuickstart:
    def test_quickstart_snippet(self):
        from repro import CTMC, RewardStructure, TRR, RRLSolver
        model = CTMC(np.array([[-1.0, 1.0], [10.0, -10.0]]))
        rewards = RewardStructure.indicator(2, [1])
        sol = RRLSolver().solve(model, rewards, TRR,
                                times=[1.0, 1e3, 1e5], eps=1e-12)
        # Steady-state unavailability of the λ=1, μ=10 machine is 1/11.
        assert sol.values[-1] == pytest.approx(1.0 / 11.0, abs=1e-11)
        assert sol.steps.shape == (3,)

    def test_package_docstring_value(self):
        # The __init__ docstring promises UA(100) ≈ 0.090909.
        from repro import CTMC, RewardStructure, TRR, RRLSolver
        model = CTMC(np.array([[-1.0, 1.0], [10.0, -10.0]]))
        rewards = RewardStructure.indicator(2, [1])
        sol = RRLSolver().solve(model, rewards, TRR, [100.0], eps=1e-10)
        assert round(sol.values[0], 6) == 0.090909
