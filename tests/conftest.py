"""Shared fixtures: small reference models with known solutions."""

from __future__ import annotations

import numpy as np
import pytest

from repro import CTMC, RewardStructure
from repro.models import random_ctmc, two_state_availability


@pytest.fixture
def two_state():
    """(model, rewards, fail, repair) of the canonical up/down machine."""
    model, rewards = two_state_availability(1.0, 10.0)
    return model, rewards, 1.0, 10.0


@pytest.fixture
def erlang3():
    """3-stage Erlang absorption chain with rate 2."""
    from repro.models import erlang_chain
    return erlang_chain(3, 2.0)


@pytest.fixture
def random_irreducible():
    """A 15-state random strongly-connected chain with mixed rates."""
    return random_ctmc(15, density=0.3, seed=7)


@pytest.fixture
def random_absorbing():
    """A 14-state random chain with 2 absorbing states."""
    return random_ctmc(14, density=0.3, seed=11, absorbing=2)


def exact_two_state_ua(t, fail=1.0, repair=10.0):
    s = fail + repair
    return fail / s * (1.0 - np.exp(-s * np.asarray(t, dtype=float)))


def exact_two_state_mrr(t, fail=1.0, repair=10.0):
    s = fail + repair
    t = np.asarray(t, dtype=float)
    return fail / s * (1.0 - (1.0 - np.exp(-s * t)) / (s * t))


@pytest.fixture
def uniform_reward_model():
    """Irreducible model with constant rewards: TRR(t) == MRR(t) == c."""
    model = random_ctmc(8, density=0.4, seed=3)
    return model, RewardStructure.constant(8, 2.5)


def make_stiff_model() -> tuple[CTMC, RewardStructure]:
    """3-state stiff chain: rates spanning 6 orders of magnitude."""
    trans = [(0, 1, 1e-4), (1, 0, 100.0), (1, 2, 1e-3), (2, 0, 50.0)]
    model = CTMC.from_transitions(3, trans, initial=0)
    return model, RewardStructure.indicator(3, [2])
