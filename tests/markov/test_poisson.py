"""Fox–Glynn window, Poisson tails and quantiles — vs scipy.stats and
closed identities, including the huge-rate regime of the paper."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from scipy import stats

from repro.exceptions import TruncationError
from repro.markov.poisson import (
    fox_glynn,
    poisson_cdf,
    poisson_expected_excess,
    poisson_left_quantile,
    poisson_right_quantile,
    poisson_sf,
)

RATES = [0.05, 1.0, 7.3, 24.0, 1000.0, 2.4e6]


class TestSurvival:
    @pytest.mark.parametrize("rate", RATES)
    def test_matches_scipy(self, rate):
        ns = np.array([0, 1, int(rate), int(rate) + int(3 * rate**0.5) + 5])
        ours = poisson_sf(ns, rate)
        ref = stats.poisson.sf(ns, rate)
        assert np.allclose(ours, ref, rtol=1e-11, atol=0.0)

    def test_scalar_output(self):
        out = poisson_sf(3, 2.0)
        assert isinstance(out, float)

    def test_cdf_complements_sf(self):
        for n in (0, 3, 10):
            assert poisson_cdf(n, 4.0) + poisson_sf(n, 4.0) == pytest.approx(
                1.0, abs=1e-14)

    def test_tiny_tail_relative_accuracy(self):
        # P[N > mu + 8 sqrt(mu)] is astronomically small but must not be 0.
        rate = 1e6
        n = int(rate + 8 * rate**0.5)
        val = poisson_sf(n, rate)
        assert 0.0 < val < 1e-12


class TestQuantiles:
    @pytest.mark.parametrize("rate", RATES)
    @pytest.mark.parametrize("eps", [1e-6, 1e-12])
    def test_right_quantile_minimal(self, rate, eps):
        r = poisson_right_quantile(rate, eps)
        assert poisson_sf(r, rate) <= eps
        if r > 0:
            assert poisson_sf(r - 1, rate) > eps

    @pytest.mark.parametrize("rate", [5.0, 1000.0])
    def test_left_quantile_maximal(self, rate):
        eps = 1e-10
        left = poisson_left_quantile(rate, eps)
        if left > 0:
            assert poisson_cdf(left - 1, rate) <= eps
            assert poisson_cdf(left, rate) > eps

    def test_zero_rate(self):
        assert poisson_right_quantile(0.0, 1e-12) == 0
        assert poisson_left_quantile(0.0, 1e-12) == 0

    def test_bad_eps_raises(self):
        with pytest.raises(ValueError):
            poisson_right_quantile(1.0, 0.0)
        with pytest.raises(ValueError):
            poisson_left_quantile(1.0, -1.0)

    def test_paper_sr_steps(self):
        # The paper's Table 2 SR step counts are Poisson right quantiles
        # at eps = 1e-12 for the RAID Λ values; spot-check the largest.
        lam = 23.752151  # G=20 availability-model max output rate
        q = poisson_right_quantile(lam * 1e5, 1e-12)
        assert abs(q - 2386068) < 200  # paper: 2,386,068


class TestExpectedExcess:
    @pytest.mark.parametrize("rate", [0.5, 12.0, 300.0])
    def test_against_direct_sum(self, rate):
        k = int(rate) + 2
        n = np.arange(0, int(rate + 12 * rate**0.5) + 60)
        pmf = stats.poisson.pmf(n, rate)
        direct = float(np.maximum(n - k, 0) @ pmf)
        assert poisson_expected_excess(rate, k) == pytest.approx(
            direct, rel=1e-9, abs=1e-300)

    def test_k_zero_is_mean(self):
        assert poisson_expected_excess(7.0, 0) == pytest.approx(7.0)

    def test_negative_k(self):
        assert poisson_expected_excess(3.0, -2) == pytest.approx(5.0)

    def test_monotone_in_k(self):
        vals = [poisson_expected_excess(20.0, k) for k in range(0, 60, 5)]
        assert all(a >= b for a, b in zip(vals, vals[1:]))

    def test_never_negative(self):
        assert poisson_expected_excess(1e6, 2 * 10**6) >= 0.0


class TestFoxGlynn:
    @pytest.mark.parametrize("rate", RATES)
    def test_window_matches_scipy_pmf(self, rate):
        w = fox_glynn(rate, 1e-10)
        ns = np.arange(w.left, w.right + 1)
        ref = stats.poisson.pmf(ns, rate)
        # Normalization redistributes <= eps mass, and the multiplicative
        # recursion accumulates O(window)·ulp relative drift (~1e-8 for the
        # 20k-wide window at Λt = 2.4e6) — both harmless for the absolute
        # error budgets the solvers run on.
        assert np.allclose(w.weights, ref, rtol=1e-7, atol=1e-13)

    def test_weights_sum_to_one(self):
        for rate in RATES:
            w = fox_glynn(rate, 1e-9)
            assert w.weights.sum() == pytest.approx(1.0, abs=1e-12)

    def test_pmf_accessor(self):
        w = fox_glynn(10.0, 1e-9)
        assert w.pmf(w.left - 1) == 0.0
        assert w.pmf(w.right + 1) == 0.0
        assert w.pmf(10) > 0.0
        assert w.size == w.right - w.left + 1

    def test_zero_rate(self):
        w = fox_glynn(0.0, 1e-9)
        assert w.left == w.right == 0
        assert w.weights[0] == 1.0

    def test_mass_outside_window_small(self):
        rate, eps = 500.0, 1e-8
        w = fox_glynn(rate, eps)
        outside = (stats.poisson.cdf(w.left - 1, rate)
                   + stats.poisson.sf(w.right, rate))
        assert outside <= eps

    def test_invalid_eps(self):
        with pytest.raises(ValueError):
            fox_glynn(1.0, 0.0)
        with pytest.raises(ValueError):
            fox_glynn(1.0, 1.5)

    def test_huge_rate_window_is_narrow(self):
        w = fox_glynn(2.4e6, 1e-12)
        # Window should be O(sqrt(rate)), not O(rate).
        assert w.size < 40_000

    def test_window_limit(self):
        # A window that would need ~1.4e10 entries must refuse, not OOM.
        with pytest.raises(TruncationError):
            fox_glynn(1e18, 1e-12)


@settings(max_examples=60, deadline=None)
@given(rate=st.floats(min_value=1e-3, max_value=1e5),
       eps_exp=st.integers(min_value=3, max_value=12))
def test_fox_glynn_properties(rate, eps_exp):
    """Property: any window is normalized, non-negative, covers the mode."""
    eps = 10.0 ** (-eps_exp)
    w = fox_glynn(rate, eps)
    assert np.all(w.weights >= 0.0)
    assert w.weights.sum() == pytest.approx(1.0, abs=1e-9)
    assert w.left <= int(rate) <= w.right


@settings(max_examples=60, deadline=None)
@given(rate=st.floats(min_value=1e-3, max_value=1e5),
       k=st.integers(min_value=0, max_value=200_000))
def test_excess_identity(rate, k):
    """Property: E[(N-k)^+] - E[(N-k-1)^+] = P[N >= k+1]."""
    lhs = (poisson_expected_excess(rate, k)
           - poisson_expected_excess(rate, k + 1))
    rhs = poisson_sf(k, rate)
    assert lhs == pytest.approx(rhs, rel=1e-6, abs=1e-12)
