"""Multistep randomization: correctness, step economics, fill-in guard."""

import numpy as np
import pytest

from repro import (
    MRR,
    TRR,
    MultistepRandomizationSolver,
    RewardStructure,
    StandardRandomizationSolver,
)
from repro.exceptions import TruncationError
from repro.models import birth_death, random_ctmc
from tests.conftest import exact_two_state_ua


class TestCorrectness:
    def test_two_state(self, two_state):
        model, rewards, *_ = two_state
        times = [0.5, 10.0, 1000.0]
        sol = MultistepRandomizationSolver().solve(model, rewards, TRR,
                                                   times, eps=1e-11)
        assert np.allclose(sol.values, exact_two_state_ua(times), atol=1e-10)

    def test_matches_sr(self, random_irreducible):
        rewards = RewardStructure.indicator(15, [4])
        times = [1.0, 50.0]
        ref = StandardRandomizationSolver().solve(random_irreducible,
                                                  rewards, TRR, times,
                                                  eps=1e-13)
        sol = MultistepRandomizationSolver().solve(random_irreducible,
                                                   rewards, TRR, times,
                                                   eps=1e-11)
        assert np.allclose(sol.values, ref.values, atol=1e-10)

    def test_absorbing(self, erlang3):
        from scipy import stats
        model, rewards = erlang3
        sol = MultistepRandomizationSolver().solve(model, rewards, TRR,
                                                   [1.5], eps=1e-11)
        assert sol.values[0] == pytest.approx(
            stats.gamma.cdf(1.5, a=3, scale=0.5), abs=1e-10)


class TestEconomics:
    def test_fewer_steps_than_sr_for_large_t(self, two_state):
        model, rewards, *_ = two_state
        t = [1e4]
        sr = StandardRandomizationSolver().solve(model, rewards, TRR, t,
                                                 eps=1e-11)
        ms = MultistepRandomizationSolver().solve(model, rewards, TRR, t,
                                                  eps=1e-11)
        # SR pays Λt ≈ 1.1e5 steps; multistep pays the window + log skips.
        assert ms.steps[0] < sr.steps[0] / 20
        assert ms.stats["matrix_multiplications"] > 0

    def test_fill_in_tracked(self):
        model = birth_death(40, 1.0, 1.5)
        rewards = RewardStructure.indicator(40, [39])
        sol = MultistepRandomizationSolver().solve(model, rewards, TRR,
                                                   [500.0], eps=1e-10)
        # A tridiagonal P densifies as it is squared: fill-in must show.
        assert sol.stats["max_power_nnz"] > sol.stats["base_nnz"]

    def test_fill_in_guard_raises(self):
        model = random_ctmc(60, density=0.1, seed=8)
        rewards = RewardStructure.indicator(60, [1])
        solver = MultistepRandomizationSolver(max_power_nnz=200)
        with pytest.raises(TruncationError, match="fill-in"):
            solver.solve(model, rewards, TRR, [1e4], eps=1e-10)


class TestGuards:
    def test_mrr_unsupported(self, two_state):
        model, rewards, *_ = two_state
        with pytest.raises(ValueError, match="TRR only"):
            MultistepRandomizationSolver().solve(model, rewards, MRR,
                                                 [1.0], eps=1e-9)

    def test_zero_rewards(self, two_state):
        model, _, *_ = two_state
        rewards = RewardStructure.indicator(2, [])
        sol = MultistepRandomizationSolver().solve(model, rewards, TRR,
                                                   [1.0], eps=1e-9)
        assert sol.values[0] == 0.0
