"""ODE baseline: agreement with closed forms and stiff stability."""

import numpy as np
import pytest

from repro import MRR, TRR, OdeSolver
from tests.conftest import (
    exact_two_state_mrr,
    exact_two_state_ua,
    make_stiff_model,
)


class TestOde:
    def test_two_state_trr(self, two_state):
        model, rewards, *_ = two_state
        times = [0.1, 1.0, 20.0]
        sol = OdeSolver().solve(model, rewards, TRR, times)
        assert np.allclose(sol.values, exact_two_state_ua(times), atol=1e-8)

    def test_two_state_mrr(self, two_state):
        model, rewards, *_ = two_state
        times = [0.1, 1.0, 20.0]
        sol = OdeSolver().solve(model, rewards, MRR, times)
        assert np.allclose(sol.values, exact_two_state_mrr(times), atol=1e-8)

    def test_unsorted_times(self, two_state):
        model, rewards, *_ = two_state
        times = [5.0, 0.2, 1.0]
        sol = OdeSolver().solve(model, rewards, TRR, times)
        assert np.allclose(sol.values, exact_two_state_ua(times), atol=1e-8)

    def test_stiff_model(self):
        model, rewards = make_stiff_model()
        sol = OdeSolver().solve(model, rewards, TRR, [1000.0])
        # Cross-check against standard randomization (guaranteed error).
        from repro import StandardRandomizationSolver
        ref = StandardRandomizationSolver().solve(model, rewards, TRR,
                                                  [1000.0], eps=1e-12)
        assert sol.values[0] == pytest.approx(ref.values[0], abs=1e-8)

    def test_erlang(self, erlang3):
        from scipy import stats
        model, rewards = erlang3
        sol = OdeSolver().solve(model, rewards, TRR, [0.5, 2.0])
        exact = stats.gamma.cdf([0.5, 2.0], a=3, scale=0.5)
        assert np.allclose(sol.values, exact, atol=1e-8)
