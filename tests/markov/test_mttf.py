"""Mean time to absorption: closed forms and UR consistency."""

import numpy as np
import pytest

from repro import CTMC, TRR, RRLSolver
from repro.exceptions import ModelError
from repro.markov.mttf import mean_time_to_absorption
from repro.models import Raid5Params, build_raid5_reliability, erlang_chain


class TestClosedForms:
    def test_single_exponential(self):
        model = CTMC.from_transitions(2, [(0, 1, 0.25)])
        at = mean_time_to_absorption(model)
        assert at.mean == pytest.approx(4.0)
        assert at.second_moment == pytest.approx(32.0)  # 2/λ²
        assert at.cv2 == pytest.approx(1.0)

    def test_erlang(self):
        model, _ = erlang_chain(4, 2.0)
        at = mean_time_to_absorption(model)
        assert at.mean == pytest.approx(2.0)        # k/λ
        assert at.variance == pytest.approx(1.0)    # k/λ²
        assert at.cv2 == pytest.approx(0.25)        # 1/k

    def test_competing_exponentials(self):
        # 0 -> a at 1, 0 -> b at 3: T ~ Exp(4) regardless of destination.
        model = CTMC.from_transitions(3, [(0, 1, 1.0), (0, 2, 3.0)])
        at = mean_time_to_absorption(model)
        assert at.mean == pytest.approx(0.25)

    def test_initial_distribution_weighting(self):
        model = CTMC.from_transitions(
            3, [(0, 2, 1.0), (1, 2, 2.0)],
            initial=np.array([0.5, 0.5, 0.0]))
        at = mean_time_to_absorption(model)
        assert at.mean == pytest.approx(0.5 * 1.0 + 0.5 * 0.5)


class TestGuards:
    def test_no_absorbing_raises(self, two_state):
        model, *_ = two_state
        with pytest.raises(ModelError, match="no absorbing"):
            mean_time_to_absorption(model)

    def test_unreachable_absorption_raises(self):
        # 0 <-> 1 recurrent; 2 -> 3 absorbing but start mass is on 0.
        model = CTMC.from_transitions(
            4, [(0, 1, 1.0), (1, 0, 1.0), (2, 3, 1.0)], initial=0)
        with pytest.raises(ModelError, match="not certain"):
            mean_time_to_absorption(model)


class TestConsistencyWithUr:
    def test_raid_ur_matches_exponential_approx(self):
        """cv² ≈ 1 for the RAID failure time, so UR(t) ≈ 1 − e^{−t/MTTF}."""
        model, rewards, _ = build_raid5_reliability(Raid5Params(groups=5))
        at = mean_time_to_absorption(model)
        assert at.cv2 == pytest.approx(1.0, abs=0.01)
        t = at.mean / 100.0
        ur = RRLSolver().solve(model, rewards, TRR, [t], eps=1e-12).values[0]
        assert ur == pytest.approx(1.0 - np.exp(-t / at.mean), rel=2e-2)
