"""Standard randomization solver: closed forms, budgets, edge cases."""

import numpy as np
import pytest

from repro import MRR, TRR, RewardStructure, StandardRandomizationSolver
from repro.exceptions import TruncationError
from repro.markov.rewards import Measure
from repro.markov.standard import sr_required_steps
from tests.conftest import exact_two_state_mrr, exact_two_state_ua


class TestAgainstClosedForms:
    def test_two_state_trr(self, two_state):
        model, rewards, fail, repair = two_state
        times = [0.01, 0.3, 2.0, 50.0]
        sol = StandardRandomizationSolver().solve(model, rewards, TRR,
                                                  times, eps=1e-11)
        assert np.allclose(sol.values, exact_two_state_ua(times), atol=1e-11)

    def test_two_state_mrr(self, two_state):
        model, rewards, *_ = two_state
        times = [0.01, 0.3, 2.0, 50.0]
        sol = StandardRandomizationSolver().solve(model, rewards, MRR,
                                                  times, eps=1e-11)
        assert np.allclose(sol.values, exact_two_state_mrr(times), atol=1e-11)

    def test_erlang_absorption(self, erlang3):
        from scipy import stats
        model, rewards = erlang3
        times = [0.1, 0.5, 1.0, 3.0]
        sol = StandardRandomizationSolver().solve(model, rewards, TRR,
                                                  times, eps=1e-12)
        exact = stats.gamma.cdf(times, a=3, scale=0.5)
        assert np.allclose(sol.values, exact, atol=1e-11)

    def test_constant_reward_is_constant(self, uniform_reward_model):
        model, rewards = uniform_reward_model
        sol = StandardRandomizationSolver().solve(model, rewards, TRR,
                                                  [0.5, 5.0, 50.0], eps=1e-12)
        assert np.allclose(sol.values, 2.5, atol=1e-11)
        mol = StandardRandomizationSolver().solve(model, rewards, MRR,
                                                  [0.5, 5.0, 50.0], eps=1e-12)
        assert np.allclose(mol.values, 2.5, atol=1e-11)


class TestWorkAccounting:
    def test_steps_grow_linearly_in_t(self, two_state):
        model, rewards, *_ = two_state
        sol = StandardRandomizationSolver().solve(
            model, rewards, TRR, [1.0, 10.0, 100.0, 1000.0], eps=1e-12)
        s = sol.steps.astype(float)
        # Λt dominates: steps(1000)/steps(100) ≈ 10 within tail slack.
        assert s[3] / s[2] > 6.0

    def test_eps_tightens_steps(self, two_state):
        model, rewards, *_ = two_state
        loose = StandardRandomizationSolver().solve(model, rewards, TRR,
                                                    [5.0], eps=1e-4)
        tight = StandardRandomizationSolver().solve(model, rewards, TRR,
                                                    [5.0], eps=1e-13)
        assert tight.steps[0] > loose.steps[0]

    def test_max_steps_raises(self, two_state):
        model, rewards, *_ = two_state
        solver = StandardRandomizationSolver(max_steps=10)
        with pytest.raises(TruncationError):
            solver.solve(model, rewards, TRR, [1000.0], eps=1e-12)

    def test_required_steps_mrr_minimal(self):
        from repro.markov.poisson import poisson_expected_excess
        n = sr_required_steps(50.0, 1e-9, Measure.MRR)
        assert poisson_expected_excess(50.0, n - 1) <= 1e-9
        assert poisson_expected_excess(50.0, n - 2) > 1e-9


class TestSharedSequenceStepCounts:
    """The docstring promise: the ``d_n`` sequence is shared across all
    requested time points (one pass pays for the largest horizon), yet the
    reported per-``t`` step counts remain the *standalone* counts
    ``sr_required_steps`` predicts — the paper's tables convention. Pinned
    explicitly so the extraction of the stepping loop into the shared
    batch kernel (or any future refactor) cannot silently change it."""

    def test_per_t_steps_match_standalone_counts(self, two_state):
        model, rewards, *_ = two_state
        times = [0.5, 2.0, 10.0, 200.0]
        eps = 1e-10
        for measure in (TRR, MRR):
            sol = StandardRandomizationSolver().solve(model, rewards,
                                                      measure, times, eps)
            lam = model.max_output_rate
            r_max = rewards.max_rate
            for i, t in enumerate(times):
                if measure is TRR:
                    expected = sr_required_steps(lam * t, eps / r_max, TRR)
                else:
                    expected = sr_required_steps(lam * t,
                                                 eps * lam * t / r_max,
                                                 Measure.MRR)
                assert sol.steps[i] == expected - 1, (
                    f"{measure}: t={t} reports {sol.steps[i]} steps, "
                    f"standalone count is {expected - 1}")

    def test_sweep_shares_work_but_reports_standalone(self, two_state):
        model, rewards, *_ = two_state
        eps = 1e-10
        sweep = StandardRandomizationSolver().solve(
            model, rewards, TRR, [1.0, 100.0], eps)
        alone = StandardRandomizationSolver().solve(
            model, rewards, TRR, [1.0], eps)
        # Same standalone count for the small horizon...
        assert sweep.steps[0] == alone.steps[0]
        # ...while the shared pass paid only for the largest horizon.
        assert sweep.stats["shared_steps"] == sweep.steps[-1]
        assert sweep.steps[-1] > sweep.steps[0]
        # And the values are identical to the standalone solve.
        assert sweep.values[0] == pytest.approx(alone.values[0], abs=eps)


class TestEdgeCases:
    def test_zero_rewards_shortcut(self, two_state):
        model, _, *_ = two_state
        rewards = RewardStructure.indicator(2, [])
        sol = StandardRandomizationSolver().solve(model, rewards, TRR,
                                                  [1.0], eps=1e-12)
        assert sol.values[0] == 0.0
        assert sol.steps[0] == 0

    def test_invalid_eps(self, two_state):
        model, rewards, *_ = two_state
        with pytest.raises(ValueError):
            StandardRandomizationSolver().solve(model, rewards, TRR, [1.0],
                                                eps=0.0)

    def test_invalid_times(self, two_state):
        model, rewards, *_ = two_state
        solver = StandardRandomizationSolver()
        with pytest.raises(ValueError):
            solver.solve(model, rewards, TRR, [], eps=1e-9)
        with pytest.raises(ValueError):
            solver.solve(model, rewards, TRR, [-1.0], eps=1e-9)

    def test_unsorted_times_preserved(self, two_state):
        model, rewards, *_ = two_state
        times = [5.0, 0.5, 2.0]
        sol = StandardRandomizationSolver().solve(model, rewards, TRR,
                                                  times, eps=1e-11)
        assert np.allclose(sol.values, exact_two_state_ua(times), atol=1e-10)
        assert sol.value_at(0.5) == sol.values[1]

    def test_absorbing_long_horizon_saturates(self, erlang3):
        model, rewards = erlang3
        sol = StandardRandomizationSolver().solve(model, rewards, TRR,
                                                  [200.0], eps=1e-12)
        assert sol.values[0] == pytest.approx(1.0, abs=1e-10)
