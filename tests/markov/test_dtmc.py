"""DTMC container: validation, stepping, renormalization."""

import numpy as np
import pytest
from scipy import sparse

from repro import DTMC
from repro.exceptions import ModelError


def simple_p():
    return np.array([[0.5, 0.5, 0.0],
                     [0.2, 0.3, 0.5],
                     [0.0, 0.0, 1.0]])


class TestConstruction:
    def test_basic(self):
        d = DTMC(simple_p())
        assert d.n_states == 3
        assert list(d.absorbing_states()) == [2]

    def test_rows_must_be_stochastic(self):
        p = simple_p()
        p[0, 0] = 0.6
        with pytest.raises(ModelError):
            DTMC(p)

    def test_negative_rejected(self):
        p = simple_p()
        p[0, 0], p[0, 1] = -0.1, 1.1
        with pytest.raises(ModelError):
            DTMC(p)

    def test_renormalize_fixes_roundoff(self):
        p = simple_p() * (1.0 + 1e-13)
        d = DTMC(p, renormalize=True)
        sums = np.asarray(d.transition_matrix.sum(axis=1)).ravel()
        assert np.allclose(sums, 1.0, atol=1e-15)

    def test_renormalize_gives_zero_rows_self_loop(self):
        p = sparse.csr_matrix((3, 3))
        d = DTMC(p, renormalize=True)
        assert np.allclose(d.transition_matrix.diagonal(), 1.0)

    def test_bad_initial(self):
        with pytest.raises(ModelError):
            DTMC(simple_p(), initial=np.array([0.5, 0.0, 0.0]))

    def test_labels_mismatch(self):
        with pytest.raises(ModelError):
            DTMC(simple_p(), labels=["x"])


class TestStepping:
    def test_step_matches_dense(self):
        d = DTMC(simple_p())
        pi = np.array([0.2, 0.3, 0.5])
        out = d.step(pi)
        assert np.allclose(out, pi @ simple_p())

    def test_step_preserves_mass(self):
        d = DTMC(simple_p())
        pi = d.initial
        for _ in range(20):
            pi = d.step(pi)
            assert pi.sum() == pytest.approx(1.0, abs=1e-12)

    def test_substochastic_vector_ok(self):
        d = DTMC(simple_p())
        out = d.step(np.array([0.1, 0.0, 0.0]))
        assert out.sum() == pytest.approx(0.1)

    def test_step_n(self):
        d = DTMC(simple_p())
        pi = d.initial
        out3 = d.step_n(pi, 3)
        manual = d.step(d.step(d.step(pi)))
        assert np.allclose(out3, manual)
        assert np.allclose(d.step_n(pi, 0), pi)
        with pytest.raises(ValueError):
            d.step_n(pi, -1)

    def test_absorbing_fixed_point(self):
        d = DTMC(simple_p())
        e2 = np.array([0.0, 0.0, 1.0])
        assert np.allclose(d.step(e2), e2)
