"""TransientSolution container and time-array normalization."""

import numpy as np
import pytest

from repro import TRR
from repro.markov.base import TransientSolution, as_time_array


def make_solution():
    return TransientSolution(
        times=np.array([1.0, 10.0]),
        values=np.array([0.5, 0.7]),
        measure=TRR,
        eps=1e-9,
        steps=np.array([3, 30]),
        method="SR",
        stats={"rate": 2.0},
    )


class TestTransientSolution:
    def test_value_at(self):
        sol = make_solution()
        assert sol.value_at(10.0) == 0.7
        with pytest.raises(KeyError):
            sol.value_at(2.0)

    def test_steps_at(self):
        sol = make_solution()
        assert sol.steps_at(1.0) == 3
        with pytest.raises(KeyError):
            sol.steps_at(99.0)


class TestAsTimeArray:
    def test_scalar(self):
        out = as_time_array(3.0)
        assert out.shape == (1,)

    def test_list(self):
        out = as_time_array([1.0, 2.0])
        assert np.allclose(out, [1.0, 2.0])

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            as_time_array([])

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            as_time_array([1.0, 0.0])
        with pytest.raises(ValueError):
            as_time_array([-2.0])

    def test_rejects_nonfinite(self):
        with pytest.raises(ValueError):
            as_time_array([np.inf])
