"""Reward structures and measure enums."""

import numpy as np
import pytest

from repro import CTMC, MRR, TRR, Measure, RewardStructure
from repro.exceptions import MeasureError


class TestRewardStructure:
    def test_basic(self):
        r = RewardStructure([0.0, 1.0, 2.5])
        assert r.n_states == 3
        assert r.max_rate == 2.5
        assert np.allclose(r.rates, [0.0, 1.0, 2.5])

    def test_negative_rejected(self):
        with pytest.raises(MeasureError):
            RewardStructure([1.0, -0.1])

    def test_nonfinite_rejected(self):
        with pytest.raises(MeasureError):
            RewardStructure([1.0, np.inf])
        with pytest.raises(MeasureError):
            RewardStructure([np.nan])

    def test_2d_rejected(self):
        with pytest.raises(MeasureError):
            RewardStructure(np.ones((2, 2)))

    def test_indicator(self):
        r = RewardStructure.indicator(4, [1, 3])
        assert np.allclose(r.rates, [0, 1, 0, 1])
        with pytest.raises(MeasureError):
            RewardStructure.indicator(4, [4])

    def test_indicator_empty(self):
        r = RewardStructure.indicator(3, [])
        assert r.max_rate == 0.0

    def test_constant(self):
        r = RewardStructure.constant(3, 7.0)
        assert np.allclose(r.rates, 7.0)

    def test_expectation(self):
        r = RewardStructure([1.0, 2.0])
        assert r.expectation(np.array([0.25, 0.75])) == pytest.approx(1.75)

    def test_check_model(self):
        m = CTMC.from_transitions(2, [(0, 1, 1.0), (1, 0, 1.0)])
        RewardStructure.constant(2).check_model(m)  # no raise
        with pytest.raises(MeasureError):
            RewardStructure.constant(3).check_model(m)


class TestMeasureEnum:
    def test_aliases(self):
        assert TRR is Measure.TRR
        assert MRR is Measure.MRR
        assert TRR is not MRR
