"""CTMC container: construction, validation, uniformization, structure."""

import numpy as np
import pytest
from scipy import sparse

from repro import CTMC
from repro.exceptions import ModelError


def simple_q():
    return np.array([[-1.0, 1.0, 0.0],
                     [2.0, -3.0, 1.0],
                     [0.0, 5.0, -5.0]])


class TestConstruction:
    def test_from_dense(self):
        m = CTMC(simple_q())
        assert m.n_states == 3
        assert m.max_output_rate == 5.0
        assert np.allclose(m.output_rates, [1.0, 3.0, 5.0])

    def test_from_sparse(self):
        m = CTMC(sparse.csr_matrix(simple_q()))
        assert m.n_transitions == 4

    def test_fix_diagonal_recomputes(self):
        q = simple_q()
        q[0, 0] = 123.0  # garbage diagonal, should be overwritten
        m = CTMC(q, fix_diagonal=True)
        assert m.output_rates[0] == pytest.approx(1.0)

    def test_validate_diagonal_strict(self):
        q = simple_q()
        q[0, 0] = -2.0  # rows no longer sum to zero
        with pytest.raises(ModelError):
            CTMC(q, fix_diagonal=False)

    def test_negative_rate_rejected(self):
        q = simple_q()
        q[0, 1] = -1.0
        with pytest.raises(ModelError):
            CTMC(q)

    def test_nonsquare_rejected(self):
        with pytest.raises(ModelError):
            CTMC(np.zeros((2, 3)))

    def test_empty_rejected(self):
        with pytest.raises(ModelError):
            CTMC(np.zeros((0, 0)))

    def test_default_initial(self):
        m = CTMC(simple_q())
        assert np.allclose(m.initial, [1.0, 0.0, 0.0])

    def test_bad_initial_rejected(self):
        with pytest.raises(ModelError):
            CTMC(simple_q(), initial=np.array([0.5, 0.2, 0.2]))
        with pytest.raises(ModelError):
            CTMC(simple_q(), initial=np.array([1.5, -0.5, 0.0]))
        with pytest.raises(ModelError):
            CTMC(simple_q(), initial=np.array([1.0, 0.0]))

    def test_labels(self):
        m = CTMC(simple_q(), labels=["a", "b", "c"])
        assert m.labels == ["a", "b", "c"]
        with pytest.raises(ModelError):
            CTMC(simple_q(), labels=["a"])


class TestFromTransitions:
    def test_basic(self):
        m = CTMC.from_transitions(2, [(0, 1, 2.0), (1, 0, 3.0)], initial=1)
        assert m.output_rates[0] == 2.0
        assert np.allclose(m.initial, [0.0, 1.0])

    def test_duplicates_summed(self):
        m = CTMC.from_transitions(2, [(0, 1, 2.0), (0, 1, 1.0), (1, 0, 1.0)])
        assert m.generator[0, 1] == pytest.approx(3.0)

    def test_zero_rate_dropped(self):
        m = CTMC.from_transitions(2, [(0, 1, 1.0), (1, 0, 0.0)])
        assert len(m.absorbing_states()) == 1

    def test_self_loop_rejected(self):
        with pytest.raises(ModelError):
            CTMC.from_transitions(2, [(0, 0, 1.0)])

    def test_out_of_range_rejected(self):
        with pytest.raises(ModelError):
            CTMC.from_transitions(2, [(0, 5, 1.0)])

    def test_negative_rejected(self):
        with pytest.raises(ModelError):
            CTMC.from_transitions(2, [(0, 1, -1.0)])


class TestUniformize:
    def test_transition_matrix(self):
        m = CTMC(simple_q())
        dtmc, rate = m.uniformize()
        assert rate == 5.0
        p = dtmc.transition_matrix.toarray()
        expected = np.eye(3) + simple_q() / 5.0
        assert np.allclose(p, expected)

    def test_custom_rate(self):
        m = CTMC(simple_q())
        dtmc, rate = m.uniformize(10.0)
        assert rate == 10.0
        assert dtmc.transition_matrix[0, 0] == pytest.approx(0.9)

    def test_slack(self):
        m = CTMC(simple_q())
        _, rate = m.uniformize(slack=1.1)
        assert rate == pytest.approx(5.5)

    def test_too_small_rate_rejected(self):
        m = CTMC(simple_q())
        with pytest.raises(ModelError):
            m.uniformize(1.0)

    def test_rows_stochastic(self):
        m = CTMC(simple_q())
        dtmc, _ = m.uniformize()
        sums = np.asarray(dtmc.transition_matrix.sum(axis=1)).ravel()
        assert np.allclose(sums, 1.0)


class TestStructure:
    def test_absorbing_states(self):
        m = CTMC.from_transitions(3, [(0, 1, 1.0), (1, 2, 1.0)])
        assert list(m.absorbing_states()) == [2]

    def test_reachable_from(self):
        m = CTMC.from_transitions(4, [(0, 1, 1.0), (1, 0, 1.0), (2, 3, 1.0),
                                      (3, 2, 1.0)])
        assert list(m.reachable_from([0])) == [0, 1]
        assert list(m.reachable_from([0, 2])) == [0, 1, 2, 3]

    def test_irreducible(self):
        m = CTMC.from_transitions(2, [(0, 1, 1.0), (1, 0, 1.0)])
        assert m.is_irreducible()
        m2 = CTMC.from_transitions(2, [(0, 1, 1.0)])
        assert not m2.is_irreducible()

    def test_restricted_to(self):
        m = CTMC(simple_q())
        sub = m.restricted_to([0, 1])
        assert sub.n_states == 2
        assert sub.generator[1, 0] == pytest.approx(2.0)
        # The 1 -> 2 leak is dropped, so state 1 exits at rate 2 only.
        assert sub.output_rates[1] == pytest.approx(2.0)

    def test_restricted_needs_initial_mass(self):
        m = CTMC(simple_q())  # initial mass all on state 0
        with pytest.raises(ModelError):
            m.restricted_to([1, 2])

    def test_n_transitions_excludes_diagonal(self):
        m = CTMC(simple_q())
        assert m.n_transitions == 4
