"""Randomization with steady-state detection: correctness and capping."""

import numpy as np
import pytest

from repro import (
    MRR,
    TRR,
    RewardStructure,
    StandardRandomizationSolver,
    SteadyStateDetectionSolver,
)
from repro.exceptions import ModelError
from repro.models import birth_death, cyclic_chain, two_state_availability
from tests.conftest import exact_two_state_mrr, exact_two_state_ua


class TestCorrectness:
    def test_two_state_trr(self, two_state):
        model, rewards, *_ = two_state
        times = [0.05, 1.0, 10.0, 1e4]
        sol = SteadyStateDetectionSolver().solve(model, rewards, TRR, times,
                                                 eps=1e-11)
        assert np.allclose(sol.values, exact_two_state_ua(times), atol=1e-11)

    def test_two_state_mrr(self, two_state):
        model, rewards, *_ = two_state
        times = [0.05, 1.0, 10.0, 1e4]
        sol = SteadyStateDetectionSolver().solve(model, rewards, MRR, times,
                                                 eps=1e-11)
        assert np.allclose(sol.values, exact_two_state_mrr(times), atol=1e-10)

    def test_agrees_with_sr_before_detection(self, random_irreducible):
        model = random_irreducible
        rewards = RewardStructure.indicator(model.n_states, [2, 5])
        times = [0.1, 1.0]
        sr = StandardRandomizationSolver().solve(model, rewards, TRR, times,
                                                 eps=1e-13)
        rsd = SteadyStateDetectionSolver().solve(model, rewards, TRR, times,
                                                 eps=1e-11)
        assert np.allclose(sr.values, rsd.values, atol=1e-11)

    def test_long_horizon_hits_stationary(self, random_irreducible):
        from repro.markov.steady_state import stationary_distribution
        model = random_irreducible
        rewards = RewardStructure.indicator(model.n_states, [0])
        sol = SteadyStateDetectionSolver().solve(model, rewards, TRR, [1e6],
                                                 eps=1e-11)
        pi = stationary_distribution(model)
        assert sol.values[0] == pytest.approx(pi[0], abs=1e-10)


class TestCapping:
    def test_steps_saturate(self, two_state):
        model, rewards, *_ = two_state
        sol = SteadyStateDetectionSolver().solve(
            model, rewards, TRR, [1.0, 100.0, 1e4, 1e6], eps=1e-12)
        assert sol.steps[-1] == sol.steps[-2]  # capped at k_ss
        assert sol.stats["k_ss"] is not None
        assert sol.steps[-1] <= sol.stats["k_ss"]

    def test_cheaper_than_sr_for_large_t(self, two_state):
        model, rewards, *_ = two_state
        t = [1e5]
        sr = StandardRandomizationSolver().solve(model, rewards, TRR, t,
                                                 eps=1e-12)
        rsd = SteadyStateDetectionSolver().solve(model, rewards, TRR, t,
                                                 eps=1e-12)
        assert rsd.steps[0] < sr.steps[0] / 100


class TestGuards:
    def test_rejects_reducible(self, erlang3):
        model, rewards = erlang3
        with pytest.raises(ModelError):
            SteadyStateDetectionSolver().solve(model, rewards, TRR, [1.0],
                                               eps=1e-9)

    def test_check_can_be_disabled(self, two_state):
        model, rewards, *_ = two_state
        solver = SteadyStateDetectionSolver(check_irreducible=False)
        sol = solver.solve(model, rewards, TRR, [1.0], eps=1e-9)
        assert sol.values[0] == pytest.approx(exact_two_state_ua(1.0),
                                              abs=1e-9)

    def test_zero_rewards(self, two_state):
        model, _, *_ = two_state
        rewards = RewardStructure.indicator(2, [])
        sol = SteadyStateDetectionSolver().solve(model, rewards, TRR, [1.0],
                                                 eps=1e-9)
        assert sol.values[0] == 0.0

    def test_periodic_uniformization_detects_with_slack(self):
        # The minimal-rate DTMC of a deterministic cycle is periodic: the
        # step distribution never converges. A slack rate restores
        # aperiodicity and detection works.
        model = cyclic_chain(6, 1.0)
        rewards = RewardStructure.indicator(6, [3])
        solver = SteadyStateDetectionSolver(rate=1.3)
        sol = solver.solve(model, rewards, TRR, [1e4], eps=1e-10)
        assert sol.values[0] == pytest.approx(1.0 / 6.0, abs=1e-9)

    def test_birth_death_matches_geometric_tail(self):
        model = birth_death(8, 1.0, 4.0)
        rewards = RewardStructure.indicator(8, [7])
        sol = SteadyStateDetectionSolver().solve(model, rewards, TRR, [1e5],
                                                 eps=1e-12)
        rho = 0.25
        pi = rho ** np.arange(8)
        pi /= pi.sum()
        assert sol.values[0] == pytest.approx(pi[7], rel=1e-6)
