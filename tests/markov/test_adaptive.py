"""Adaptive uniformization: correctness and the slow-start advantage."""

import numpy as np
import pytest

from repro import (
    TRR,
    AdaptiveUniformizationSolver,
    CTMC,
    RewardStructure,
    StandardRandomizationSolver,
)
from tests.conftest import exact_two_state_ua


class TestAdaptive:
    def test_two_state(self, two_state):
        model, rewards, *_ = two_state
        times = [0.1, 1.0, 10.0]
        sol = AdaptiveUniformizationSolver().solve(model, rewards, TRR,
                                                   times, eps=1e-10)
        assert np.allclose(sol.values, exact_two_state_ua(times), atol=1e-9)

    def test_erlang_absorbing(self, erlang3):
        from scipy import stats
        model, rewards = erlang3
        sol = AdaptiveUniformizationSolver().solve(model, rewards, TRR,
                                                   [0.5, 2.0], eps=1e-10)
        exact = stats.gamma.cdf([0.5, 2.0], a=3, scale=0.5)
        assert np.allclose(sol.values, exact, atol=1e-9)

    def test_matches_sr_on_random_chain(self, random_absorbing):
        model = random_absorbing
        rewards = RewardStructure.indicator(model.n_states,
                                            [model.n_states - 1])
        sr = StandardRandomizationSolver().solve(model, rewards, TRR,
                                                 [2.0], eps=1e-12)
        au = AdaptiveUniformizationSolver().solve(model, rewards, TRR,
                                                  [2.0], eps=1e-10)
        assert au.values[0] == pytest.approx(sr.values[0], abs=1e-9)

    def test_slow_start_uses_lower_rates(self):
        # Chain 0 -(0.01)-> 1 -(100)-> 2(absorbing): the adaptive rate
        # sequence must start at the slow rate, not the global maximum.
        model = CTMC.from_transitions(3, [(0, 1, 0.01), (1, 2, 100.0)])
        rewards = RewardStructure.indicator(3, [2])
        sol = AdaptiveUniformizationSolver().solve(model, rewards, TRR,
                                                   [0.5], eps=1e-8)
        rates = sol.stats["adaptive_rates"]
        assert rates[0] == pytest.approx(0.01)
        assert rates.max() == pytest.approx(100.0)
        # Value cross-check: P[absorbed by t] for hypoexponential(0.01,100).
        a, b = 0.01, 100.0
        t = 0.5
        exact = 1.0 - (b * np.exp(-a * t) - a * np.exp(-b * t)) / (b - a)
        assert sol.values[0] == pytest.approx(exact, abs=1e-8)

    def test_fully_absorbed_shortcut(self):
        model = CTMC.from_transitions(2, [(0, 1, 5.0)])
        rewards = RewardStructure.indicator(2, [1])
        sol = AdaptiveUniformizationSolver().solve(model, rewards, TRR,
                                                   [50.0], eps=1e-9)
        assert sol.values[0] == pytest.approx(1.0, abs=1e-9)

    def test_zero_rewards(self, two_state):
        model, _, *_ = two_state
        rewards = RewardStructure.indicator(2, [])
        sol = AdaptiveUniformizationSolver().solve(model, rewards, TRR,
                                                   [1.0], eps=1e-9)
        assert sol.values[0] == 0.0
