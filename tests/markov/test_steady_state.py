"""Stationary solvers: GTH vs sparse LU vs closed forms."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import CTMC
from repro.exceptions import ModelError
from repro.markov.steady_state import gth_solve, stationary_distribution
from repro.models import birth_death, random_ctmc


class TestGth:
    def test_two_state(self):
        q = np.array([[-1.0, 1.0], [10.0, -10.0]])
        pi = gth_solve(q)
        assert np.allclose(pi, [10.0 / 11.0, 1.0 / 11.0])

    def test_birth_death_geometric(self):
        model = birth_death(6, birth=2.0, death=3.0)
        pi = gth_solve(model.generator.toarray())
        rho = 2.0 / 3.0
        expected = rho ** np.arange(6)
        expected /= expected.sum()
        assert np.allclose(pi, expected, rtol=1e-12)

    def test_diagonal_ignored(self):
        q = np.array([[5.0, 1.0], [10.0, 77.0]])  # garbage diagonals
        pi = gth_solve(q)
        assert np.allclose(pi, [10.0 / 11.0, 1.0 / 11.0])

    def test_reducible_raises(self):
        q = np.array([[-1.0, 1.0], [0.0, 0.0]])
        with pytest.raises(ModelError):
            gth_solve(q)

    def test_stiff_rates_stable(self):
        # GTH is subtraction-free: 12 orders of magnitude are fine.
        q = np.array([[-1e-6, 1e-6, 0.0],
                      [1e6, -1e6 - 1e-6, 1e-6],
                      [0.0, 1e6, -1e6]])
        pi = gth_solve(q)
        flow = pi @ q
        np.fill_diagonal(q, 0.0)
        assert np.all(pi > 0.0)
        assert np.allclose(flow, 0.0, atol=1e-12 * np.abs(q).max())


class TestDispatch:
    @pytest.mark.parametrize("method", ["gth", "sparse"])
    def test_methods_agree(self, method, random_irreducible):
        pi = stationary_distribution(random_irreducible, method=method)
        q = random_irreducible.generator
        assert np.allclose(pi @ q, 0.0, atol=1e-10)
        assert pi.sum() == pytest.approx(1.0)

    def test_dtmc_input(self, random_irreducible):
        dtmc, _ = random_irreducible.uniformize(slack=1.1)
        pi_c = stationary_distribution(random_irreducible)
        pi_d = stationary_distribution(dtmc)
        assert np.allclose(pi_c, pi_d, atol=1e-10)

    def test_unknown_method(self, random_irreducible):
        with pytest.raises(ValueError):
            stationary_distribution(random_irreducible, method="magic")

    def test_bad_type(self):
        with pytest.raises(TypeError):
            stationary_distribution(np.eye(2))  # type: ignore[arg-type]

    def test_auto_uses_sparse_for_large(self):
        model = birth_death(1500, 1.0, 2.0)
        pi = stationary_distribution(model)  # must not take O(n^3) forever
        rho = 0.5
        expected = rho ** np.arange(1500)
        expected /= expected.sum()
        assert np.allclose(pi[:50], expected[:50], rtol=1e-8)


@settings(max_examples=25, deadline=None)
@given(n=st.integers(min_value=2, max_value=12),
       seed=st.integers(min_value=0, max_value=10_000))
def test_gth_sparse_agree_property(n, seed):
    """Property: both solvers produce the same stationary vector."""
    model = random_ctmc(n, density=0.5, seed=seed)
    pi_g = stationary_distribution(model, method="gth")
    pi_s = stationary_distribution(model, method="sparse")
    assert np.allclose(pi_g, pi_s, atol=1e-9)
