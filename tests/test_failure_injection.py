"""Failure injection: starve every resource limit and assert the library
fails loudly, with the right exception type, instead of looping or
returning silently-wrong numbers."""

import numpy as np
import pytest

from repro import (
    TRR,
    RegenerativeRandomizationSolver,
    RewardStructure,
    RRLSolver,
    StandardRandomizationSolver,
)
from repro.exceptions import (
    InversionError,
    ModelError,
    ReproError,
    TruncationError,
)
from repro.models import erlang_chain, random_ctmc


class TestStarvedBudgets:
    def test_rrl_max_terms_exhaustion(self, random_irreducible):
        rewards = RewardStructure.indicator(15, [3])
        solver = RRLSolver(max_terms=5)
        with pytest.raises(InversionError):
            solver.solve(random_irreducible, rewards, TRR, [10.0],
                         eps=1e-12)

    def test_rr_inner_step_cap(self, random_irreducible):
        rewards = RewardStructure.indicator(15, [3])
        solver = RegenerativeRandomizationSolver(inner_max_steps=10)
        with pytest.raises(TruncationError):
            solver.solve(random_irreducible, rewards, TRR, [1e4], eps=1e-12)

    def test_sr_step_cap(self, random_irreducible):
        rewards = RewardStructure.indicator(15, [3])
        solver = StandardRandomizationSolver(max_steps=10)
        with pytest.raises(TruncationError):
            solver.solve(random_irreducible, rewards, TRR, [1e4], eps=1e-12)

    def test_every_cap_is_a_repro_error(self, random_irreducible):
        """Callers can catch everything with one except clause."""
        rewards = RewardStructure.indicator(15, [3])
        for solver in (RRLSolver(max_terms=5),
                       RegenerativeRandomizationSolver(inner_max_steps=5),
                       StandardRandomizationSolver(max_steps=5)):
            with pytest.raises(ReproError):
                solver.solve(random_irreducible, rewards, TRR, [1e4],
                             eps=1e-12)


class TestHostileModels:
    def test_erlang_never_regenerates_but_stays_correct(self):
        """A pure chain never revisits r — but every excursion is
        absorbed within 8 steps, so the schedule *exhausts* at the chain
        depth and stays exact with K = 8 for any horizon."""
        from scipy import stats
        model, rewards = erlang_chain(8, 1.0)
        sol = RRLSolver().solve(model, rewards, TRR, [5.0, 500.0],
                                eps=1e-10)
        exact = stats.gamma.cdf([5.0, 500.0], a=8, scale=1.0)
        assert np.allclose(sol.values, exact, atol=1e-10)
        assert np.all(sol.steps == 8)

    def test_near_reducible_chain(self):
        """A chain with a 1e-9-rate bridge between two lobes is legal and
        must not break the truncation selection."""
        trans = [(0, 1, 1.0), (1, 0, 1.0), (2, 3, 1.0), (3, 2, 1.0),
                 (1, 2, 1e-9), (2, 1, 1e-9)]
        from repro import CTMC
        model = CTMC.from_transitions(4, trans, initial=0)
        rewards = RewardStructure.indicator(4, [3])
        sol = RRLSolver().solve(model, rewards, TRR, [1.0], eps=1e-9)
        ref = StandardRandomizationSolver().solve(model, rewards, TRR,
                                                  [1.0], eps=1e-12)
        assert sol.values[0] == pytest.approx(ref.values[0], abs=1e-9)

    def test_huge_rate_spread(self):
        """12 orders of magnitude between rates (stiff): randomization
        family must agree regardless."""
        trans = [(0, 1, 1e-6), (1, 0, 1e6), (1, 2, 1.0), (2, 0, 1e3)]
        from repro import CTMC
        model = CTMC.from_transitions(3, trans, initial=0)
        rewards = RewardStructure.indicator(3, [2])
        ref = StandardRandomizationSolver().solve(model, rewards, TRR,
                                                  [1.0], eps=1e-13)
        sol = RRLSolver().solve(model, rewards, TRR, [1.0], eps=1e-10)
        assert sol.values[0] == pytest.approx(ref.values[0], abs=1e-10)

    def test_reward_on_unreachable_state_is_harmless(self):
        model = random_ctmc(8, density=0.4, seed=3, absorbing=1)
        # State 7 (absorbing) may be unreachable from 0 depending on the
        # draw; either way a reward there must not corrupt anything.
        rewards = RewardStructure.indicator(8, [7])
        sol = RRLSolver().solve(model, rewards, TRR, [1.0], eps=1e-9)
        assert 0.0 <= sol.values[0] <= 1.0

    def test_single_transient_state(self):
        from repro import CTMC
        model = CTMC.from_transitions(2, [(0, 1, 2.0)])
        rewards = RewardStructure.indicator(2, [1])
        sol = RRLSolver().solve(model, rewards, TRR, [0.5], eps=1e-11)
        assert sol.values[0] == pytest.approx(1.0 - np.exp(-1.0), abs=1e-11)


class TestMisuse:
    def test_mismatched_rewards(self, two_state):
        model, _, *_ = two_state
        bad = RewardStructure.constant(5)
        for solver in (RRLSolver(), StandardRandomizationSolver()):
            with pytest.raises(ReproError):
                solver.solve(model, bad, TRR, [1.0], eps=1e-9)

    def test_regenerative_out_of_class(self, erlang3):
        model, rewards = erlang3
        with pytest.raises(ModelError):
            RRLSolver(regenerative=3).solve(model, rewards, TRR, [1.0],
                                            eps=1e-9)
