"""ODE (Chapman–Kolmogorov) baseline solver.

Integrates ``dπ/dt = π Q`` with scipy's stiff BDF integrator. For MRR the
state is augmented with the accumulated reward ``c(t) = ∫_0^t π(τ) r dτ``
(one extra component, ``dc/dt = π r``), so both measures come out of a
single integration.

This solver exists purely as an *independent cross-check* of the
randomization-based methods (it shares no code path with them) and for the
tiny analytical models in the test-suite; it is not a competitor in the
paper's evaluation and makes no guaranteed-error claims — BDF's local error
control is heuristic, which is exactly the weakness randomization methods
avoid (paper, Section 1).
"""

from __future__ import annotations

import numpy as np
from scipy.integrate import solve_ivp

from repro.exceptions import ConvergenceError
from repro.markov.base import TransientSolution, as_time_array
from repro.markov.ctmc import CTMC
from repro.markov.rewards import Measure, RewardStructure
from repro.solvers.registry import SolverSpec, register

__all__ = ["OdeSolver"]


class OdeSolver:
    """Stiff ODE transient solver (cross-validation baseline).

    Parameters
    ----------
    rtol, atol:
        Tolerances handed to ``solve_ivp``; defaults are tight because the
        test-suite compares against methods with ``eps = 1e-12`` budgets.
    method:
        Any ``solve_ivp`` method; BDF by default (dependability models are
        stiff: repair rates exceed failure rates by orders of magnitude).
    """

    method_name = "ODE"

    def __init__(self, rtol: float = 1e-10, atol: float = 1e-12,
                 method: str = "BDF") -> None:
        self._rtol = rtol
        self._atol = atol
        self._method = method

    def solve(self,
              model: CTMC,
              rewards: RewardStructure,
              measure: Measure,
              times: np.ndarray | list[float],
              eps: float = 1e-12) -> TransientSolution:
        """Integrate to every requested time (``eps`` is recorded but the
        actual accuracy is governed by ``rtol``/``atol``)."""
        rewards.check_model(model)
        t_arr = as_time_array(times)
        order = np.argsort(t_arr)
        t_sorted = t_arr[order]

        qt = model.generator.T.tocsr()
        r = rewards.rates
        n = model.n_states

        def rhs(_t: float, y: np.ndarray) -> np.ndarray:
            pi = y[:n]
            out = np.empty_like(y)
            out[:n] = qt @ pi
            out[n] = r @ pi
            return out

        y0 = np.concatenate([model.initial, [0.0]])
        sol = solve_ivp(rhs, (0.0, float(t_sorted[-1])), y0,
                        method=self._method, t_eval=t_sorted,
                        rtol=self._rtol, atol=self._atol)
        if not sol.success:
            raise ConvergenceError(f"solve_ivp failed: {sol.message}")

        vals_sorted = np.empty(t_sorted.size)
        for j in range(t_sorted.size):
            pi = sol.y[:n, j]
            if measure is Measure.TRR:
                vals_sorted[j] = float(r @ pi)
            else:
                vals_sorted[j] = float(sol.y[n, j]) / float(t_sorted[j])
        values = np.empty_like(vals_sorted)
        values[order] = vals_sorted
        return TransientSolution(times=t_arr, values=values, measure=measure,
                                 eps=eps,
                                 steps=np.full(t_arr.size, sol.t.size,
                                               dtype=int),
                                 method=self.method_name,
                                 stats={"rate": model.max_output_rate,
                                        "nfev": sol.nfev,
                                        "njev": getattr(sol, "njev", 0)})


register(SolverSpec(
    name="ODE",
    constructor=OdeSolver,
    summary="Stiff ODE integration baseline (cross-validation, no error "
            "guarantee)",
))
