"""Stationary distribution solvers for irreducible chains.

Two algorithms:

* **GTH elimination** (Grassmann–Taksar–Heyman) — subtraction-free Gaussian
  elimination on the generator; numerically exact to relative precision and
  the reference method, but dense ``O(n^3)``, so reserved for chains up to a
  size threshold.
* **Sparse direct solve** — solve ``π Q = 0, Σπ = 1`` by replacing one
  balance equation with the normalization row and calling SuperLU. This is
  what the RSD baseline uses on the RAID chains (up to ~14k states).

Both accept a :class:`~repro.markov.ctmc.CTMC` or a
:class:`~repro.markov.dtmc.DTMC` (for a DTMC, ``Q = P - I``; for a
uniformized chain the two stationary vectors coincide).
"""

from __future__ import annotations

import numpy as np
from scipy import sparse
from scipy.sparse.linalg import spsolve

from repro.exceptions import ModelError
from repro.markov.ctmc import CTMC
from repro.markov.dtmc import DTMC

__all__ = ["stationary_distribution", "gth_solve"]

_GTH_MAX_STATES = 1200


def gth_solve(generator: np.ndarray) -> np.ndarray:
    """GTH elimination on a dense generator matrix.

    Parameters
    ----------
    generator:
        Dense ``(n, n)`` generator of an irreducible CTMC (or ``P - I`` of
        an irreducible DTMC). The diagonal is ignored — GTH only ever uses
        off-diagonal rates, which is where its subtraction-free stability
        comes from.

    Returns
    -------
    numpy.ndarray
        Stationary probability vector.
    """
    a = np.array(generator, dtype=np.float64)
    n = a.shape[0]
    if a.shape != (n, n):
        raise ModelError("generator must be square")
    np.fill_diagonal(a, 0.0)
    if np.any(a < 0.0):
        raise ModelError("negative off-diagonal rate")
    # Forward elimination: censor state k out of the chain on {0..k}. After
    # the loop, column k above the diagonal holds the censored rates j -> k
    # of the chain restricted to {0..k}, and s_vals[k] the exit rate of k in
    # that censored chain.
    s_vals = np.zeros(n)
    for k in range(n - 1, 0, -1):
        total = a[k, :k].sum()
        if total <= 0.0:
            raise ModelError(
                f"state {k} cannot reach lower-numbered states; "
                "chain not irreducible (or needs reordering)")
        s_vals[k] = total
        a[k, :k] /= total
        # Rank-1 update with only additions/multiplications of positives.
        a[:k, :k] += np.outer(a[:k, k], a[k, :k])
    # Back substitution: flow balance of state k in the censored chain,
    # π_k s_k = Σ_{j<k} π_j ã_{jk}.
    x = np.zeros(n)
    x[0] = 1.0
    for k in range(1, n):
        x[k] = (x[:k] @ a[:k, k]) / s_vals[k]
    total = x.sum()
    return x / total


def _bulk_state(q: sparse.csr_matrix) -> int:
    """Cheap guess of a high-probability state: a few uniformized power
    steps from the uniform vector (finds the bulk of the stationary
    mass, which is where the pinned component must sit to avoid
    overflow in the fixed-component solve)."""
    n = q.shape[0]
    out_rates = -q.diagonal()
    lam = float(out_rates.max())
    if lam <= 0.0:
        return 0
    pt = (q.T.multiply(1.0 / lam)).tocsr()
    pi = np.full(n, 1.0 / n)
    for _ in range(64):
        pi = pi + pt @ pi
        pi /= pi.sum()
    return int(np.argmax(pi))


def _sparse_stationary(q: sparse.csr_matrix) -> np.ndarray:
    """Solve ``π Q = 0`` by pinning one component and renormalizing.

    Setting ``π_j = 1`` for a bulk state ``j`` and dropping that state's
    balance equation leaves a sparse nonsingular system that SuperLU
    factorizes without fill-in trouble (a dense normalization row turned
    the 20k-state RAID solve into a ~1-minute factorization; this form
    takes milliseconds). Pinning a *bulk* state keeps the remaining
    components ``<= O(1/π_j)``, avoiding overflow on strongly skewed
    chains; if the first pin still misfires numerically, states 0 and
    ``n-1`` are tried as fallbacks.
    """
    n = q.shape[0]
    qt = q.T.tocsc()
    candidates = [_bulk_state(q), 0, n - 1]
    last_error: Exception | None = None
    for j in dict.fromkeys(candidates):
        keep = np.arange(n) != j
        a = qt[keep][:, keep]
        b = -np.asarray(qt[keep][:, [j]].todense()).ravel()
        with np.errstate(all="ignore"):
            # COLAMD (the default) orders the *pinned* system well — 3.9s
            # on the G=40 RAID vs 26s with MMD_AT_PLUS_A and 56s for the
            # dense-normalization-row formulation it replaced.
            x = spsolve(a.tocsc(), b)
        x = np.asarray(x).ravel()
        if np.any(~np.isfinite(x)):
            last_error = ModelError(
                f"fixed-component solve at state {j} produced non-finite "
                "entries")
            continue
        pi = np.empty(n)
        pi[keep] = x
        pi[j] = 1.0
        pi = np.clip(pi, 0.0, None)
        s = pi.sum()
        if not np.isfinite(s) or s <= 0.0:
            last_error = ModelError("stationary solve produced a zero or "
                                    "non-finite vector")
            continue
        pi /= s
        # Residual check guards against a silently-singular factorization.
        resid = float(np.abs(pi @ q).max())
        scale = float(np.abs(q.data).max()) if q.nnz else 1.0
        if resid <= 1e-8 * scale:
            return pi
        last_error = ModelError(f"stationary residual {resid} too large")
    raise ModelError(
        "sparse stationary solve failed (chain not irreducible, or "
        f"numerically degenerate): {last_error}")


def stationary_distribution(chain: CTMC | DTMC, *,
                            method: str = "auto") -> np.ndarray:
    """Stationary distribution of an irreducible CTMC or DTMC.

    Parameters
    ----------
    chain:
        The chain. A DTMC is converted through ``Q = P - I``.
    method:
        ``"gth"`` (dense, exact), ``"sparse"`` (SuperLU), or ``"auto"``
        (GTH below ``1200`` states, sparse above).
    """
    if isinstance(chain, CTMC):
        q = chain.generator
    elif isinstance(chain, DTMC):
        n = chain.n_states
        q = (chain.transition_matrix - sparse.eye(n, format="csr")).tocsr()
    else:
        raise TypeError("chain must be a CTMC or DTMC")
    n = q.shape[0]
    if method == "auto":
        method = "gth" if n <= _GTH_MAX_STATES else "sparse"
    if method == "gth":
        return gth_solve(q.toarray())
    if method == "sparse":
        return _sparse_stationary(q)
    raise ValueError(f"unknown method {method!r}")
