"""Poisson probability machinery (Fox–Glynn algorithm and tail bounds).

Randomization-based transient solvers weight DTMC step distributions with
Poisson probabilities ``e^{-Λt} (Λt)^n / n!``. For the large ``Λt`` regime
of dependability models (the paper's RAID examples reach ``Λt ≈ 4.4e6``)
naive evaluation under- and over-flows, so we implement the classic
Fox–Glynn scheme [Fox & Glynn, CACM 1988]:

* locate the mode ``m = floor(Λt)``,
* recur multiplicatively left and right from the mode with on-the-fly
  rescaling,
* find left/right truncation points ``L, R`` with
  ``sum_{n<L} + sum_{n>R} <= eps``,
* normalize the retained window.

Tail quantities needed by the truncation analysis of regenerative
randomization (survival function, right-tail quantile, expected excess
``E[(N-K)^+]``) are computed through the regularized incomplete gamma
function, which is numerically exact in the tiny-tail regime.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import special

from repro.exceptions import TruncationError

__all__ = [
    "FoxGlynnWindow",
    "fox_glynn",
    "poisson_sf",
    "poisson_cdf",
    "poisson_right_quantile",
    "poisson_left_quantile",
    "poisson_expected_excess",
]

# Largest window we are ever willing to materialize. Λt beyond ~2e8 would
# need more memory than a workstation has; the RRL method exists precisely
# to avoid that regime for the original chain.
_MAX_WINDOW = 300_000_000


@dataclass(frozen=True)
class FoxGlynnWindow:
    """Truncated, normalized Poisson pmf window.

    Attributes
    ----------
    left:
        First retained step index ``L`` (inclusive).
    right:
        Last retained step index ``R`` (inclusive).
    weights:
        ``weights[j]`` is the (normalized) probability of ``L + j`` events.
    rate:
        The Poisson rate ``Λt`` the window was built for.
    mass_dropped:
        Upper bound on the probability mass outside ``[L, R]`` *before*
        normalization (the truncation error the caller asked for).
    """

    left: int
    right: int
    weights: np.ndarray
    rate: float
    mass_dropped: float

    @property
    def size(self) -> int:
        """Number of retained steps (``R - L + 1``)."""
        return self.right - self.left + 1

    def pmf(self, n: int) -> float:
        """Normalized weight of ``n`` events (0.0 outside the window)."""
        if n < self.left or n > self.right:
            return 0.0
        return float(self.weights[n - self.left])


def poisson_sf(n: np.ndarray | int, rate: float) -> np.ndarray | float:
    """Survival function ``P[N > n]`` for ``N ~ Poisson(rate)``.

    Uses ``P[N > n] = P(n+1, rate)`` (regularized *lower* incomplete gamma),
    which evaluates tiny right tails to full relative accuracy — essential
    for the ``eps = 1e-12`` budgets used throughout the paper.
    """
    n_arr = np.asarray(n, dtype=np.float64)
    out = special.gammainc(n_arr + 1.0, rate)
    if np.isscalar(n) or n_arr.ndim == 0:
        return float(out)
    return out


def poisson_cdf(n: np.ndarray | int, rate: float) -> np.ndarray | float:
    """Cumulative probability ``P[N <= n]`` via the upper incomplete gamma."""
    n_arr = np.asarray(n, dtype=np.float64)
    out = special.gammaincc(n_arr + 1.0, rate)
    if np.isscalar(n) or n_arr.ndim == 0:
        return float(out)
    return out


def poisson_right_quantile(rate: float, eps: float) -> int:
    """Smallest ``R`` with ``P[N > R] <= eps`` for ``N ~ Poisson(rate)``.

    This is exactly the number of steps (minus one) standard randomization
    must perform for a reward bounded by 1; the paper's Tables 1–2 "SR"
    columns are ``R + 1``-style counts derived from it.
    """
    if eps <= 0.0:
        raise ValueError("eps must be positive")
    if rate < 0.0:
        raise ValueError("rate must be non-negative")
    if rate == 0.0:
        return 0
    # Normal-approximation bracket, then bisect on the exact sf.
    sigma = np.sqrt(rate)
    lo = int(rate)
    hi = int(np.ceil(rate + (8.0 + 1.5 * np.sqrt(-np.log10(eps))) * sigma + 30.0))
    while poisson_sf(hi, rate) > eps:
        lo = hi
        hi *= 2
        if hi > _MAX_WINDOW:
            raise TruncationError(
                f"Poisson right quantile exceeds {_MAX_WINDOW} for rate={rate}, eps={eps}"
            )
    while lo < hi:
        mid = (lo + hi) // 2
        if poisson_sf(mid, rate) <= eps:
            hi = mid
        else:
            lo = mid + 1
    return lo


def poisson_left_quantile(rate: float, eps: float) -> int:
    """Largest ``L`` with ``P[N < L] <= eps`` (0 when no mass can be cut)."""
    if eps <= 0.0:
        raise ValueError("eps must be positive")
    if rate <= 0.0:
        return 0
    if poisson_cdf(0, rate) > eps:
        return 0
    lo, hi = 0, int(rate) + 1
    # Find largest L with cdf(L-1) <= eps  <=>  P[N < L] <= eps.
    while lo < hi:
        mid = (lo + hi + 1) // 2
        if poisson_cdf(mid - 1, rate) <= eps:
            lo = mid
        else:
            hi = mid - 1
    return lo


def poisson_expected_excess(rate: float, k: int) -> float:
    """``E[(N - k)^+]`` for ``N ~ Poisson(rate)``.

    Used by the regenerative-randomization truncation bound: the chance of
    ever taking ``K+1`` consecutive non-regenerative steps is bounded by
    ``a(K) * E[(N(t) - K)^+]`` (union bound over restart epochs).

    Identity: ``E[(N-k)^+] = rate * P[N >= k] - k * P[N >= k+1]``.
    """
    if k < 0:
        return float(rate - k)
    p_ge_k = poisson_sf(k - 1, rate)  # P[N > k-1] = P[N >= k]
    p_ge_k1 = poisson_sf(k, rate)
    val = rate * p_ge_k - k * p_ge_k1
    # Guard against the tiny negative values cancellation can produce when
    # both tails underflow to ~0.
    return max(float(val), 0.0)


def fox_glynn(rate: float, eps: float) -> FoxGlynnWindow:
    """Compute a normalized Poisson pmf window covering mass ``>= 1 - eps``.

    Parameters
    ----------
    rate:
        Poisson rate ``Λt`` (non-negative).
    eps:
        Total truncation budget; the mass outside ``[L, R]`` is ``<= eps``.

    Returns
    -------
    FoxGlynnWindow

    Notes
    -----
    The weights are computed from the mode outward with the pure
    multiplicative recursions ``p(n+1) = p(n) * rate/(n+1)`` and
    ``p(n-1) = p(n) * n/rate`` starting from an *unnormalized* mode weight
    of 1, then normalized by their sum. This never over/underflows inside
    the retained window because the retained weights are all within a
    factor ``~1/eps`` of the mode.
    """
    if eps <= 0.0 or eps >= 1.0:
        raise ValueError("eps must lie in (0, 1)")
    if rate < 0.0:
        raise ValueError("rate must be non-negative")
    if rate == 0.0:
        return FoxGlynnWindow(left=0, right=0,
                              weights=np.array([1.0]), rate=0.0,
                              mass_dropped=0.0)

    left = poisson_left_quantile(rate, eps / 2.0)
    right = poisson_right_quantile(rate, eps / 2.0)
    if right - left + 1 > _MAX_WINDOW:
        raise TruncationError(
            f"Fox-Glynn window of size {right - left + 1} exceeds limit")

    mode = int(rate)
    mode = min(max(mode, left), right)
    size = right - left + 1
    w = np.empty(size, dtype=np.float64)
    w[mode - left] = 1.0
    # Right of the mode: p(n+1) = p(n) * rate / (n+1)
    if mode < right:
        n = np.arange(mode + 1, right + 1, dtype=np.float64)
        w[mode - left + 1:] = np.cumprod(rate / n)
    # Left of the mode: p(n-1) = p(n) * n / rate
    if mode > left:
        n = np.arange(mode, left, -1, dtype=np.float64)
        w[mode - left - 1::-1] = np.cumprod(n / rate)
    total = w.sum()
    w /= total
    return FoxGlynnWindow(left=left, right=right, weights=w, rate=rate,
                          mass_dropped=eps)
