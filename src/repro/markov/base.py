"""Common result container and interface for transient solvers.

Every solver in this package — SR, RSD, adaptive uniformization, the ODE
baseline, and the paper's RR/RRL — exposes::

    solve(model, rewards, measure, times, eps) -> TransientSolution

so the experiment harness can swap methods freely. Work statistics (step
counts, abscissa counts, wall time) ride along in the solution, because the
paper's evaluation compares exactly those.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Protocol

import numpy as np

from repro.markov.ctmc import CTMC
from repro.markov.rewards import Measure, RewardStructure

__all__ = ["TransientSolution", "TransientSolver"]


@dataclass
class TransientSolution:
    """Result of a transient analysis run.

    Attributes
    ----------
    times:
        The evaluation time points, in the order requested.
    values:
        Measure values, one per time point.
    measure:
        Which measure (:class:`~repro.markov.rewards.Measure`) was computed.
    eps:
        Error budget the values honour (total, as in the paper).
    steps:
        Number of DTMC steps charged to each time point. For randomization
        methods this is the dominant cost and is what the paper's
        Tables 1–2 report.
    method:
        Short method tag (``"SR"``, ``"RSD"``, ``"RR"``, ``"RRL"``, ...).
    stats:
        Free-form per-run diagnostics (e.g. number of Laplace abscissae,
        truncation parameters K and L, detection step).
    """

    times: np.ndarray
    values: np.ndarray
    measure: Measure
    eps: float
    steps: np.ndarray
    method: str
    stats: dict[str, Any] = field(default_factory=dict)

    def value_at(self, t: float) -> float:
        """Value for time point ``t`` (must be one of the requested times)."""
        idx = np.flatnonzero(np.isclose(self.times, t, rtol=1e-12, atol=0.0))
        if idx.size == 0:
            raise KeyError(f"time {t} was not among the solved time points")
        return float(self.values[idx[0]])

    def steps_at(self, t: float) -> int:
        """Step count charged to time point ``t``."""
        idx = np.flatnonzero(np.isclose(self.times, t, rtol=1e-12, atol=0.0))
        if idx.size == 0:
            raise KeyError(f"time {t} was not among the solved time points")
        return int(self.steps[idx[0]])


class TransientSolver(Protocol):
    """Structural interface shared by all transient solvers."""

    def solve(self,
              model: CTMC,
              rewards: RewardStructure,
              measure: Measure,
              times: "np.ndarray | list[float]",
              eps: float) -> TransientSolution:
        """Compute ``measure`` at each time in ``times`` with error ``eps``."""
        ...  # pragma: no cover


def as_time_array(times: "np.ndarray | list[float] | float") -> np.ndarray:
    """Normalize a times argument to a positive 1-D float array."""
    arr = np.atleast_1d(np.asarray(times, dtype=np.float64))
    if arr.ndim != 1 or arr.size == 0:
        raise ValueError("times must be a non-empty 1-D sequence")
    if np.any(arr <= 0.0) or not np.all(np.isfinite(arr)):
        raise ValueError("times must be positive and finite")
    return arr
