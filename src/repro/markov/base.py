"""Common result container and interface for transient solvers.

Every solver in this package — SR, RSD, adaptive uniformization, the ODE
baseline, and the paper's RR/RRL — exposes::

    solve(model, rewards, measure, times, eps) -> TransientSolution

so the experiment harness can swap methods freely. Work statistics (step
counts, abscissa counts, wall time) ride along in the solution, because the
paper's evaluation compares exactly those.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Protocol

import numpy as np

from repro.markov.ctmc import CTMC
from repro.markov.rewards import Measure, RewardStructure

__all__ = ["SolveCell", "TransientSolution", "TransientSolver"]


@dataclass(frozen=True)
class SolveCell:
    """One fusable unit of work against an already-built model.

    The solver-layer currency of the fusion planner
    (:mod:`repro.batch.planner`): cells sharing a model (and method) can be
    handed together to a solver's ``solve_fused`` so they share one
    uniformization kernel and one stepping pass. Deliberately minimal — a
    cell is everything ``solve`` takes *except* the model.
    """

    rewards: RewardStructure
    measure: Measure
    times: tuple[float, ...]
    eps: float = 1e-12


@dataclass
class TransientSolution:
    """Result of a transient analysis run.

    Attributes
    ----------
    times:
        The evaluation time points, in the order requested.
    values:
        Measure values, one per time point.
    measure:
        Which measure (:class:`~repro.markov.rewards.Measure`) was computed.
    eps:
        Error budget the values honour (total, as in the paper).
    steps:
        Number of DTMC steps charged to each time point. For randomization
        methods this is the dominant cost and is what the paper's
        Tables 1–2 report.
    method:
        Short method tag (``"SR"``, ``"RSD"``, ``"RR"``, ``"RRL"``, ...).
    stats:
        Per-run diagnostics (e.g. number of Laplace abscissae, truncation
        parameters K and L, detection step). The schema is unified across
        solvers:

        * ``rate`` — **every** solver reports the randomization rate ``Λ``
          it worked with (for the ODE baseline and AU, which have no fixed
          ``Λ``, this is the model's maximum output rate — the minimal
          valid uniformization rate the other methods would use);
        * ``shared_steps`` — **SR only**: the length (minus the free
          ``n = 0`` term) of the ``d_n`` sequence actually stepped, which
          is shared across the solve's time points and therefore can
          exceed any single entry of ``steps``;
        * ``fused_width`` — present **only** on solutions produced by a
          fused multi-cell pass (``solve_fused``): the number of cells
          that shared the stepping, ``>= 2``. Absent on ordinary solves.
        * ``transformation_steps`` — **RR/RRL only**: DTMC steps the
          schedule transformation charged to *this* solve. With a
          :class:`~repro.core.schedule_cache.ScheduleCache` injected a
          warm cell may charge 0 (the prefix was paid by an earlier
          cell); values and per-``t`` ``steps`` are bit-identical either
          way.
        * ``schedule_cache_hit`` / ``transformation_steps_reused`` —
          present **only** when a schedule cache was used (RR/RRL via
          the planner, or ``solve(..., schedule_cache=...)`` directly):
          whether this solve reused a cached transformation, and how
          many already-paid steps it inherited.

        Everything else (``k_ss``, ``K``/``L``, ``n_abscissae``, ...) is
        solver-specific and documented on the solver.
    """

    times: np.ndarray
    values: np.ndarray
    measure: Measure
    eps: float
    steps: np.ndarray
    method: str
    stats: dict[str, Any] = field(default_factory=dict)

    def value_at(self, t: float) -> float:
        """Value for time point ``t`` (must be one of the requested times)."""
        idx = np.flatnonzero(np.isclose(self.times, t, rtol=1e-12, atol=0.0))
        if idx.size == 0:
            raise KeyError(f"time {t} was not among the solved time points")
        return float(self.values[idx[0]])

    def steps_at(self, t: float) -> int:
        """Step count charged to time point ``t``."""
        idx = np.flatnonzero(np.isclose(self.times, t, rtol=1e-12, atol=0.0))
        if idx.size == 0:
            raise KeyError(f"time {t} was not among the solved time points")
        return int(self.steps[idx[0]])


class TransientSolver(Protocol):
    """Structural interface shared by all transient solvers."""

    def solve(self,
              model: CTMC,
              rewards: RewardStructure,
              measure: Measure,
              times: "np.ndarray | list[float]",
              eps: float) -> TransientSolution:
        """Compute ``measure`` at each time in ``times`` with error ``eps``."""
        ...  # pragma: no cover


def as_time_array(times: "np.ndarray | list[float] | float") -> np.ndarray:
    """Normalize a times argument to a positive 1-D float array."""
    arr = np.atleast_1d(np.asarray(times, dtype=np.float64))
    if arr.ndim != 1 or arr.size == 0:
        raise ValueError("times must be a non-empty 1-D sequence")
    if np.any(arr <= 0.0) or not np.all(np.isfinite(arr)):
        raise ValueError("times must be positive and finite")
    return arr
