"""Standard randomization (uniformization) transient solver — ``SR``.

The classic method [Reibman & Trivedi 1988]: randomize the CTMC with rate
``Λ >= max_i -Q[i,i]`` and expand

    TRR(t) = Σ_n  e^{-Λt} (Λt)^n / n!  ·  d_n,          d_n = (π P^n) r

truncating the Poisson series so the discarded mass contributes at most
``eps / r_max``. For the interval measure, using
``∫_0^t e^{-Λτ}(Λτ)^n/n! dτ = P[N(Λt) > n] / Λ`` gives

    MRR(t) = (1/(Λt)) Σ_n  P[N(Λt) > n]  ·  d_n,

with truncation error ``r_max · E[(N(Λt)-N-1)^+] / (Λt)``.

The solver shares the ``d_n`` sequence across all requested time points, so
a sweep over ``t ∈ {1, 10, ..., 1e5}`` pays only for the largest horizon —
the per-``t`` *step counts* reported in the solution are nevertheless the
standalone counts the paper's tables show (what SR would need for that ``t``
alone).

Numerical stability is inherited from the randomization construction: only
non-negative quantities are added, so the result error is exactly the
truncation budget (paper, Section 1).
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.batch.kernel import (
    UniformizationKernel,
    ensure_model_kernel,
    shared_poisson_tail,
)
from repro.exceptions import TruncationError
from repro.markov.base import SolveCell, TransientSolution, as_time_array
from repro.markov.ctmc import CTMC
from repro.markov.poisson import (
    poisson_expected_excess,
    poisson_right_quantile,
)
from repro.markov.rewards import Measure, RewardStructure
from repro.solvers.registry import SolverSpec, register

__all__ = ["StandardRandomizationSolver", "sr_required_steps"]

_MAX_STEPS_DEFAULT = 50_000_000


def sr_required_steps(rate_time: float, eps_rel: float,
                      measure: Measure) -> int:
    """Number of DTMC steps SR needs for one time point.

    Parameters
    ----------
    rate_time:
        ``Λ t``.
    eps_rel:
        Error budget already divided by ``r_max`` (and multiplied by
        ``Λt`` for MRR, see below).
    measure:
        TRR uses the plain right tail; MRR uses the expected-excess tail
        ``E[(N - N_max)^+] <= eps_rel`` with ``eps_rel = eps·Λt/r_max``.
    """
    if measure is Measure.TRR:
        return poisson_right_quantile(rate_time, eps_rel) + 1
    # MRR: find smallest N with E[(N(Λt)-N)^+] <= eps_rel by bisection.
    lo = 0
    hi = max(8, int(rate_time) + 8)
    while poisson_expected_excess(rate_time, hi) > eps_rel:
        lo = hi
        hi *= 2
        if hi > 4 * _MAX_STEPS_DEFAULT:
            raise TruncationError("MRR truncation point exceeds hard limit")
    while lo < hi:
        mid = (lo + hi) // 2
        if poisson_expected_excess(rate_time, mid) <= eps_rel:
            hi = mid
        else:
            lo = mid + 1
    return lo + 1


def _sr_terms(t_arr: np.ndarray, rate: float, eps: float, r_max: float,
              measure: Measure) -> np.ndarray:
    """Per-time series lengths (the step count the paper tabulates is one
    less, since the ``n = 0`` term is free)."""
    terms = np.empty(t_arr.size, dtype=np.int64)
    for i, t in enumerate(t_arr):
        lam_t = rate * t
        if measure is Measure.TRR:
            terms[i] = sr_required_steps(lam_t, eps / r_max, measure)
        else:
            terms[i] = sr_required_steps(lam_t, eps * lam_t / r_max, measure)
    return terms


def _sr_values(kernel: UniformizationKernel, d: np.ndarray,
               t_arr: np.ndarray, terms: np.ndarray, rate: float,
               eps: float, r_max: float, measure: Measure) -> np.ndarray:
    """Poisson-weight a ``d_n`` sequence into per-time measure values."""
    values = np.empty(t_arr.size, dtype=np.float64)
    for i, t in enumerate(t_arr):
        lam_t = rate * t
        n_i = int(terms[i])
        if measure is Measure.TRR:
            window = kernel.window(t, eps / r_max)
            hi = min(window.right + 1, n_i)
            w = window.weights[: hi - window.left]
            values[i] = float(w @ d[window.left: hi])
        else:
            # Process-wide LRU: grid cells sharing a (Λt, n) key reuse
            # one tail array instead of each redoing the poisson_sf
            # sweep (bit-identical — the cache stores exactly the array
            # the inline call produced).
            tails = shared_poisson_tail(lam_t, n_i)
            values[i] = float(tails @ d[:n_i]) / lam_t
    return values


class StandardRandomizationSolver:
    """Transient solver using standard randomization (the paper's ``SR``).

    Parameters
    ----------
    rate:
        Randomization rate ``Λ``; defaults to the model's maximum output
        rate (the minimal valid choice, which the paper uses).
    max_steps:
        Hard cap on the number of DTMC steps; exceeded horizons raise
        :class:`~repro.exceptions.TruncationError` rather than looping for
        hours — SR at ``Λt ≈ 4.4e6`` is exactly the pathology the paper's
        method removes, and the benchmark harness treats the raise as
        "off the chart".
    """

    method_name = "SR"

    def __init__(self, rate: float | None = None,
                 max_steps: int = _MAX_STEPS_DEFAULT) -> None:
        self._rate = rate
        self._max_steps = int(max_steps)

    def solve(self,
              model: CTMC,
              rewards: RewardStructure,
              measure: Measure,
              times: np.ndarray | list[float],
              eps: float = 1e-12,
              *,
              kernel: UniformizationKernel | None = None
              ) -> TransientSolution:
        """Compute the measure at every time point with total error ``eps``.

        ``kernel`` may be a pre-built (cached/shared) kernel from
        ``UniformizationKernel.from_model(model)``; results are
        bit-identical to letting the solver build its own.
        """
        rewards.check_model(model)
        t_arr = as_time_array(times)
        if eps <= 0.0:
            raise ValueError("eps must be positive")
        kernel, dtmc, rate = ensure_model_kernel(model, kernel, self._rate)
        r_max = rewards.max_rate
        if r_max == 0.0:
            # All rewards zero: the measure is identically zero.
            zeros = np.zeros_like(t_arr)
            return TransientSolution(times=t_arr, values=zeros,
                                     measure=measure, eps=eps,
                                     steps=np.zeros(t_arr.size, dtype=int),
                                     method=self.method_name,
                                     stats={"rate": rate})

        terms = _sr_terms(t_arr, rate, eps, r_max, measure)
        n_max = int(terms.max())
        if n_max > self._max_steps:
            raise TruncationError(
                f"SR needs {n_max} steps (> max_steps={self._max_steps}); "
                "use RR/RRL for this horizon")

        # Shared reward sequence d_n = (π P^n) r, n = 0..n_max-1, stepped
        # through the shared uniformization kernel.
        d = kernel.reward_sequence(dtmc.initial, rewards.rates, n_max)
        values = _sr_values(kernel, d, t_arr, terms, rate, eps, r_max,
                            measure)
        return TransientSolution(times=t_arr, values=values, measure=measure,
                                 eps=eps, steps=terms - 1,
                                 method=self.method_name,
                                 stats={"rate": rate,
                                        "shared_steps": n_max - 1})

    def solve_fused(self,
                    model: CTMC,
                    cells: Sequence[SolveCell],
                    *,
                    kernel: UniformizationKernel | None = None
                    ) -> list[TransientSolution]:
        """Solve several cells against one model in a single stacked pass.

        All cells share one kernel and one ``d_n`` stepping sweep (to the
        largest horizon any cell needs) via
        :meth:`~repro.batch.kernel.UniformizationKernel.reward_sequences`;
        cell ``j``'s solution is bit-for-bit identical to
        ``solve(model, cells[j].rewards, ...)`` on its own, except that
        ``stats`` gains ``fused_width`` and ``shared_steps`` reflects the
        group-wide sweep. Raises
        :class:`~repro.exceptions.TruncationError` when *any* cell exceeds
        ``max_steps`` (callers wanting per-cell failure isolation fall
        back to per-cell ``solve``).
        """
        cells = list(cells)
        if not cells:
            return []
        kernel, dtmc, rate = ensure_model_kernel(model, kernel, self._rate)
        width = len(cells)
        results: list[TransientSolution | None] = [None] * width
        live: list[tuple[int, np.ndarray, np.ndarray, SolveCell, float]] = []
        for idx, cell in enumerate(cells):
            cell.rewards.check_model(model)
            t_arr = as_time_array(cell.times)
            if cell.eps <= 0.0:
                raise ValueError("eps must be positive")
            r_max = cell.rewards.max_rate
            if r_max == 0.0:
                results[idx] = TransientSolution(
                    times=t_arr, values=np.zeros_like(t_arr),
                    measure=cell.measure, eps=cell.eps,
                    steps=np.zeros(t_arr.size, dtype=int),
                    method=self.method_name,
                    stats={"rate": rate, "fused_width": width})
                continue
            terms = _sr_terms(t_arr, rate, cell.eps, r_max, cell.measure)
            if int(terms.max()) > self._max_steps:
                raise TruncationError(
                    f"SR cell needs {int(terms.max())} steps "
                    f"(> max_steps={self._max_steps}); "
                    "use RR/RRL for this horizon")
            live.append((idx, t_arr, terms, cell, r_max))
        if live:
            n_max = max(int(entry[2].max()) for entry in live)
            stack = np.column_stack([entry[3].rewards.rates
                                     for entry in live])
            d = kernel.reward_sequences(dtmc.initial, stack, n_max)
            for j, (idx, t_arr, terms, cell, r_max) in enumerate(live):
                # Contiguous copy: the weighting dots must see the same
                # memory layout as the single-cell path (strided BLAS
                # dots can round differently).
                d_col = np.ascontiguousarray(d[:, j])
                values = _sr_values(kernel, d_col, t_arr, terms, rate,
                                    cell.eps, r_max, cell.measure)
                results[idx] = TransientSolution(
                    times=t_arr, values=values, measure=cell.measure,
                    eps=cell.eps, steps=terms - 1,
                    method=self.method_name,
                    stats={"rate": rate, "shared_steps": n_max - 1,
                           "fused_width": width})
        return results  # type: ignore[return-value]


register(SolverSpec(
    name="SR",
    constructor=StandardRandomizationSolver,
    summary="Standard randomization (uniformization) — the classic "
            "O(Λt) comparator",
    kernel_aware=True,
    stack_fusable=True,
    predict_steps=sr_required_steps,
    step_budget_kwarg="max_steps",
))
