"""Adaptive uniformization — ``AU`` (extension baseline).

Adaptive uniformization [van Moorsel & Sanders 1994] randomizes step ``n``
with the *active* rate ``Λ_n = max{ output rate of states reachable in n
steps }`` instead of the global maximum. The jump-count process is then a
pure birth process with rates ``Λ_0, Λ_1, ...`` rather than a Poisson
process, which pays off when the chain starts in a slow region (small
mission times in the paper's discussion, Section 1).

Our implementation computes the birth-process count probabilities
``β_n(t) = P[N_b(t) = n]`` by *uniformizing the birth process itself* with
``Λ* = max_n Λ_n`` — the birth chain is a line graph, so stepping its
(bidiagonal) DTMC costs O(n) per step and inherits randomization's
stability; no hypoexponential cancellation issues arise.

The solver is included as the "related work" comparator the paper cites
(it is not in the paper's tables) and as an ablation subject: it beats SR
when the initial state is slow, and collapses to SR once the active set
saturates.
"""

from __future__ import annotations

import numpy as np

from repro.batch.kernel import UniformizationKernel, shared_fox_glynn
from repro.exceptions import ModelError, TruncationError
from repro.markov.base import TransientSolution, as_time_array
from repro.markov.ctmc import CTMC
from repro.markov.rewards import Measure, RewardStructure
from repro.solvers.registry import SolverSpec, register

__all__ = ["AdaptiveUniformizationSolver"]

_MAX_STEPS_DEFAULT = 5_000_000


def _birth_count_distribution(rates: np.ndarray, t: float,
                              eps: float) -> np.ndarray:
    """``β_n(t)`` for a pure birth process with per-level rates ``rates``.

    Level ``len(rates)`` (reached after all listed births) is absorbing;
    the returned vector has length ``len(rates) + 1`` and sums to 1 within
    the Fox–Glynn truncation budget ``eps``.
    """
    m = rates.size
    lam_star = float(rates.max()) if m else 1.0
    if lam_star <= 0.0:
        out = np.zeros(m + 1)
        out[0] = 1.0
        return out
    window = shared_fox_glynn(lam_star * t, eps)
    beta = np.zeros(m + 1)
    v = np.zeros(m + 1)
    v[0] = 1.0
    stay = np.empty(m + 1)
    stay[:m] = 1.0 - rates / lam_star
    stay[m] = 1.0
    move = rates / lam_star
    for n in range(window.right + 1):
        if n >= window.left:
            beta += window.weights[n - window.left] * v
        if n < window.right:
            # One step of the bidiagonal birth DTMC: v' = v*stay + shift.
            v_next = v * stay
            v_next[1:] += v[:-1] * move
            v = v_next
    return beta


class AdaptiveUniformizationSolver:
    """Transient TRR/MRR solver by adaptive uniformization.

    Parameters
    ----------
    max_steps:
        Hard cap on the number of adaptive steps.

    Notes
    -----
    ``MRR`` is computed from the identity
    ``t·MRR(t) = Σ_n d_n ∫_0^t β_n(τ)dτ`` with the integral evaluated by
    the same birth-process randomization applied to the cumulative chain
    (``∫_0^t β_n = E[time spent in level n]``), obtained by stepping the
    birth DTMC once more with Poisson *tail* weights.
    """

    method_name = "AU"

    def __init__(self, max_steps: int = _MAX_STEPS_DEFAULT) -> None:
        self._max_steps = int(max_steps)

    def solve(self,
              model: CTMC,
              rewards: RewardStructure,
              measure: Measure,
              times: np.ndarray | list[float],
              eps: float = 1e-12,
              *,
              kernel: UniformizationKernel | None = None
              ) -> TransientSolution:
        """Compute the measure at each time point with total error ``eps``.

        ``kernel`` may be any pre-built kernel carrying the model's
        generator (``from_generator`` or ``from_model``): adaptive
        stepping only uses ``Q``, so a fixed-rate kernel shared with the
        other solvers works here too, bit-identically.
        """
        rewards.check_model(model)
        t_arr = as_time_array(times)
        if eps <= 0.0:
            raise ValueError("eps must be positive")
        r = rewards.rates
        r_max = rewards.max_rate
        lam_global = model.max_output_rate
        if r_max == 0.0:
            zeros = np.zeros_like(t_arr)
            return TransientSolution(times=t_arr, values=zeros,
                                     measure=measure, eps=eps,
                                     steps=np.zeros(t_arr.size, dtype=int),
                                     method=self.method_name,
                                     stats={"rate": lam_global})

        if kernel is None:
            kernel = UniformizationKernel.from_generator(model)
        elif not kernel.has_generator or kernel.n_states != model.n_states:
            raise ModelError(
                "injected kernel must carry this model's generator")
        out_rates = model.output_rates
        t_max = float(t_arr.max())

        # Adaptive stepping: maintain the conditional distribution given
        # n births, with per-step rate = max output rate over the support.
        active = model.initial > 0.0
        rates_seq: list[float] = []
        d_seq: list[float] = []
        cond = model.initial.copy()
        n_cap = self._max_steps
        # Upper bound on steps needed: the global-rate Poisson quantile for
        # the largest horizon (adaptive never needs more than SR).
        from repro.markov.poisson import poisson_right_quantile
        budget = poisson_right_quantile(lam_global * t_max,
                                        eps / (2.0 * r_max)) + 1
        if budget > n_cap:
            raise TruncationError(
                f"adaptive uniformization would need {budget} steps")

        for n in range(budget):
            d_seq.append(float(r @ cond))
            lam_n = float(out_rates[active].max()) if active.any() else 0.0
            if lam_n == 0.0:
                # Fully absorbed: the distribution no longer changes.
                rates_seq.append(0.0)
                break
            rates_seq.append(lam_n)
            # Conditional step with rate lam_n: cond' = cond (I + Q/lam_n).
            cond = kernel.step_rate(cond, lam_n)
            cond = np.clip(cond, 0.0, None)
            s = cond.sum()
            if s <= 0.0:
                break
            cond /= s
            active = cond > 0.0
        d = np.asarray(d_seq)
        lam_arr = np.asarray(rates_seq)

        values = np.empty(t_arr.size)
        steps = np.empty(t_arr.size, dtype=np.int64)
        absorbed = lam_arr.size and lam_arr[-1] == 0.0
        for i, t in enumerate(t_arr):
            if absorbed and lam_arr.size == 1:
                values[i] = d[0]
                steps[i] = 1
                continue
            rates_t = lam_arr[lam_arr > 0.0]
            beta = _birth_count_distribution(rates_t, float(t),
                                             eps / (2.0 * r_max))
            if measure is Measure.TRR:
                m = min(beta.size, d.size)
                values[i] = float(beta[:m] @ d[:m])
            else:
                # Expected holding time in level n over [0, t]:
                # h_n = E[∫ 1{N_b=n}] ; computed from β via h_n =
                # (β-survival)/rate using h_n = P[reach n by t]/λ_n −
                # (tail corrections); we integrate numerically instead,
                # with Simpson on a fine grid — β is smooth in t.
                grid = np.linspace(0.0, float(t), 129)
                acc = np.zeros(min(beta.size, d.size))
                vals = np.empty((grid.size, acc.size))
                for gi, tau in enumerate(grid):
                    if tau == 0.0:
                        b0 = np.zeros(acc.size)
                        b0[0] = 1.0
                        vals[gi] = b0
                    else:
                        b = _birth_count_distribution(
                            rates_t, float(tau), eps / (2.0 * r_max))
                        vals[gi] = b[:acc.size]
                from scipy.integrate import simpson
                h = simpson(vals, x=grid, axis=0)
                values[i] = float(h @ d[:acc.size]) / float(t)
            # Per-horizon cost: levels the birth process can actually
            # reach by time t (the adaptive analogue of SR's quantile).
            if rates_t.size:
                from repro.markov.poisson import poisson_right_quantile
                reach = poisson_right_quantile(
                    float(rates_t.max()) * float(t),
                    eps / (2.0 * r_max)) + 1
                steps[i] = min(lam_arr.size, reach)
            else:
                steps[i] = 0
        return TransientSolution(times=t_arr, values=values, measure=measure,
                                 eps=eps, steps=steps,
                                 method=self.method_name,
                                 stats={"rate": lam_global,
                                        "adaptive_rates": lam_arr,
                                        "budget": budget})


register(SolverSpec(
    name="AU",
    constructor=AdaptiveUniformizationSolver,
    summary="Adaptive uniformization (per-step re-randomization at the "
            "active rate)",
    kernel_aware=True,
))
