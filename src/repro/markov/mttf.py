"""Mean time to failure / absorption (companion measures to UR(t)).

For a chain with absorbing failure states, the mean time to absorption
from the initial distribution solves the sparse linear system

    Q_SS · m = −1        (restricted to the transient class S),
    MTTF = π(0)|_S · m,

the classic dependability companion to the unreliability transient: when
``UR(t) ≈ 1 − e^{−t/MTTF}`` the two are consistent, and the test-suite
checks that RRL's UR matches the exponential approximation in the
rare-event regime. Higher moments come from the same factorization
(``E[T^k] = k! · π(0) (−Q_SS)^{-k} 1``), giving the squared coefficient
of variation used to judge how exponential the failure time really is.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.sparse.linalg import splu

from repro.exceptions import ModelError
from repro.markov.ctmc import CTMC

__all__ = ["AbsorptionTime", "mean_time_to_absorption"]


@dataclass(frozen=True)
class AbsorptionTime:
    """First and second moments of the time to absorption.

    Attributes
    ----------
    mean:
        ``E[T]`` — the MTTF when the absorbing states model failure.
    second_moment:
        ``E[T²]``.
    """

    mean: float
    second_moment: float

    @property
    def variance(self) -> float:
        """``Var[T]``."""
        return self.second_moment - self.mean ** 2

    @property
    def cv2(self) -> float:
        """Squared coefficient of variation (1.0 for an exponential)."""
        if self.mean == 0.0:
            return 0.0
        return self.variance / self.mean ** 2


def mean_time_to_absorption(model: CTMC) -> AbsorptionTime:
    """Mean (and second moment) of the time to reach an absorbing state.

    Raises :class:`~repro.exceptions.ModelError` when the model has no
    absorbing states or absorption is not certain from the initial
    distribution (a transient state that cannot reach any absorbing
    state makes the expectation infinite).
    """
    absorbing = model.absorbing_states()
    if absorbing.size == 0:
        raise ModelError("model has no absorbing states")
    n = model.n_states
    mask = np.ones(n, dtype=bool)
    mask[absorbing] = False
    trans_idx = np.flatnonzero(mask)
    if trans_idx.size == 0:
        return AbsorptionTime(mean=0.0, second_moment=0.0)

    # Absorption must be reachable from every transient state that
    # carries initial mass (otherwise E[T] = ∞).
    reach_any = np.zeros(n, dtype=bool)
    # Work on the reversed graph: states reaching the absorbing set.
    rev = model.generator.T.tocsr()
    stack = [int(a) for a in absorbing]
    reach_any[absorbing] = True
    indptr, indices, data = rev.indptr, rev.indices, rev.data
    while stack:
        i = stack.pop()
        for k in range(indptr[i], indptr[i + 1]):
            j = indices[k]
            if data[k] > 0.0 and j != i and not reach_any[j]:
                reach_any[j] = True
                stack.append(int(j))
    init_support = np.flatnonzero(model.initial > 0.0)
    if not np.all(reach_any[init_support]):
        raise ModelError(
            "absorption is not certain from the initial distribution; "
            "the mean time to absorption is infinite")

    q_ss = model.generator[trans_idx][:, trans_idx].tocsc()
    lu = splu(q_ss)
    ones = np.ones(trans_idx.size)
    m1 = lu.solve(-ones)                # E[T | start at i]
    m2 = lu.solve(-2.0 * m1)            # E[T² | start at i]
    pi0 = model.initial[trans_idx]
    return AbsorptionTime(mean=float(pi0 @ m1),
                          second_moment=float(pi0 @ m2))
