"""Markov-chain substrate: CTMC/DTMC containers, randomization solvers,
Poisson (Fox–Glynn) machinery, steady-state solvers and baselines.

The solvers in this subpackage are the *comparators* used in the paper's
evaluation (standard randomization ``SR``, randomization with steady-state
detection ``RSD``) plus supporting numerics. The paper's own contribution
lives in :mod:`repro.core`.
"""

from repro.markov.ctmc import CTMC
from repro.markov.dtmc import DTMC
from repro.markov.rewards import RewardStructure, Measure, TRR, MRR
from repro.markov.poisson import (
    FoxGlynnWindow,
    fox_glynn,
    poisson_sf,
    poisson_right_quantile,
    poisson_expected_excess,
)
from repro.markov.standard import StandardRandomizationSolver
from repro.markov.rsd import SteadyStateDetectionSolver
from repro.markov.steady_state import stationary_distribution
from repro.markov.ode import OdeSolver
from repro.markov.adaptive import AdaptiveUniformizationSolver
from repro.markov.multistep import MultistepRandomizationSolver
from repro.markov.mttf import AbsorptionTime, mean_time_to_absorption

__all__ = [
    "CTMC",
    "DTMC",
    "RewardStructure",
    "Measure",
    "TRR",
    "MRR",
    "FoxGlynnWindow",
    "fox_glynn",
    "poisson_sf",
    "poisson_right_quantile",
    "poisson_expected_excess",
    "StandardRandomizationSolver",
    "SteadyStateDetectionSolver",
    "stationary_distribution",
    "OdeSolver",
    "AdaptiveUniformizationSolver",
    "MultistepRandomizationSolver",
    "AbsorptionTime",
    "mean_time_to_absorption",
]
