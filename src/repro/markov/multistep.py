"""Multistep randomization — the Reibman–Trivedi variant (paper §1).

For large ``Λt`` the Poisson weights concentrate in a window of width
``O(√(Λt))`` around ``Λt``; the ``L ≈ Λt`` steps needed just to *reach*
that window dominate SR's cost. Multistep replaces them by ``O(log L)``
squarings/multiplications with powers of the randomized matrix:

    π_L = π · P^L,   P^L built from the binary expansion of L,

then sums the window with ordinary steps. The catch — the very reason
the paper dismisses it — is **fill-in**: powers of a sparse transition
matrix densify, so memory/time per multiplication grow toward ``n²``
while plain SR keeps the original sparsity forever. This implementation
is faithful to that trade-off: it tracks the densification and refuses
(with :class:`~repro.exceptions.TruncationError`) past a configurable
nnz budget rather than silently thrashing; the ablation benchmark
measures exactly this blow-up.

Only the instant-of-time measure is supported (the interval measure
needs every ``d_n``, which defeats step-skipping).
"""

from __future__ import annotations

import numpy as np
from scipy import sparse

from repro.batch.kernel import UniformizationKernel, ensure_model_kernel
from repro.exceptions import TruncationError
from repro.markov.base import TransientSolution, as_time_array
from repro.markov.ctmc import CTMC
from repro.markov.rewards import Measure, RewardStructure
from repro.solvers.registry import SolverSpec, register

__all__ = ["MultistepRandomizationSolver"]


class MultistepRandomizationSolver:
    """Transient TRR solver using multistep (power-skipping) randomization.

    Parameters
    ----------
    rate:
        Randomization rate; defaults to the model's maximum output rate.
    max_power_nnz:
        Abort when any accumulated matrix power exceeds this many stored
        nonzeros (fill-in guard). Defaults to 5 million (~80 MB).
    """

    method_name = "MS"

    def __init__(self, rate: float | None = None,
                 max_power_nnz: int = 5_000_000) -> None:
        self._rate = rate
        self._max_power_nnz = int(max_power_nnz)

    def _skip_to(self, p: sparse.csr_matrix, pi: np.ndarray,
                 skip: int) -> tuple[np.ndarray, int, int]:
        """Compute ``pi P^skip`` by binary powering.

        Returns ``(vector, matrix_multiplications, max_nnz_seen)``.
        """
        matmuls = 0
        max_nnz = p.nnz
        power = p
        out = pi
        k = skip
        while k:
            if k & 1:
                out = power.T @ out
            k >>= 1
            if k:
                power = (power @ power).tocsr()
                power.eliminate_zeros()
                matmuls += 1
                max_nnz = max(max_nnz, power.nnz)
                if power.nnz > self._max_power_nnz:
                    raise TruncationError(
                        f"multistep fill-in: P^(2^j) reached {power.nnz} "
                        f"nonzeros (> {self._max_power_nnz}); this is the "
                        "drawback the paper cites for the method")
        return np.asarray(out).ravel(), matmuls, max_nnz

    def solve(self,
              model: CTMC,
              rewards: RewardStructure,
              measure: Measure,
              times: np.ndarray | list[float],
              eps: float = 1e-12,
              *,
              kernel: UniformizationKernel | None = None
              ) -> TransientSolution:
        """Compute TRR at every time point with total error ``eps``.

        ``kernel`` may be a pre-built (cached/shared) kernel from
        ``UniformizationKernel.from_model(model)``; results are
        bit-identical to letting the solver build its own.
        """
        if measure is not Measure.TRR:
            raise ValueError("multistep randomization supports TRR only")
        rewards.check_model(model)
        t_arr = as_time_array(times)
        if eps <= 0.0:
            raise ValueError("eps must be positive")
        kernel, dtmc, rate = ensure_model_kernel(model, kernel, self._rate)
        r_max = rewards.max_rate
        if r_max == 0.0:
            return TransientSolution(
                times=t_arr, values=np.zeros_like(t_arr), measure=measure,
                eps=eps, steps=np.zeros(t_arr.size, dtype=int),
                method=self.method_name, stats={"rate": rate})

        p = dtmc.transition_matrix
        r = rewards.rates
        values = np.empty(t_arr.size)
        steps = np.empty(t_arr.size, dtype=np.int64)
        total_matmuls = 0
        worst_nnz = p.nnz
        for i, t in enumerate(t_arr):
            window = kernel.window(t, eps / r_max)
            pi, matmuls, max_nnz = self._skip_to(p, dtmc.initial.copy(),
                                                 window.left)
            total_matmuls += matmuls
            worst_nnz = max(worst_nnz, max_nnz)
            acc = 0.0
            for j in range(window.size):
                acc += window.weights[j] * float(r @ pi)
                if j + 1 < window.size:
                    pi = kernel.step(pi)
            values[i] = acc
            # Cost metric: window steps + log-many (dense-ish) matmuls.
            steps[i] = window.size - 1 + matmuls
        return TransientSolution(
            times=t_arr, values=values, measure=measure, eps=eps,
            steps=steps, method=self.method_name,
            stats={"rate": rate,
                   "matrix_multiplications": total_matmuls,
                   "max_power_nnz": worst_nnz,
                   "base_nnz": p.nnz})


register(SolverSpec(
    name="MS",
    constructor=MultistepRandomizationSolver,
    summary="Multistep (power-skipping) randomization for TRR",
    kernel_aware=True,
))
