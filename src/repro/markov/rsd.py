"""Randomization with steady-state detection — ``RSD``.

For an *irreducible* model the randomized DTMC distribution ``π_n = π P^n``
converges to the stationary vector ``π_∞``; once ``‖π_n − π_∞‖₁ <= δ`` all
later reward terms ``d_m = π_m r`` are within ``r_max·δ`` of ``d_∞ = π_∞ r``
(the map ``x ↦ xP`` is an L1 contraction), so the Poisson series can be cut
at the detection step ``k_ss`` and closed with the exact tail weight:

    TRR(t) ≈ Σ_{n<k_ss} pois(n; Λt) d_n + P[N >= k_ss] · d_∞
    MRR(t) ≈ (1/(Λt)) [ Σ_{n<k_ss} P[N>n] d_n + E[(N−k_ss)^+] · d_∞ ]

This is the spirit of Sericola's stationarity-detection method with error
bounds [Sericola, IEEE ToC 1999], the ``RSD`` comparator of the paper's
Table 1 / Figure 3: its step count grows like standard randomization for
small ``t`` and saturates at ``k_ss`` for large ``t``.

Error budget: ``eps/2`` for Poisson truncation below ``k_ss`` plus
``δ = eps/(2 r_max)`` for the detection substitution.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.batch.kernel import UniformizationKernel, ensure_model_kernel
from repro.exceptions import ModelError, TruncationError
from repro.markov.base import SolveCell, TransientSolution, as_time_array
from repro.markov.ctmc import CTMC
from repro.markov.poisson import (
    poisson_expected_excess,
    poisson_sf,
)
from repro.markov.rewards import Measure, RewardStructure
from repro.markov.standard import sr_required_steps
from repro.markov.steady_state import stationary_distribution
from repro.solvers.registry import SolverSpec, register

__all__ = ["SteadyStateDetectionSolver"]

_MAX_STEPS_DEFAULT = 50_000_000


def _rsd_requirements(t_arr: np.ndarray, rate: float, eps: float,
                      r_max: float, measure: Measure) -> np.ndarray:
    """Standalone per-t step requirements at the eps/2 truncation budget."""
    req = np.empty(t_arr.size, dtype=np.int64)
    for i, t in enumerate(t_arr):
        lam_t = rate * t
        if measure is Measure.TRR:
            req[i] = sr_required_steps(lam_t, eps / (2.0 * r_max),
                                       Measure.TRR)
        else:
            req[i] = sr_required_steps(lam_t, eps * lam_t / (2.0 * r_max),
                                       Measure.MRR)
    return req


def _rsd_values(kernel: UniformizationKernel, d: np.ndarray,
                k_ss: int | None, req: np.ndarray, t_arr: np.ndarray,
                rate: float, eps: float, r_max: float, d_inf: float,
                measure: Measure) -> tuple[np.ndarray, np.ndarray]:
    """Weight a detection-truncated ``d_n`` prefix into (values, steps)."""
    n_have = d.size
    values = np.empty(t_arr.size, dtype=np.float64)
    steps = np.empty(t_arr.size, dtype=np.int64)
    for i, t in enumerate(t_arr):
        lam_t = rate * t
        cut = int(min(req[i], n_have))
        # Report matrix-vector products (the n = 0 term is free), the
        # convention of the paper's tables.
        steps[i] = cut - 1
        if measure is Measure.TRR:
            window = kernel.window(t, eps / (2.0 * r_max))
            hi = min(window.right + 1, cut)
            acc = 0.0
            if hi > window.left:
                w = window.weights[: hi - window.left]
                acc = float(w @ d[window.left: hi])
            if k_ss is not None and cut == k_ss and req[i] > k_ss:
                acc += float(poisson_sf(cut - 1, lam_t)) * d_inf
            values[i] = acc
        else:
            tails = poisson_sf(np.arange(cut, dtype=np.float64), lam_t)
            acc = float(tails @ d[:cut])
            if k_ss is not None and cut == k_ss and req[i] > k_ss:
                acc += poisson_expected_excess(lam_t, cut) * d_inf
            values[i] = acc / lam_t
    return values, steps


class _FusedCellState:
    """Mutable per-cell bookkeeping for the fused detection sweep."""

    __slots__ = ("idx", "cell", "t_arr", "r", "r_max", "d_inf", "delta",
                 "req", "n_budget", "d_list", "k_ss", "done")


class SteadyStateDetectionSolver:
    """Transient solver with steady-state detection (the paper's ``RSD``).

    Parameters
    ----------
    rate:
        Randomization rate; defaults to the model's maximum output rate.
    max_steps:
        Hard cap on DTMC steps before declaring failure.
    check_irreducible:
        Verify irreducibility up front (the method is only sound for
        ``A = 0`` models). Disable only when the caller guarantees it.
    """

    method_name = "RSD"

    def __init__(self, rate: float | None = None,
                 max_steps: int = _MAX_STEPS_DEFAULT,
                 check_irreducible: bool = True) -> None:
        self._rate = rate
        self._max_steps = int(max_steps)
        self._check_irreducible = check_irreducible

    def solve(self,
              model: CTMC,
              rewards: RewardStructure,
              measure: Measure,
              times: np.ndarray | list[float],
              eps: float = 1e-12,
              *,
              kernel: UniformizationKernel | None = None
              ) -> TransientSolution:
        """Compute the measure at every time point with total error ``eps``.

        ``kernel`` may be a pre-built (cached/shared) kernel from
        ``UniformizationKernel.from_model(model)``; results are
        bit-identical to letting the solver build its own.
        """
        rewards.check_model(model)
        t_arr = as_time_array(times)
        if eps <= 0.0:
            raise ValueError("eps must be positive")
        if self._check_irreducible and not model.is_irreducible():
            raise ModelError(
                "steady-state detection requires an irreducible model")

        kernel, dtmc, rate = ensure_model_kernel(model, kernel, self._rate)
        r = rewards.rates
        r_max = rewards.max_rate
        if r_max == 0.0:
            zeros = np.zeros_like(t_arr)
            return TransientSolution(times=t_arr, values=zeros,
                                     measure=measure, eps=eps,
                                     steps=np.zeros(t_arr.size, dtype=int),
                                     method=self.method_name,
                                     stats={"rate": rate, "k_ss": 0})

        pi_inf = stationary_distribution(dtmc)
        d_inf = float(r @ pi_inf)
        delta = eps / (2.0 * r_max)

        req = _rsd_requirements(t_arr, rate, eps, r_max, measure)
        n_budget = int(req.max())
        if n_budget > self._max_steps:
            raise TruncationError(
                f"RSD would need {n_budget} steps before any detection")

        # Step until detection or until the largest horizon is served.
        d_list: list[float] = []
        pi = dtmc.initial.copy()
        k_ss: int | None = None
        for n in range(n_budget):
            d_list.append(float(r @ pi))
            if float(np.abs(pi - pi_inf).sum()) <= delta:
                k_ss = n + 1  # d_n for n >= k_ss replaced by d_inf
                break
            if n + 1 < n_budget:
                pi = kernel.step(pi)
        d = np.asarray(d_list)

        values, steps = _rsd_values(kernel, d, k_ss, req, t_arr, rate, eps,
                                    r_max, d_inf, measure)
        return TransientSolution(times=t_arr, values=values, measure=measure,
                                 eps=eps, steps=steps,
                                 method=self.method_name,
                                 stats={"rate": rate,
                                        "k_ss": k_ss,
                                        "d_inf": d_inf,
                                        "detection_delta": delta})

    def solve_fused(self,
                    model: CTMC,
                    cells: Sequence[SolveCell],
                    *,
                    kernel: UniformizationKernel | None = None
                    ) -> list[TransientSolution]:
        """Solve several cells against one model in one detection sweep.

        The randomized distribution ``π_n`` is stepped once for the whole
        group; every cell records its own ``d_n = r_j π_n`` prefix, runs
        its own detection test (its ``δ`` depends on its ``eps`` and
        ``r_max``) and is weighted exactly as in :meth:`solve`, so each
        returned solution — values, steps, ``k_ss`` — is bit-for-bit
        identical to the standalone run; ``stats`` gains ``fused_width``.
        Raises :class:`~repro.exceptions.TruncationError` when any cell's
        pre-detection budget exceeds ``max_steps`` (callers wanting
        per-cell failure isolation fall back to per-cell ``solve``).
        """
        cells = list(cells)
        if not cells:
            return []
        if self._check_irreducible and not model.is_irreducible():
            raise ModelError(
                "steady-state detection requires an irreducible model")
        kernel, dtmc, rate = ensure_model_kernel(model, kernel, self._rate)
        width = len(cells)
        results: list[TransientSolution | None] = [None] * width
        pi_inf: np.ndarray | None = None

        live: list[_FusedCellState] = []
        for idx, cell in enumerate(cells):
            cell.rewards.check_model(model)
            t_arr = as_time_array(cell.times)
            if cell.eps <= 0.0:
                raise ValueError("eps must be positive")
            r_max = cell.rewards.max_rate
            if r_max == 0.0:
                results[idx] = TransientSolution(
                    times=t_arr, values=np.zeros_like(t_arr),
                    measure=cell.measure, eps=cell.eps,
                    steps=np.zeros(t_arr.size, dtype=int),
                    method=self.method_name,
                    stats={"rate": rate, "k_ss": 0, "fused_width": width})
                continue
            if pi_inf is None:
                pi_inf = stationary_distribution(dtmc)
            st = _FusedCellState()
            st.idx = idx
            st.cell = cell
            st.t_arr = t_arr
            st.r = cell.rewards.rates
            st.r_max = r_max
            st.d_inf = float(st.r @ pi_inf)
            st.delta = cell.eps / (2.0 * r_max)
            st.req = _rsd_requirements(t_arr, rate, cell.eps, r_max,
                                       cell.measure)
            st.n_budget = int(st.req.max())
            if st.n_budget > self._max_steps:
                raise TruncationError(
                    f"RSD cell would need {st.n_budget} steps before any "
                    "detection")
            st.d_list = []
            st.k_ss = None
            st.done = False
            live.append(st)

        if live:
            n_total = max(st.n_budget for st in live)
            pi = dtmc.initial.copy()
            for n in range(n_total):
                dist: float | None = None
                pending = False
                for st in live:
                    if st.done or n >= st.n_budget:
                        continue
                    st.d_list.append(float(st.r @ pi))
                    if dist is None:
                        # One shared distance per step: π_n is common to
                        # every cell, only the δ threshold differs.
                        dist = float(np.abs(pi - pi_inf).sum())
                    if dist <= st.delta:
                        st.k_ss = n + 1
                        st.done = True
                    elif n + 1 >= st.n_budget:
                        st.done = True
                    else:
                        pending = True
                if not pending:
                    break
                pi = kernel.step(pi)
            for st in live:
                d = np.asarray(st.d_list)
                values, steps = _rsd_values(kernel, d, st.k_ss, st.req,
                                            st.t_arr, rate, st.cell.eps,
                                            st.r_max, st.d_inf,
                                            st.cell.measure)
                results[st.idx] = TransientSolution(
                    times=st.t_arr, values=values, measure=st.cell.measure,
                    eps=st.cell.eps, steps=steps,
                    method=self.method_name,
                    stats={"rate": rate, "k_ss": st.k_ss,
                           "d_inf": st.d_inf,
                           "detection_delta": st.delta,
                           "fused_width": width})
        return results  # type: ignore[return-value]


register(SolverSpec(
    name="RSD",
    constructor=SteadyStateDetectionSolver,
    summary="Randomization with steady-state detection (irreducible "
            "models only)",
    kernel_aware=True,
    stack_fusable=True,
    requires_irreducible=True,
))
