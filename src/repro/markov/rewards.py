"""Reward structures and the two measures of the paper.

The paper assumes a reward rate structure ``r_i >= 0`` over the state space
and studies two measures:

* ``TRR(t) = E[r_{X(t)}]`` — the *transient reward rate* at time ``t``;
* ``MRR(t) = E[(1/t) ∫_0^t r_{X(τ)} dτ]`` — the *mean reward rate* over
  ``[0, t]``.

Point unavailability ``UA(t)`` is ``TRR(t)`` with reward 1 on down states of
an irreducible model; unreliability ``UR(t)`` is ``TRR(t)`` with reward 1 on
an absorbing failure state. Helper constructors for both are provided.
"""

from __future__ import annotations

import enum
from collections.abc import Iterable

import numpy as np

from repro.exceptions import MeasureError
from repro.markov.ctmc import CTMC

__all__ = ["Measure", "TRR", "MRR", "RewardStructure"]


class Measure(enum.Enum):
    """Which of the paper's two transient measures to compute."""

    TRR = "trr"
    """Transient (instant-of-time) reward rate at ``t``."""

    MRR = "mrr"
    """Mean (interval-of-time averaged) reward rate over ``[0, t]``."""


#: Convenience aliases so callers can write ``measure=TRR``.
TRR = Measure.TRR
MRR = Measure.MRR


class RewardStructure:
    """Non-negative reward rates attached to the states of a chain.

    Parameters
    ----------
    rates:
        Length-``n`` vector of reward rates, all ``>= 0``.

    Notes
    -----
    The methods of the paper require ``r_i >= 0``; rewards may be arbitrary
    otherwise (different rates on absorbing states are explicitly allowed
    and exercised by the performability examples).
    """

    def __init__(self, rates: np.ndarray | Iterable[float]) -> None:
        r = np.asarray(list(rates) if not isinstance(rates, np.ndarray)
                       else rates, dtype=np.float64)
        if r.ndim != 1:
            raise MeasureError("reward rates must be a 1-D vector")
        if np.any(r < 0.0):
            raise MeasureError("reward rates must be non-negative")
        if not np.all(np.isfinite(r)):
            raise MeasureError("reward rates must be finite")
        self._r = r
        self._content_digest: str | None = None

    @classmethod
    def indicator(cls, n_states: int,
                  states: Iterable[int]) -> "RewardStructure":
        """Reward 1 on ``states`` and 0 elsewhere (UA/UR style)."""
        r = np.zeros(n_states)
        idx = np.fromiter((int(s) for s in states), dtype=int)
        if idx.size and (idx.min() < 0 or idx.max() >= n_states):
            raise MeasureError("indicator state index out of range")
        r[idx] = 1.0
        return cls(r)

    @classmethod
    def constant(cls, n_states: int, value: float = 1.0) -> "RewardStructure":
        """Same reward on every state (useful for validation: TRR == value)."""
        return cls(np.full(n_states, float(value)))

    @property
    def rates(self) -> np.ndarray:
        """The reward rate vector."""
        return self._r

    @property
    def n_states(self) -> int:
        """Number of states the structure covers."""
        return self._r.size

    @property
    def max_rate(self) -> float:
        """``r_max = max_i r_i`` — all error budgets scale with this."""
        return float(self._r.max()) if self._r.size else 0.0

    def content_digest(self) -> str:
        """Stable SHA-1 of the rate vector (cross-cell cache identity)."""
        if self._content_digest is None:
            import hashlib

            h = hashlib.sha1()
            h.update(np.int64(self._r.size).tobytes())
            h.update(np.ascontiguousarray(self._r).tobytes())
            self._content_digest = h.hexdigest()
        return self._content_digest

    def check_model(self, model: CTMC) -> None:
        """Raise unless the structure matches ``model``'s state count."""
        if self._r.size != model.n_states:
            raise MeasureError(
                f"reward structure covers {self._r.size} states, model has "
                f"{model.n_states}")

    def expectation(self, distribution: np.ndarray) -> float:
        """``Σ_i π_i r_i`` for a probability (or sub-probability) vector."""
        return float(self._r @ distribution)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"RewardStructure(n_states={self._r.size}, "
                f"max_rate={self.max_rate:.6g})")
