"""Sparse continuous-time Markov chain container.

A :class:`CTMC` owns the infinitesimal generator ``Q`` in CSR form plus an
initial probability distribution, and provides the operations every solver
in this package needs: validation, uniformization (randomization) into a
:class:`repro.markov.dtmc.DTMC`, structural queries (absorbing states,
reachability) and convenience constructors from transition lists.

Conventions
-----------
* States are integers ``0 .. n-1``; an optional ``labels`` sequence maps
  indices to arbitrary hashable descriptions (the RAID model stores its
  symbolic state tuples there).
* ``Q[i, j]`` for ``i != j`` is the transition rate ``i -> j``;
  ``Q[i, i] = -sum_j Q[i, j]``.
* Distributions are *row* vectors; evolution is ``dπ/dt = π Q``.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from typing import Hashable

import numpy as np
from scipy import sparse

from repro.exceptions import ModelError
from repro.markov.dtmc import DTMC

__all__ = ["CTMC"]

_VALIDATION_RTOL = 1e-9


class CTMC:
    """Finite homogeneous continuous-time Markov chain.

    Parameters
    ----------
    generator:
        ``(n, n)`` sparse or dense matrix; off-diagonal entries are the
        transition rates, the diagonal must make rows sum to zero (it is
        recomputed and checked, see ``fix_diagonal``).
    initial:
        Initial probability row vector of length ``n``. Defaults to mass 1
        on state 0.
    labels:
        Optional per-state descriptions (any hashables).
    fix_diagonal:
        When True (default) the diagonal is overwritten with the negated
        off-diagonal row sums instead of being validated, which is the
        convenient mode for model generators that only emit rates.
    """

    def __init__(self,
                 generator: sparse.spmatrix | np.ndarray,
                 initial: np.ndarray | None = None,
                 labels: Sequence[Hashable] | None = None,
                 *,
                 fix_diagonal: bool = True) -> None:
        q = sparse.csr_matrix(generator, dtype=np.float64)
        if q.shape[0] != q.shape[1]:
            raise ModelError(f"generator must be square, got {q.shape}")
        n = q.shape[0]
        if n == 0:
            raise ModelError("empty state space")

        coo = q.tocoo()
        off_diag_mask = coo.row != coo.col
        if np.any(coo.data[off_diag_mask] < 0.0):
            raise ModelError("negative off-diagonal rate in generator")

        if fix_diagonal:
            off = sparse.coo_matrix(
                (coo.data[off_diag_mask],
                 (coo.row[off_diag_mask], coo.col[off_diag_mask])),
                shape=(n, n)).tocsr()
            out_rates = np.asarray(off.sum(axis=1)).ravel()
            q = (off - sparse.diags(out_rates)).tocsr()
        else:
            row_sums = np.asarray(q.sum(axis=1)).ravel()
            scale = np.maximum(np.asarray(abs(q).sum(axis=1)).ravel(), 1.0)
            if np.any(np.abs(row_sums) > _VALIDATION_RTOL * scale):
                raise ModelError("generator rows do not sum to zero")
            out_rates = -q.diagonal()
            if np.any(out_rates < -_VALIDATION_RTOL):
                raise ModelError("positive diagonal entry in generator")

        q.eliminate_zeros()
        q.sum_duplicates()
        self._q = q
        self._out_rates = np.maximum(out_rates, 0.0)
        self._n = n

        if initial is None:
            initial = np.zeros(n)
            initial[0] = 1.0
        initial = np.asarray(initial, dtype=np.float64)
        if initial.shape != (n,):
            raise ModelError(
                f"initial distribution shape {initial.shape} != ({n},)")
        if np.any(initial < -1e-15):
            raise ModelError("initial distribution has negative entries")
        total = initial.sum()
        if not np.isclose(total, 1.0, rtol=1e-9, atol=1e-12):
            raise ModelError(f"initial distribution sums to {total}, not 1")
        self._initial = np.clip(initial, 0.0, None)
        self._initial = self._initial / self._initial.sum()

        if labels is not None:
            labels = list(labels)
            if len(labels) != n:
                raise ModelError("labels length does not match state count")
        self._labels = labels
        self._content_digest: str | None = None

    # -- constructors ------------------------------------------------------

    @classmethod
    def from_transitions(cls,
                         n_states: int,
                         transitions: Iterable[tuple[int, int, float]],
                         initial: np.ndarray | int | None = None,
                         labels: Sequence[Hashable] | None = None) -> "CTMC":
        """Build a chain from ``(src, dst, rate)`` triplets.

        Duplicate ``(src, dst)`` pairs are summed. ``initial`` may be a
        state index (mass 1 there) or a full distribution.
        """
        rows, cols, vals = [], [], []
        for i, j, r in transitions:
            if i == j:
                raise ModelError(f"self-loop rate on state {i}")
            if r < 0.0:
                raise ModelError(f"negative rate {r} on {i}->{j}")
            if not (0 <= i < n_states and 0 <= j < n_states):
                raise ModelError(f"transition ({i},{j}) out of range")
            if r == 0.0:
                continue
            rows.append(i)
            cols.append(j)
            vals.append(r)
        q = sparse.coo_matrix((vals, (rows, cols)),
                              shape=(n_states, n_states))
        if isinstance(initial, (int, np.integer)):
            init = np.zeros(n_states)
            init[int(initial)] = 1.0
        else:
            init = initial
        return cls(q, initial=init, labels=labels)

    # -- basic properties --------------------------------------------------

    @property
    def n_states(self) -> int:
        """Number of states."""
        return self._n

    @property
    def generator(self) -> sparse.csr_matrix:
        """The infinitesimal generator ``Q`` (CSR, diagonal included)."""
        return self._q

    @property
    def initial(self) -> np.ndarray:
        """Initial probability row vector (copy-safe view)."""
        return self._initial

    @property
    def labels(self) -> Sequence[Hashable] | None:
        """Optional per-state labels."""
        return self._labels

    @property
    def output_rates(self) -> np.ndarray:
        """Total exit rate of every state (``-diag(Q)``)."""
        return self._out_rates

    @property
    def max_output_rate(self) -> float:
        """``max_i -Q[i,i]`` — the minimal valid randomization rate."""
        return float(self._out_rates.max())

    def content_digest(self) -> str:
        """Stable SHA-1 of the generator structure + initial distribution.

        Two models with equal digests step bit-identically, which is what
        makes cross-cell sharing (the planner's worker cache and the
        RR/RRL schedule memo) safe. Computed once per instance — CTMCs
        are immutable in practice.
        """
        if self._content_digest is None:
            import hashlib

            h = hashlib.sha1()
            h.update(np.int64(self._n).tobytes())
            h.update(np.ascontiguousarray(self._q.indptr).tobytes())
            h.update(np.ascontiguousarray(self._q.indices).tobytes())
            h.update(np.ascontiguousarray(self._q.data).tobytes())
            h.update(np.ascontiguousarray(self._initial).tobytes())
            self._content_digest = h.hexdigest()
        return self._content_digest

    @property
    def n_transitions(self) -> int:
        """Number of nonzero off-diagonal rate entries."""
        return int(self._q.nnz - np.count_nonzero(self._q.diagonal()))

    def absorbing_states(self) -> np.ndarray:
        """Indices of states with zero exit rate."""
        return np.flatnonzero(self._out_rates == 0.0)

    # -- operations --------------------------------------------------------

    def uniformize(self, rate: float | None = None,
                   slack: float = 1.0) -> tuple[DTMC, float]:
        """Randomize the chain: return ``(DTMC with P = I + Q/Λ, Λ)``.

        ``rate`` defaults to ``slack * max_output_rate``. ``slack >= 1``
        may be used to make ``P`` aperiodic (any state keeps a self-loop).
        """
        if rate is None:
            rate = slack * self.max_output_rate
        if rate < self.max_output_rate * (1.0 - 1e-12) or rate <= 0.0:
            raise ModelError(
                f"randomization rate {rate} below max output rate "
                f"{self.max_output_rate}")
        p = sparse.eye(self._n, format="csr") + self._q.multiply(1.0 / rate)
        p = sparse.csr_matrix(p)
        # Clip the tiny negative diagonal round-off that I + Q/Λ can create.
        p.data[p.data < 0.0] = 0.0
        return DTMC(p, initial=self._initial, labels=self._labels,
                    renormalize=True), float(rate)

    def reachable_from(self, sources: Iterable[int]) -> np.ndarray:
        """Indices reachable (in the digraph of positive rates) from
        ``sources``, including the sources themselves (BFS on CSR rows)."""
        seen = np.zeros(self._n, dtype=bool)
        stack = [int(s) for s in sources]
        for s in stack:
            seen[s] = True
        indptr, indices, data = self._q.indptr, self._q.indices, self._q.data
        while stack:
            i = stack.pop()
            for k in range(indptr[i], indptr[i + 1]):
                j = indices[k]
                if j != i and data[k] > 0.0 and not seen[j]:
                    seen[j] = True
                    stack.append(j)
        return np.flatnonzero(seen)

    def is_irreducible(self) -> bool:
        """True when every state can reach every other state."""
        import scipy.sparse.csgraph as csgraph
        n_comp, _ = csgraph.connected_components(
            self._q, directed=True, connection="strong")
        return n_comp == 1

    def restricted_to(self, states: Sequence[int],
                      initial: np.ndarray | None = None) -> "CTMC":
        """Sub-chain on ``states`` (rates leaving the subset are dropped,
        so the result is a valid CTMC on the subset with the leak removed).

        Mostly useful for analysis/testing; the solvers never need it.
        """
        idx = np.asarray(states, dtype=int)
        sub = self._q[idx][:, idx]
        labels = None
        if self._labels is not None:
            labels = [self._labels[i] for i in idx]
        if initial is None:
            initial = self._initial[idx]
            s = initial.sum()
            if s <= 0:
                raise ModelError("restriction removes all initial mass")
            initial = initial / s
        return CTMC(sub, initial=initial, labels=labels, fix_diagonal=True)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"CTMC(n_states={self._n}, "
                f"n_transitions={self.n_transitions}, "
                f"max_output_rate={self.max_output_rate:.6g})")
