"""Sparse discrete-time Markov chain container.

The randomized (uniformized) chain ``X̂`` with ``P = I + Q/Λ`` is the
workhorse of every method in this package: standard randomization sums
Poisson-weighted powers of ``P`` applied to the initial distribution, and
regenerative randomization steps two sub-stochastic vectors through ``P``.
Both only ever need row-vector/matrix products, so the container is thin:
a validated CSR matrix plus an initial distribution.
"""

from __future__ import annotations

from collections.abc import Hashable, Sequence

import numpy as np
from scipy import sparse

from repro.exceptions import ModelError

__all__ = ["DTMC"]

_ROW_SUM_TOL = 1e-9


class DTMC:
    """Finite discrete-time Markov chain with sparse transition matrix.

    Parameters
    ----------
    transition:
        ``(n, n)`` row-stochastic matrix (sparse or dense).
    initial:
        Initial probability row vector; defaults to mass 1 on state 0.
    labels:
        Optional per-state descriptions.
    renormalize:
        When True, rows are rescaled to sum to exactly 1 (used after
        uniformization, where round-off can leave ``1 ± 1e-16`` sums).
        Rows summing to 0 (possible for artificial sink rows) are given a
        self-loop.
    """

    def __init__(self,
                 transition: sparse.spmatrix | np.ndarray,
                 initial: np.ndarray | None = None,
                 labels: Sequence[Hashable] | None = None,
                 *,
                 renormalize: bool = False) -> None:
        p = sparse.csr_matrix(transition, dtype=np.float64)
        if p.shape[0] != p.shape[1]:
            raise ModelError(f"transition matrix must be square, got {p.shape}")
        n = p.shape[0]
        if n == 0:
            raise ModelError("empty state space")
        if np.any(p.data < 0.0):
            raise ModelError("negative transition probability")

        row_sums = np.asarray(p.sum(axis=1)).ravel()
        if renormalize:
            zero_rows = np.flatnonzero(row_sums == 0.0)
            if zero_rows.size:
                p = p.tolil()
                for i in zero_rows:
                    p[i, i] = 1.0
                p = p.tocsr()
                row_sums = np.asarray(p.sum(axis=1)).ravel()
            scale = sparse.diags(1.0 / row_sums)
            p = sparse.csr_matrix(scale @ p)
        else:
            if np.any(np.abs(row_sums - 1.0) > _ROW_SUM_TOL):
                bad = int(np.argmax(np.abs(row_sums - 1.0)))
                raise ModelError(
                    f"row {bad} sums to {row_sums[bad]}, not 1")

        p.eliminate_zeros()
        p.sum_duplicates()
        self._p = p
        self._n = n

        if initial is None:
            initial = np.zeros(n)
            initial[0] = 1.0
        initial = np.asarray(initial, dtype=np.float64)
        if initial.shape != (n,):
            raise ModelError(
                f"initial distribution shape {initial.shape} != ({n},)")
        if np.any(initial < -1e-15) or not np.isclose(initial.sum(), 1.0,
                                                      rtol=1e-9, atol=1e-12):
            raise ModelError("invalid initial distribution")
        self._initial = np.clip(initial, 0.0, None)
        self._initial /= self._initial.sum()

        if labels is not None:
            labels = list(labels)
            if len(labels) != n:
                raise ModelError("labels length does not match state count")
        self._labels = labels

        # Cached CSC form of P^T for fast left multiplication: x @ P is
        # computed as (P.T @ x.T).T; scipy's CSR rmatvec already does this
        # efficiently, so we simply keep CSR and use the `.T` product.

    @property
    def n_states(self) -> int:
        """Number of states."""
        return self._n

    @property
    def transition_matrix(self) -> sparse.csr_matrix:
        """Row-stochastic transition matrix ``P``."""
        return self._p

    @property
    def initial(self) -> np.ndarray:
        """Initial probability row vector."""
        return self._initial

    @property
    def labels(self) -> Sequence[Hashable] | None:
        """Optional per-state labels."""
        return self._labels

    def step(self, distribution: np.ndarray) -> np.ndarray:
        """One synchronous step: return ``distribution @ P``.

        Works for any non-negative (sub-stochastic) row vector, which is
        what the regenerative-randomization recursion feeds it.
        """
        return self._p.T @ distribution

    def step_n(self, distribution: np.ndarray, n: int) -> np.ndarray:
        """Apply ``n`` steps (``n >= 0``)."""
        if n < 0:
            raise ValueError("n must be non-negative")
        out = np.asarray(distribution, dtype=np.float64)
        for _ in range(n):
            out = self._p.T @ out
        return out

    def absorbing_states(self) -> np.ndarray:
        """States whose only transition is a self-loop with probability 1."""
        diag = self._p.diagonal()
        return np.flatnonzero(np.isclose(diag, 1.0, rtol=0.0, atol=1e-12))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"DTMC(n_states={self._n}, nnz={self._p.nnz})"
