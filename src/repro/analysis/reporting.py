"""Plain-text table/series formatting for the experiment harness.

The paper presents its evaluation as two step-count tables and two CPU-
time log-log figures; these helpers render both as aligned monospace text
(the closest faithful medium for a terminal-first reproduction — the
"figures" become printed series suitable for gnuplot/matplotlib
replotting).
"""

from __future__ import annotations

from collections.abc import Sequence

__all__ = ["format_table", "format_series"]


def format_table(title: str,
                 col_names: Sequence[str],
                 rows: Sequence[Sequence[object]],
                 note: str | None = None) -> str:
    """Render an aligned monospace table.

    ``None`` cells render as ``—`` (used for skipped/over-budget runs).
    Floats are shown with 6 significant digits; everything else via
    ``str``.
    """

    def cell(x: object) -> str:
        if x is None:
            return "—"
        if isinstance(x, float):
            return f"{x:.6g}"
        return str(x)

    grid = [[cell(c) for c in row] for row in rows]
    header = [str(c) for c in col_names]
    widths = [max(len(header[j]), *(len(r[j]) for r in grid)) if grid
              else len(header[j]) for j in range(len(header))]
    lines = [title]
    lines.append("  ".join(h.rjust(w) for h, w in zip(header, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for r in grid:
        lines.append("  ".join(c.rjust(w) for c, w in zip(r, widths)))
    if note:
        lines.append(note)
    return "\n".join(lines)


def format_series(title: str,
                  x_name: str,
                  x_values: Sequence[float],
                  series: dict[str, Sequence[float | None]],
                  y_name: str = "seconds") -> str:
    """Render one 'figure' as labelled columns of (x, y) pairs.

    ``series`` maps a legend label (e.g. ``"G=20, RRL"``) to y-values
    aligned with ``x_values``; ``None`` marks points skipped for budget
    reasons.
    """
    cols = [x_name] + list(series)
    rows: list[list[object]] = []
    for i, x in enumerate(x_values):
        row: list[object] = [x]
        for label in series:
            row.append(series[label][i])
        rows.append(row)
    return format_table(f"{title}  [{y_name}]", cols, rows)
