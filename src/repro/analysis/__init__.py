"""High-level analysis API and the paper-experiment harness."""

from repro.analysis.runner import solve, get_solver, SOLVER_REGISTRY
from repro.analysis.reporting import format_table, format_series
from repro.analysis.convergence import (
    DecayFit,
    excursion_decay,
    predict_truncation,
    compare_regenerative_states,
)
from repro.analysis.validation import ValidationReport, cross_validate
from repro.analysis.experiments import (
    ExperimentConfig,
    GridResult,
    StepTable,
    TimingTable,
    run_steps_table,
    run_timing_table,
    run_table1,
    run_table2,
    run_figure3,
    run_figure4,
    run_ur_values,
    run_grid,
    PAPER_TABLE1,
    PAPER_TABLE2,
    PAPER_UR_1E5,
)

__all__ = [
    "solve",
    "get_solver",
    "SOLVER_REGISTRY",
    "DecayFit",
    "excursion_decay",
    "predict_truncation",
    "compare_regenerative_states",
    "ValidationReport",
    "cross_validate",
    "format_table",
    "format_series",
    "ExperimentConfig",
    "GridResult",
    "StepTable",
    "TimingTable",
    "run_steps_table",
    "run_timing_table",
    "run_table1",
    "run_table2",
    "run_figure3",
    "run_figure4",
    "run_ur_values",
    "run_grid",
    "PAPER_TABLE1",
    "PAPER_TABLE2",
    "PAPER_UR_1E5",
]
