"""Cross-method validation: run several solvers and compare.

Randomization-family solvers carry guaranteed error budgets, but a
*model* can still be wrong — and the strongest practical check is
agreement between methods that share no code path (SR sums Poisson-
weighted DTMC steps; RRL inverts a closed-form transform; the ODE solver
integrates the Kolmogorov equations). This module packages the
agreement-matrix idiom the test-suite uses into a public utility, so a
downstream user can certify their own model + measure + horizon the same
way before trusting a single-method production run.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.reporting import format_table
from repro.analysis.runner import solve
from repro.markov.base import TransientSolution
from repro.markov.ctmc import CTMC
from repro.markov.rewards import Measure, RewardStructure

__all__ = ["ValidationReport", "cross_validate"]

#: Methods whose error is fully budget-controlled; deviations between
#: any two of them beyond the summed budgets indicate a real bug.
_STRICT = {"RRL", "RR", "SR", "RSD", "MS"}


@dataclass
class ValidationReport:
    """Result of a cross-method validation run.

    Attributes
    ----------
    solutions:
        Method tag → :class:`~repro.markov.base.TransientSolution`.
    deviations:
        ``(method_a, method_b) → max |values_a − values_b|`` over the
        common time grid, for ``a < b`` lexicographically.
    tolerance:
        The pass threshold used for :attr:`passed` (summed budgets for
        strict pairs, a looser heuristic bound when AU/ODE participate).
    """

    solutions: dict[str, TransientSolution]
    deviations: dict[tuple[str, str], float]
    tolerance: dict[tuple[str, str], float]

    @property
    def passed(self) -> bool:
        """True when every pairwise deviation is within its tolerance."""
        return all(dev <= self.tolerance[pair]
                   for pair, dev in self.deviations.items())

    def worst_pair(self) -> tuple[tuple[str, str], float]:
        """The pair with the largest tolerance-relative deviation."""
        return max(self.deviations.items(),
                   key=lambda kv: kv[1] / max(self.tolerance[kv[0]], 1e-300))

    def render(self) -> str:
        """Human-readable pairwise deviation table."""
        rows = []
        for (a, b), dev in sorted(self.deviations.items()):
            tol = self.tolerance[(a, b)]
            rows.append([f"{a} vs {b}", f"{dev:.3e}", f"{tol:.3e}",
                         "ok" if dev <= tol else "FAIL"])
        status = "PASSED" if self.passed else "FAILED"
        return format_table(
            f"Cross-method validation: {status}",
            ["pair", "max deviation", "tolerance", "verdict"], rows)


def cross_validate(model: CTMC,
                   rewards: RewardStructure,
                   measure: Measure,
                   times: "np.ndarray | list[float]",
                   eps: float = 1e-10,
                   methods: "tuple[str, ...] | None" = None,
                   ode_slack: float = 1e3) -> ValidationReport:
    """Solve with several methods and compare pairwise.

    Parameters
    ----------
    model, rewards, measure, times, eps:
        As for any solver.
    methods:
        Method tags to include; defaults to the full strict family
        (``RRL, RR, SR`` — plus ``RSD`` for irreducible models) — AU and
        ODE can be added explicitly.
    ode_slack:
        Tolerance multiplier applied to pairs involving the
        heuristically-controlled AU/ODE solvers.
    """
    if methods is None:
        methods = ("RRL", "RR", "SR")
        if model.absorbing_states().size == 0 and model.is_irreducible():
            methods = methods + ("RSD",)
    sols: dict[str, TransientSolution] = {}
    for m in methods:
        sols[m] = solve(model, rewards, measure, list(times), eps=eps,
                        method=m)
    deviations: dict[tuple[str, str], float] = {}
    tolerance: dict[tuple[str, str], float] = {}
    tags = sorted(sols)
    for i, a in enumerate(tags):
        for b in tags[i + 1:]:
            dev = float(np.max(np.abs(sols[a].values - sols[b].values)))
            deviations[(a, b)] = dev
            tol = 2.0 * eps
            if a not in _STRICT or b not in _STRICT:
                tol *= ode_slack
            tolerance[(a, b)] = tol
    return ValidationReport(solutions=sols, deviations=deviations,
                            tolerance=tolerance)
