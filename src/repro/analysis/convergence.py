"""Diagnostics for the regenerative-randomization transformation.

The efficiency of RR/RRL hinges on how fast the excursion survival
``a(k)`` decays — the paper's guidance is to pick a regenerative state
``r`` that the randomized chain visits often. These helpers quantify
that before committing to a full solve:

* :func:`excursion_decay` fits the geometric tail rate ``ρ`` of ``a(k)``
  (``a(k) ≈ c·ρ^k`` for large ``k``; ``ρ`` is the subdominant DTMC
  eigenvalue of the chain watched from ``r``);
* :func:`predict_truncation` turns a fitted decay into the asymptotic
  ``K(t) ≈ (log Λt − log(ε/r_max) + log c)/log(1/ρ)`` growth curve —
  the logarithmic-in-``t`` step law visible in the paper's tables;
* :func:`compare_regenerative_states` ranks candidate states by fitted
  decay, automating the paper's selection heuristic.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.core.schedules import ScheduleBuilder
from repro.exceptions import ModelError
from repro.markov.ctmc import CTMC
from repro.markov.rewards import RewardStructure

__all__ = [
    "DecayFit",
    "excursion_decay",
    "predict_truncation",
    "compare_regenerative_states",
]


@dataclass(frozen=True)
class DecayFit:
    """Fitted geometric tail ``a(k) ≈ amplitude · rate^k``.

    ``rate`` close to 1 means a poor regenerative state (slow decay,
    large K); ``exhausted`` flags schedules that died out exactly before
    the fit window (decay is then effectively 0).
    """

    rate: float
    amplitude: float
    window: tuple[int, int]
    exhausted: bool


def excursion_decay(model: CTMC, regenerative: int,
                    n_steps: int = 200,
                    fit_fraction: float = 0.5) -> DecayFit:
    """Fit the geometric decay of ``a(k)`` for a candidate state ``r``.

    Steps the schedule ``n_steps`` deep and least-squares fits
    ``log a(k)`` over the trailing ``fit_fraction`` of the recorded
    prefix (the head is transient and would bias the tail rate).
    """
    if not (0.0 < fit_fraction <= 1.0):
        raise ValueError("fit_fraction must lie in (0, 1]")
    rewards = RewardStructure.constant(model.n_states, 0.0)
    main, _, _, _ = ScheduleBuilder.for_model(model, rewards, regenerative)
    main.extend_to(n_steps)
    a = main.snapshot().a
    if main.exhausted:
        nz = np.flatnonzero(a > 0.0)
        end = int(nz[-1]) + 1 if nz.size else 1
        return DecayFit(rate=0.0, amplitude=float(a[0]),
                        window=(0, end), exhausted=True)
    start = int(len(a) * (1.0 - fit_fraction))
    start = min(start, len(a) - 2)
    ks = np.arange(start, len(a), dtype=float)
    logs = np.log(a[start:])
    slope, intercept = np.polyfit(ks, logs, 1)
    rate = float(np.exp(slope))
    return DecayFit(rate=min(rate, 1.0), amplitude=float(np.exp(intercept)),
                    window=(start, len(a)), exhausted=False)


def predict_truncation(fit: DecayFit, rate: float, t: float,
                       eps: float, r_max: float = 1.0) -> int:
    """Asymptotic prediction of the truncation point ``K`` for time ``t``.

    Solves ``amplitude·ρ^K · Λt <= eps/r_max`` — the union bound with the
    expected-excess factor approximated by ``Λt``. Exact selection is
    done by :func:`repro.core.truncation.select_truncation`; this is the
    cheap planning estimate.
    """
    if fit.exhausted:
        return fit.window[1]
    if not (0.0 < fit.rate < 1.0):
        raise ModelError("no geometric decay fitted; K grows like Λt")
    target = eps / max(r_max, 1e-300)
    lam_t = rate * t
    num = math.log(fit.amplitude * lam_t / target)
    return max(0, int(math.ceil(num / -math.log(fit.rate))))


def compare_regenerative_states(model: CTMC,
                                candidates: "list[int] | None" = None,
                                n_steps: int = 150) -> list[tuple[int, DecayFit]]:
    """Rank candidate regenerative states by fitted excursion decay.

    Defaults to the ten highest-initial-probability non-absorbing states
    (plus state 0). Returns ``(state, fit)`` pairs sorted best-first
    (smallest decay rate = fastest regeneration = smallest K).
    """
    if candidates is None:
        absorbing = set(int(i) for i in model.absorbing_states())
        order = np.argsort(-model.initial)
        candidates = [int(i) for i in order if int(i) not in absorbing][:10]
        if 0 not in candidates and 0 not in absorbing:
            candidates.append(0)
    fits = [(c, excursion_decay(model, c, n_steps=n_steps))
            for c in candidates]
    fits.sort(key=lambda cf: cf[1].rate)
    return fits
