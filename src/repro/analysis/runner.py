"""One-call front door: ``solve(model, rewards, measure, times, method=...)``.

Keeps a registry of solver factories keyed by the short method tags the
paper uses (``"RRL"``, ``"RR"``, ``"SR"``, ``"RSD"``, plus the extras
``"AU"`` and ``"ODE"``), so scripts and the experiment harness can select
methods by name.

This stays the right call for *one ad-hoc solve of a live model*. For
anything batch-shaped — grids, sweeps, queued work — the canonical API is
:class:`repro.service.service.SolveService` with declarative
:class:`~repro.batch.planner.SolveRequest` cells: same numbers, plus
coalescing, fusion, kernel caching and a serializable wire form.
"""

from __future__ import annotations

from collections.abc import Callable

import numpy as np

from repro.core.rr_solver import RegenerativeRandomizationSolver
from repro.core.rrl_solver import RRLSolver
from repro.markov.adaptive import AdaptiveUniformizationSolver
from repro.markov.base import TransientSolution, TransientSolver
from repro.markov.ctmc import CTMC
from repro.markov.ode import OdeSolver
from repro.markov.rewards import Measure, RewardStructure
from repro.markov.multistep import MultistepRandomizationSolver
from repro.markov.rsd import SteadyStateDetectionSolver
from repro.markov.standard import StandardRandomizationSolver

__all__ = ["SOLVER_REGISTRY", "get_solver", "solve"]

#: Method tag → zero-config solver factory. Factories take arbitrary
#: keyword arguments forwarded to the solver constructor.
SOLVER_REGISTRY: dict[str, Callable[..., TransientSolver]] = {
    "RRL": RRLSolver,
    "RR": RegenerativeRandomizationSolver,
    "SR": StandardRandomizationSolver,
    "RSD": SteadyStateDetectionSolver,
    "AU": AdaptiveUniformizationSolver,
    "ODE": OdeSolver,
    "MS": MultistepRandomizationSolver,
}


def get_solver(method: str, **kwargs) -> TransientSolver:
    """Instantiate a solver by its method tag (case-insensitive)."""
    key = method.upper()
    try:
        factory = SOLVER_REGISTRY[key]
    except KeyError:
        known = ", ".join(sorted(SOLVER_REGISTRY))
        raise ValueError(f"unknown method {method!r}; choose from {known}") \
            from None
    return factory(**kwargs)


def solve(model: CTMC,
          rewards: RewardStructure,
          measure: Measure,
          times: np.ndarray | list[float] | float,
          eps: float = 1e-12,
          method: str = "RRL",
          **solver_kwargs) -> TransientSolution:
    """Compute a transient measure with the chosen method.

    Parameters
    ----------
    model, rewards, measure, times, eps:
        As for the individual solvers; ``times`` may be a scalar.
    method:
        One of :data:`SOLVER_REGISTRY` (default the paper's ``"RRL"``).
    solver_kwargs:
        Forwarded to the solver constructor (e.g. ``regenerative=...``).
    """
    # np.ndim handles every scalar spelling uniformly — python floats,
    # np.float64 *and* 0-d arrays (np.isscalar(np.array(1.0)) is False,
    # np.isscalar(np.float64(1.0)) is True: not a robust test).
    if np.ndim(times) == 0:
        times = [float(times)]  # type: ignore[arg-type]
    elif len(times) == 0:
        raise ValueError("times must contain at least one time point")
    solver = get_solver(method, **solver_kwargs)
    return solver.solve(model, rewards, measure, times, eps)
