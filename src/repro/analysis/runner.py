"""One-call front door: ``solve(model, rewards, measure, times, method=...)``.

Method tags (``"RRL"``, ``"RR"``, ``"SR"``, ``"RSD"``, ``"AU"``, ``"MS"``,
``"ODE"``) resolve through the capability-declaring solver registry
(:mod:`repro.solvers.registry`) — the solvers self-register, so this
module carries no import ladder and new solvers need no edit here.

This stays the right call for *one ad-hoc solve of a live model*. For
anything batch-shaped — grids, sweeps, queued work — the canonical API is
:class:`repro.service.service.SolveService` with declarative
:class:`~repro.batch.planner.SolveRequest` cells: same numbers, plus
coalescing, fusion, kernel caching, schedule memoization and a
serializable wire form.
"""

from __future__ import annotations

from collections.abc import Callable, Iterator, Mapping

import numpy as np

from repro.exceptions import UnknownMethodError
from repro.markov.base import TransientSolution, TransientSolver
from repro.markov.ctmc import CTMC
from repro.markov.rewards import Measure, RewardStructure
from repro.solvers import registry

__all__ = ["SOLVER_REGISTRY", "get_solver", "solve"]


class _RegistryView(Mapping):
    """Read-only ``{method tag: constructor}`` view of the solver registry.

    Kept under the historical name :data:`SOLVER_REGISTRY` so existing
    callers (``sorted(SOLVER_REGISTRY)``, ``SOLVER_REGISTRY.values()``)
    keep working; the source of truth is
    :mod:`repro.solvers.registry` — mutate that, not this.
    """

    def __getitem__(self, method: str) -> Callable[..., TransientSolver]:
        try:
            return registry.get_spec(method).constructor
        except UnknownMethodError:
            raise KeyError(method) from None

    def __iter__(self) -> Iterator[str]:
        return iter(registry.known_methods())

    def __len__(self) -> int:
        return len(registry.known_methods())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"{type(self).__name__}("
                + ", ".join(registry.known_methods()) + ")")


#: Method tag → zero-config solver factory (registry-backed view).
SOLVER_REGISTRY: Mapping[str, Callable[..., TransientSolver]] = \
    _RegistryView()


def get_solver(method: str, **kwargs) -> TransientSolver:
    """Instantiate a solver by its method tag (case-insensitive).

    Raises :class:`~repro.exceptions.UnknownMethodError` (a
    :class:`ValueError`) for unregistered tags, with the registry's
    known-method list in the message.
    """
    return registry.get_solver(method, **kwargs)


def solve(model: CTMC,
          rewards: RewardStructure,
          measure: Measure,
          times: np.ndarray | list[float] | float,
          eps: float = 1e-12,
          method: str = "RRL",
          **solver_kwargs) -> TransientSolution:
    """Compute a transient measure with the chosen method.

    Parameters
    ----------
    model, rewards, measure, times, eps:
        As for the individual solvers; ``times`` may be a scalar.
    method:
        Any tag in :func:`repro.solvers.registry.known_methods` (default
        the paper's ``"RRL"``).
    solver_kwargs:
        Forwarded to the solver constructor (e.g. ``regenerative=...``).
    """
    # np.ndim handles every scalar spelling uniformly — python floats,
    # np.float64 *and* 0-d arrays (np.isscalar(np.array(1.0)) is False,
    # np.isscalar(np.float64(1.0)) is True: not a robust test).
    if np.ndim(times) == 0:
        times = [float(times)]  # type: ignore[arg-type]
    elif len(times) == 0:
        raise ValueError("times must contain at least one time point")
    solver = get_solver(method, **solver_kwargs)
    return solver.solve(model, rewards, measure, times, eps)
