"""Harness regenerating every table and figure of the paper's evaluation.

Section 3 of the paper evaluates four methods on a level-5 RAID model
(``C_H = 1, D_H = 3``, ``G ∈ {20, 40}``, ``ε = 10⁻¹²``):

* **Table 1** — steps of RR/RRL vs RSD for the availability measure
  ``UA(t)``, ``t ∈ {1, 10, 10², 10³, 10⁴, 10⁵}`` h;
* **Table 2** — steps of RR/RRL vs SR for the unreliability ``UR(t)``;
* **Figure 3** — CPU times of RRL/RR/RSD for ``UA(t)`` (log-log);
* **Figure 4** — CPU times of RRL/RR/SR for ``UR(t)``;
* in-text: ``UR(10⁵) = 0.50480`` (G=20) / ``0.74750`` (G=40), Laplace
  inversion ≈ 1–2% of RRL runtime, 105–329 abscissae.

``run_table1/2`` reproduce the step tables (exact integers — these do not
depend on hardware); ``run_figure3/4`` reproduce the timing series on the
current machine (shape, not absolute seconds). Cells whose *predicted*
step count exceeds the configured budget are skipped and reported as
``None`` — SR at ``Λt ≈ 4.4·10⁶`` is precisely the pathology the paper's
method avoids, and a benchmark run should not take hours by default.

The paper's published numbers are embedded (``PAPER_TABLE1`` etc.) so the
benchmark output can print measured-vs-paper side by side.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.analysis.reporting import format_series, format_table
from repro.analysis.runner import get_solver
from repro.core.rrl_solver import RRLSolver
from repro.exceptions import TruncationError
from repro.markov.ctmc import CTMC
from repro.markov.rewards import Measure, RewardStructure
from repro.markov.standard import sr_required_steps
from repro.models.raid5 import (
    Raid5Params,
    build_raid5_availability,
    build_raid5_reliability,
)

__all__ = [
    "ExperimentConfig",
    "StepTable",
    "TimingTable",
    "run_steps_table",
    "run_timing_table",
    "run_table1",
    "run_table2",
    "run_figure3",
    "run_figure4",
    "PAPER_TABLE1",
    "PAPER_TABLE2",
    "PAPER_UR_1E5",
]

#: Paper Table 1 — steps for UA(t): G -> (RR/RRL column, RSD column),
#: aligned with times (1, 10, 1e2, 1e3, 1e4, 1e5).
PAPER_TABLE1: dict[int, tuple[list[int], list[int]]] = {
    20: ([56, 323, 2234, 2708, 2938, 3157],
         [66, 355, 2612, 2612, 2612, 2612]),
    40: ([86, 554, 4187, 5123, 5549, 5957],
         [99, 594, 4823, 4823, 4823, 4823]),
}

#: Paper Table 2 — steps for UR(t): G -> (RR/RRL column, SR column).
PAPER_TABLE2: dict[int, tuple[list[int], list[int]]] = {
    20: ([56, 323, 2233, 2708, 2937, 3157],
         [65, 354, 2726, 24844, 240958, 2386068]),
    40: ([86, 554, 4186, 5122, 5547, 5955],
         [98, 593, 4849, 45234, 442203, 4390141]),
}

#: Paper in-text UR(100000 h) values.
PAPER_UR_1E5: dict[int, float] = {20: 0.50480, 40: 0.74750}

#: The paper's evaluation grid.
PAPER_TIMES: tuple[float, ...] = (1.0, 10.0, 1e2, 1e3, 1e4, 1e5)
PAPER_GROUPS: tuple[int, ...] = (20, 40)


@dataclass(frozen=True)
class ExperimentConfig:
    """Scale knobs for the reproduction runs.

    The default configuration is laptop-friendly (reduced ``G`` and
    horizon); ``ExperimentConfig.paper()`` selects the paper's exact
    grid. ``sr_step_budget`` bounds the per-cell work of the SR and RR
    timing columns: cells whose predicted inner step count exceeds it
    report ``None`` instead of running for hours.
    """

    groups: tuple[int, ...] = (5, 10)
    times: tuple[float, ...] = (1.0, 10.0, 1e2, 1e3, 1e4)
    eps: float = 1e-12
    sr_step_budget: int = 2_000_000
    rr_inner_budget: int = 10_000_000
    spare_disks: int = 3
    spare_controllers: int = 1

    @classmethod
    def paper(cls, *, sr_step_budget: int = 10_000_000,
              rr_inner_budget: int = 10_000_000) -> "ExperimentConfig":
        """The paper's exact grid (G ∈ {20,40}, t up to 10⁵ h)."""
        return cls(groups=PAPER_GROUPS, times=PAPER_TIMES,
                   sr_step_budget=sr_step_budget,
                   rr_inner_budget=rr_inner_budget)

    def params_for(self, g: int) -> Raid5Params:
        """RAID parameters for group count ``g`` (other knobs fixed)."""
        return Raid5Params(groups=g, spare_disks=self.spare_disks,
                           spare_controllers=self.spare_controllers)


@dataclass
class StepTable:
    """A reproduced step table plus the paper's numbers when available."""

    title: str
    times: tuple[float, ...]
    columns: dict[str, list[int | None]]
    paper_columns: dict[str, list[int]] = field(default_factory=dict)

    def render(self) -> str:
        names = ["t (h)"] + list(self.columns) + [
            f"paper:{k}" for k in self.paper_columns]
        rows: list[list[object]] = []
        for i, t in enumerate(self.times):
            row: list[object] = [f"{t:g}"]
            row += [self.columns[k][i] for k in self.columns]
            row += [self.paper_columns[k][i] for k in self.paper_columns]
            rows.append(row)
        return format_table(self.title, names, rows)


@dataclass
class TimingTable:
    """A reproduced CPU-time 'figure' (series of seconds vs t)."""

    title: str
    times: tuple[float, ...]
    series: dict[str, list[float | None]]

    def render(self) -> str:
        return format_series(self.title, "t (h)", list(self.times),
                             self.series)


def _build(config: ExperimentConfig, g: int, kind: str
           ) -> tuple[CTMC, RewardStructure]:
    if kind == "UA":
        model, rewards, _ = build_raid5_availability(config.params_for(g))
    elif kind == "UR":
        model, rewards, _ = build_raid5_reliability(config.params_for(g))
    else:
        raise ValueError(f"unknown measure kind {kind!r}")
    return model, rewards


def run_steps_table(config: ExperimentConfig, kind: str) -> StepTable:
    """Reproduce a step table (Table 1 for ``kind='UA'``, Table 2 for
    ``'UR'``).

    RR and RRL share their step counts (the transformation phase is
    identical); the RSD column is measured by running the detection loop;
    the SR column is *computed* from the Poisson quantile (running SR is
    not needed to know its step count).
    """
    times = config.times
    columns: dict[str, list[int | None]] = {}
    paper_cols: dict[str, list[int]] = {}
    comparator = "RSD" if kind == "UA" else "SR"
    for g in config.groups:
        model, rewards = _build(config, g, kind)
        rrl = RRLSolver().solve(model, rewards, Measure.TRR, list(times),
                                config.eps)
        columns[f"G={g} RR/RRL"] = [int(s) for s in rrl.steps]
        if kind == "UA":
            rsd = get_solver("RSD").solve(model, rewards, Measure.TRR,
                                          list(times), config.eps)
            columns[f"G={g} RSD"] = [int(s) for s in rsd.steps]
        else:
            lam = model.max_output_rate
            columns[f"G={g} SR"] = [
                sr_required_steps(lam * t, config.eps / rewards.max_rate,
                                  Measure.TRR) - 1
                for t in times]
        paper = (PAPER_TABLE1 if kind == "UA" else PAPER_TABLE2).get(g)
        if paper is not None and times == PAPER_TIMES:
            paper_cols[f"G={g} RR/RRL"] = paper[0]
            paper_cols[f"G={g} {comparator}"] = paper[1]
    title = ("Table 1: steps for UA(t) — RR/RRL vs RSD" if kind == "UA"
             else "Table 2: steps for UR(t) — RR/RRL vs SR")
    return StepTable(title=title, times=times, columns=columns,
                     paper_columns=paper_cols)


def _timed_solve(method: str, model: CTMC, rewards: RewardStructure,
                 t: float, eps: float, **kwargs) -> float | None:
    solver = get_solver(method, **kwargs)
    start = time.perf_counter()
    try:
        solver.solve(model, rewards, Measure.TRR, [t], eps)
    except TruncationError:
        return None
    return time.perf_counter() - start


def run_timing_table(config: ExperimentConfig, kind: str) -> TimingTable:
    """Reproduce a CPU-time figure (Figure 3 for ``'UA'``, 4 for ``'UR'``).

    Each cell times one standalone ``solve`` at a single ``t`` (the
    paper's experimental setup). Over-budget SR/RR cells are skipped and
    rendered as ``—``.
    """
    methods = ("RRL", "RR", "RSD") if kind == "UA" else ("RRL", "RR", "SR")
    series: dict[str, list[float | None]] = {}
    for g in config.groups:
        model, rewards = _build(config, g, kind)
        lam = model.max_output_rate
        for method in methods:
            label = f"G={g}, {method}"
            vals: list[float | None] = []
            for t in config.times:
                predicted = sr_required_steps(
                    lam * t, config.eps / rewards.max_rate, Measure.TRR)
                if method == "SR" and predicted > config.sr_step_budget:
                    vals.append(None)
                    continue
                kwargs = {}
                if method == "RR":
                    if predicted > config.rr_inner_budget:
                        vals.append(None)
                        continue
                    kwargs["inner_max_steps"] = config.rr_inner_budget
                elif method == "SR":
                    kwargs["max_steps"] = config.sr_step_budget
                vals.append(_timed_solve(method, model, rewards, t,
                                         config.eps, **kwargs))
            series[label] = vals
    title = ("Figure 3: CPU seconds, UA(t) — RRL vs RR vs RSD"
             if kind == "UA"
             else "Figure 4: CPU seconds, UR(t) — RRL vs RR vs SR")
    return TimingTable(title=title, times=config.times, series=series)


def run_table1(config: ExperimentConfig | None = None) -> StepTable:
    """Paper Table 1 (steps, UA)."""
    return run_steps_table(config or ExperimentConfig(), "UA")


def run_table2(config: ExperimentConfig | None = None) -> StepTable:
    """Paper Table 2 (steps, UR)."""
    return run_steps_table(config or ExperimentConfig(), "UR")


def run_figure3(config: ExperimentConfig | None = None) -> TimingTable:
    """Paper Figure 3 (CPU times, UA)."""
    return run_timing_table(config or ExperimentConfig(), "UA")


def run_figure4(config: ExperimentConfig | None = None) -> TimingTable:
    """Paper Figure 4 (CPU times, UR)."""
    return run_timing_table(config or ExperimentConfig(), "UR")
