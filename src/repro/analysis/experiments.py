"""Harness regenerating every table and figure of the paper's evaluation.

Every table/figure is decomposed into independent *column* cells (one per
``(G, method)`` pair). Solve-shaped columns (the RRL/RSD step columns and
the UR value sweep) are declared as
:class:`~repro.batch.planner.SolveRequest` cells and compiled by the
fusion planner — duplicate solves coalesce (the Table 2 RRL column and
the UR sweep are the *same* solve and run once) and unfused cells of a
shared model reuse one kernel per worker; analytic columns (SR step
counts need no solve) and the timing figures stay plain
:class:`~repro.batch.runner.BatchTask` passthroughs, because a timed
cell must pay its own standalone setup to mean what the paper's figures
mean. Everything executes through one
:class:`~repro.service.service.SolveService` fan-out (the canonical API
— this module never touches planner or runner internals), so the whole
grid rides a process pool: ``ExperimentConfig(workers=4)`` or
``run_grid(config, service=...)``. With ``workers=1`` (the default) the
tasks run inline and the results are identical — neither the task
decomposition nor the fusion plan ever changes any number
(``fuse=False`` disables planning for A/B verification). Timing columns
are measured per-cell *inside* a worker; on an oversubscribed pool the
absolute seconds inflate, so timing sweeps prefer ``workers <=`` physical
cores.


Section 3 of the paper evaluates four methods on a level-5 RAID model
(``C_H = 1, D_H = 3``, ``G ∈ {20, 40}``, ``ε = 10⁻¹²``):

* **Table 1** — steps of RR/RRL vs RSD for the availability measure
  ``UA(t)``, ``t ∈ {1, 10, 10², 10³, 10⁴, 10⁵}`` h;
* **Table 2** — steps of RR/RRL vs SR for the unreliability ``UR(t)``;
* **Figure 3** — CPU times of RRL/RR/RSD for ``UA(t)`` (log-log);
* **Figure 4** — CPU times of RRL/RR/SR for ``UR(t)``;
* in-text: ``UR(10⁵) = 0.50480`` (G=20) / ``0.74750`` (G=40), Laplace
  inversion ≈ 1–2% of RRL runtime, 105–329 abscissae.

``run_table1/2`` reproduce the step tables (exact integers — these do not
depend on hardware); ``run_figure3/4`` reproduce the timing series on the
current machine (shape, not absolute seconds). Cells whose *predicted*
step count exceeds the configured budget are skipped and reported as
``None`` — SR at ``Λt ≈ 4.4·10⁶`` is precisely the pathology the paper's
method avoids, and a benchmark run should not take hours by default.

The paper's published numbers are embedded (``PAPER_TABLE1`` etc.) so the
benchmark output can print measured-vs-paper side by side.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.analysis.reporting import format_series, format_table
from repro.analysis.runner import get_solver
from repro.batch.planner import ExecutionPlan, SolveRequest
from repro.batch.runner import BatchTask
from repro.service.service import SolveService
from repro.batch.scenarios import Scenario
from repro.exceptions import RegistryError, TruncationError
from repro.markov.base import TransientSolution
from repro.markov.ctmc import CTMC
from repro.markov.rewards import Measure, RewardStructure
from repro.markov.standard import sr_required_steps
from repro.solvers.registry import SolverSpec, get_spec
from repro.models.raid5 import (
    Raid5Params,
    build_raid5_availability,
    build_raid5_reliability,
)

__all__ = [
    "ExperimentConfig",
    "StepTable",
    "TimingTable",
    "GridResult",
    "grid_solve_requests",
    "run_steps_table",
    "run_timing_table",
    "run_table1",
    "run_table2",
    "run_figure3",
    "run_figure4",
    "run_ur_values",
    "run_grid",
    "PAPER_TABLE1",
    "PAPER_TABLE2",
    "PAPER_UR_1E5",
]

#: Paper Table 1 — steps for UA(t): G -> (RR/RRL column, RSD column),
#: aligned with times (1, 10, 1e2, 1e3, 1e4, 1e5).
PAPER_TABLE1: dict[int, tuple[list[int], list[int]]] = {
    20: ([56, 323, 2234, 2708, 2938, 3157],
         [66, 355, 2612, 2612, 2612, 2612]),
    40: ([86, 554, 4187, 5123, 5549, 5957],
         [99, 594, 4823, 4823, 4823, 4823]),
}

#: Paper Table 2 — steps for UR(t): G -> (RR/RRL column, SR column).
PAPER_TABLE2: dict[int, tuple[list[int], list[int]]] = {
    20: ([56, 323, 2233, 2708, 2937, 3157],
         [65, 354, 2726, 24844, 240958, 2386068]),
    40: ([86, 554, 4186, 5122, 5547, 5955],
         [98, 593, 4849, 45234, 442203, 4390141]),
}

#: Paper in-text UR(100000 h) values.
PAPER_UR_1E5: dict[int, float] = {20: 0.50480, 40: 0.74750}

#: The paper's evaluation grid.
PAPER_TIMES: tuple[float, ...] = (1.0, 10.0, 1e2, 1e3, 1e4, 1e5)
PAPER_GROUPS: tuple[int, ...] = (20, 40)


@dataclass(frozen=True)
class ExperimentConfig:
    """Scale knobs for the reproduction runs.

    The default configuration is laptop-friendly (reduced ``G`` and
    horizon); ``ExperimentConfig.paper()`` selects the paper's exact
    grid. ``sr_step_budget`` bounds the per-cell work of the SR and RR
    timing columns: cells whose predicted inner step count exceeds it
    report ``None`` instead of running for hours.
    """

    groups: tuple[int, ...] = (5, 10)
    times: tuple[float, ...] = (1.0, 10.0, 1e2, 1e3, 1e4)
    eps: float = 1e-12
    sr_step_budget: int = 2_000_000
    rr_inner_budget: int = 10_000_000
    spare_disks: int = 3
    spare_controllers: int = 1
    workers: int = 1
    """Pool size for the grid; 1 = inline (identical results)."""
    chunk_size: int = 1
    """Tasks per worker round-trip (see :class:`BatchRunner`)."""
    backend: str | None = None
    """Execution backend for the grid: ``"serial"``, ``"threads"``
    (GIL-releasing pool with process-wide shared caches),
    ``"processes"`` (isolated workers, per-worker caches) or ``None``
    for the ``$REPRO_BACKEND``-aware default. Every backend produces
    bit-identical numbers — this is an execution knob (see
    :mod:`repro.batch.backends`)."""
    fuse: bool = True
    """Compile solve columns through the fusion planner (coalescing +
    per-worker kernel cache); False plans one task per cell. Either way
    the numbers are identical — this is an execution knob."""
    memoize: bool = True
    """Let RR/RRL cells share the schedule transformation through each
    worker's :class:`~repro.core.schedule_cache.ScheduleCache`; False
    rebuilds per cell. Either way the numbers are identical — this is an
    execution knob."""

    @classmethod
    def paper(cls, *, sr_step_budget: int = 10_000_000,
              rr_inner_budget: int = 10_000_000,
              workers: int = 1, fuse: bool = True,
              memoize: bool = True,
              backend: str | None = None) -> "ExperimentConfig":
        """The paper's exact grid (G ∈ {20,40}, t up to 10⁵ h)."""
        return cls(groups=PAPER_GROUPS, times=PAPER_TIMES,
                   sr_step_budget=sr_step_budget,
                   rr_inner_budget=rr_inner_budget,
                   workers=workers, fuse=fuse, memoize=memoize,
                   backend=backend)

    @classmethod
    def quick(cls, *, workers: int = 1, fuse: bool = True,
              memoize: bool = True,
              backend: str | None = None) -> "ExperimentConfig":
        """A seconds-scale smoke grid (CI, queue end-to-end tests)."""
        return cls(groups=(2, 3), times=(1.0, 10.0, 100.0), eps=1e-10,
                   sr_step_budget=200_000, workers=workers, fuse=fuse,
                   memoize=memoize, backend=backend)

    def service(self) -> SolveService:
        """The :class:`~repro.service.service.SolveService` this
        configuration asks for — pool shape plus planner policy.

        (Replaces the pre-2.0 ``runner()`` accessor: the pool now rides
        inside the service instead of being wired up by callers.)
        """
        return SolveService(workers=self.workers,
                            chunk_size=self.chunk_size,
                            backend=self.backend,
                            fuse=self.fuse,
                            memoize=self.memoize)

    def params_for(self, g: int) -> Raid5Params:
        """RAID parameters for group count ``g`` (other knobs fixed)."""
        return Raid5Params(groups=g, spare_disks=self.spare_disks,
                           spare_controllers=self.spare_controllers)

    def step_budget_for(self, spec: SolverSpec) -> int | None:
        """This configuration's inner-step budget for one solver, keyed
        on the spec's declared budget kwarg (``None`` for methods whose
        cost does not grow with ``Λt``)."""
        if spec.step_budget_kwarg is None:
            return None
        budgets = {"max_steps": self.sr_step_budget,
                   "inner_max_steps": self.rr_inner_budget}
        try:
            return budgets[spec.step_budget_kwarg]
        except KeyError:
            raise RegistryError(
                f"solver {spec.name!r} declares step_budget_kwarg="
                f"{spec.step_budget_kwarg!r}, which ExperimentConfig has "
                "no budget field for; teach step_budget_for the mapping "
                "before running timing sweeps with this method") from None


@dataclass
class StepTable:
    """A reproduced step table plus the paper's numbers when available."""

    title: str
    times: tuple[float, ...]
    columns: dict[str, list[int | None]]
    paper_columns: dict[str, list[int]] = field(default_factory=dict)

    def render(self) -> str:
        names = ["t (h)"] + list(self.columns) + [
            f"paper:{k}" for k in self.paper_columns]
        rows: list[list[object]] = []
        for i, t in enumerate(self.times):
            row: list[object] = [f"{t:g}"]
            row += [self.columns[k][i] for k in self.columns]
            row += [self.paper_columns[k][i] for k in self.paper_columns]
            rows.append(row)
        return format_table(self.title, names, rows)

    def to_dict(self) -> dict:
        """JSON-serializable form (fixtures, ``--json`` dumps)."""
        return {"title": self.title, "times": list(self.times),
                "columns": {k: list(v) for k, v in self.columns.items()},
                "paper_columns": {k: list(v)
                                  for k, v in self.paper_columns.items()}}


@dataclass
class TimingTable:
    """A reproduced CPU-time 'figure' (series of seconds vs t)."""

    title: str
    times: tuple[float, ...]
    series: dict[str, list[float | None]]

    def render(self) -> str:
        return format_series(self.title, "t (h)", list(self.times),
                             self.series)

    def to_dict(self) -> dict:
        """JSON-serializable form (fixtures, ``--json`` dumps)."""
        return {"title": self.title, "times": list(self.times),
                "series": {k: list(v) for k, v in self.series.items()}}


def _build(config: ExperimentConfig, g: int, kind: str
           ) -> tuple[CTMC, RewardStructure]:
    if kind == "UA":
        model, rewards, _ = build_raid5_availability(config.params_for(g))
    elif kind == "UR":
        model, rewards, _ = build_raid5_reliability(config.params_for(g))
    else:
        raise ValueError(f"unknown measure kind {kind!r}")
    return model, rewards


def _raid5_scenario(config: ExperimentConfig, g: int, kind: str) -> Scenario:
    """The grid cell's model as a planner-friendly scenario description.

    Builds the *same* model as :func:`_build` (the scenario registry's
    raid5 family constructs identical ``Raid5Params``), so requests for
    one ``(G, kind)`` share a model fingerprint and can coalesce/fuse.
    """
    if kind not in ("UA", "UR"):
        raise ValueError(f"unknown measure kind {kind!r}")
    variant = "availability" if kind == "UA" else "reliability"
    p = config.params_for(g)
    return Scenario(name=f"grid-raid5-G{g}-{kind}", family="raid5",
                    params={"groups": p.groups,
                            "spare_disks": p.spare_disks,
                            "spare_controllers": p.spare_controllers,
                            "kind": variant},
                    measure=Measure.TRR, times=config.times, eps=config.eps)


def _execute_workload(config: ExperimentConfig,
                      requests: list[SolveRequest],
                      tasks: list[BatchTask],
                      service: SolveService | None
                      ) -> tuple[list, ExecutionPlan]:
    """Run the solve requests plus the passthrough tasks in one
    :meth:`SolveService.execute` fan-out; returns per-cell outcomes."""
    result = (service or config.service()).execute(requests, tasks)
    return result.all_outcomes, result.plan


def _steps_column(config: ExperimentConfig, g: int, kind: str,
                  column: str) -> list[int]:
    """One analytic step-table column (module-level: pool-picklable).

    Only methods whose :class:`~repro.solvers.registry.SolverSpec`
    declares a ``predict_steps`` hook come through here (SR: the Poisson
    quantile — running the solver is not needed to know its cost). The
    measured columns — RR/RRL (identical transformation phases) and
    RSD's detection loop — are solve-shaped and flow through the planner
    as :class:`SolveRequest` cells instead.
    """
    predict = get_spec(column).predict_steps
    if predict is None:
        raise ValueError(f"method {column!r} has no analytic step count")
    model, rewards = _build(config, g, kind)
    lam = model.max_output_rate
    return [predict(lam * t, config.eps / rewards.max_rate,
                    Measure.TRR) - 1
            for t in config.times]


def _steps_table_workload(config: ExperimentConfig, kind: str
                          ) -> tuple[list[SolveRequest], list[BatchTask]]:
    """Solve requests (RRL/RSD columns) + passthrough tasks (analytic
    columns) for one step table."""
    comparator = "RSD" if kind == "UA" else "SR"
    requests: list[SolveRequest] = []
    tasks: list[BatchTask] = []
    for g in config.groups:
        for column in ("RRL", comparator):
            key = ("steps", kind, g, column)
            if get_spec(column).predict_steps is not None:
                tasks.append(BatchTask(fn=_steps_column,
                                       args=(config, g, kind, column),
                                       key=key))
            else:
                requests.append(SolveRequest(
                    scenario=_raid5_scenario(config, g, kind),
                    measure=Measure.TRR, times=config.times,
                    eps=config.eps, method=column, key=key))
    return requests, tasks


def _assemble_steps_table(config: ExperimentConfig, kind: str,
                          outcomes) -> StepTable:
    comparator = "RSD" if kind == "UA" else "SR"
    by_cell: dict[tuple, list[int | None]] = {}
    for out in outcomes:
        _, _, g, column = out.key
        value = out.unwrap()
        if isinstance(value, TransientSolution):
            value = [int(s) for s in value.steps]
        by_cell[(g, column)] = value
    # Canonical column order, independent of how the plan interleaved
    # requests and passthrough tasks. Column headers come from the specs'
    # display metadata (the paper prints RR and RRL as one "RR/RRL"
    # column — they share the transformation phase and step counts).
    columns: dict[str, list[int | None]] = {}
    paper_cols: dict[str, list[int]] = {}
    for g in config.groups:
        for column in ("RRL", comparator):
            label = f"G={g} {get_spec(column).table_label}"
            columns[label] = by_cell[(g, column)]
    for g in config.groups:
        paper = (PAPER_TABLE1 if kind == "UA" else PAPER_TABLE2).get(g)
        if paper is not None and config.times == PAPER_TIMES:
            paper_cols[f"G={g} {get_spec('RRL').table_label}"] = paper[0]
            paper_cols[f"G={g} {comparator}"] = paper[1]
    title = ("Table 1: steps for UA(t) — RR/RRL vs RSD" if kind == "UA"
             else "Table 2: steps for UR(t) — RR/RRL vs SR")
    return StepTable(title=title, times=config.times, columns=columns,
                     paper_columns=paper_cols)


def run_steps_table(config: ExperimentConfig, kind: str,
                    service: SolveService | None = None) -> StepTable:
    """Reproduce a step table (Table 1 for ``kind='UA'``, Table 2 for
    ``'UR'``) by planning one cell per ``(G, column)`` over ``service``."""
    requests, tasks = _steps_table_workload(config, kind)
    outcomes, _ = _execute_workload(config, requests, tasks, service)
    return _assemble_steps_table(config, kind, outcomes)


def _timed_solve(method: str, model: CTMC, rewards: RewardStructure,
                 t: float, eps: float, **kwargs) -> float | None:
    solver = get_solver(method, **kwargs)
    start = time.perf_counter()
    try:
        solver.solve(model, rewards, Measure.TRR, [t], eps)
    except TruncationError:
        return None
    return time.perf_counter() - start


def _timing_column(config: ExperimentConfig, g: int, kind: str,
                   method: str) -> list[float | None]:
    """One timing-figure series (module-level: pool workers pickle this).

    Each cell times one standalone ``solve`` at a single ``t`` (the
    paper's experimental setup). Methods whose spec declares a
    ``step_budget_kwarg`` (their cost grows with ``Λt``: SR's sweep,
    RR's inner SR solve) are capped by the matching config budget —
    over-budget cells are skipped and reported as ``None``.
    """
    spec = get_spec(method)
    budget = config.step_budget_for(spec)
    model, rewards = _build(config, g, kind)
    lam = model.max_output_rate
    vals: list[float | None] = []
    for t in config.times:
        kwargs = {}
        if budget is not None:
            # The SR step prediction is the Λt-cost proxy for every
            # O(Λt)-stepping method (RR's inner solve is an SR solve).
            predicted = sr_required_steps(
                lam * t, config.eps / rewards.max_rate, Measure.TRR)
            if predicted > budget:
                vals.append(None)
                continue
            kwargs[spec.step_budget_kwarg] = budget
        vals.append(_timed_solve(method, model, rewards, t,
                                 config.eps, **kwargs))
    return vals


def _timing_methods(kind: str) -> tuple[str, ...]:
    return ("RRL", "RR", "RSD") if kind == "UA" else ("RRL", "RR", "SR")


def _timing_table_tasks(config: ExperimentConfig, kind: str
                        ) -> list[BatchTask]:
    return [BatchTask(fn=_timing_column, args=(config, g, kind, method),
                      key=("timing", kind, g, method))
            for g in config.groups
            for method in _timing_methods(kind)]


def _assemble_timing_table(config: ExperimentConfig, kind: str,
                           outcomes) -> TimingTable:
    series: dict[str, list[float | None]] = {}
    for out in outcomes:
        _, _, g, method = out.key
        series[f"G={g}, {method}"] = out.unwrap()
    title = ("Figure 3: CPU seconds, UA(t) — RRL vs RR vs RSD"
             if kind == "UA"
             else "Figure 4: CPU seconds, UR(t) — RRL vs RR vs SR")
    return TimingTable(title=title, times=config.times, series=series)


def run_timing_table(config: ExperimentConfig, kind: str,
                     service: SolveService | None = None) -> TimingTable:
    """Reproduce a CPU-time figure (Figure 3 for ``'UA'``, 4 for ``'UR'``)
    by fanning one task per ``(G, method)`` series over ``service``.

    Cells are timed inside the worker; oversubscribed pools inflate the
    absolute seconds, so keep ``workers`` within the physical core count
    when the numbers (rather than just the shapes) matter.
    """
    tasks = _timing_table_tasks(config, kind)
    outcomes, _ = _execute_workload(config, [], tasks, service)
    return _assemble_timing_table(config, kind, outcomes)


def run_table1(config: ExperimentConfig | None = None,
               service: SolveService | None = None) -> StepTable:
    """Paper Table 1 (steps, UA)."""
    return run_steps_table(config or ExperimentConfig(), "UA", service)


def run_table2(config: ExperimentConfig | None = None,
               service: SolveService | None = None) -> StepTable:
    """Paper Table 2 (steps, UR)."""
    return run_steps_table(config or ExperimentConfig(), "UR", service)


def run_figure3(config: ExperimentConfig | None = None,
                service: SolveService | None = None) -> TimingTable:
    """Paper Figure 3 (CPU times, UA)."""
    return run_timing_table(config or ExperimentConfig(), "UA", service)


def run_figure4(config: ExperimentConfig | None = None,
                service: SolveService | None = None) -> TimingTable:
    """Paper Figure 4 (CPU times, UR)."""
    return run_timing_table(config or ExperimentConfig(), "UR", service)


def _ur_requests(config: ExperimentConfig) -> list[SolveRequest]:
    """RRL unreliability sweeps, one request per model size.

    Identical in signature to the Table 2 RR/RRL step column's request,
    so in a full grid the planner coalesces the two into a single RRL
    solve per ``G``.
    """
    return [SolveRequest(scenario=_raid5_scenario(config, g, "UR"),
                         measure=Measure.TRR, times=config.times,
                         eps=config.eps, method="RRL", key=("ur", g))
            for g in config.groups]


def _assemble_ur(outcomes
                 ) -> tuple[dict[int, list[float]], dict[int, list[int]]]:
    values: dict[int, list[float]] = {}
    abscissae: dict[int, list[int]] = {}
    for out in outcomes:
        sol = out.unwrap()
        values[out.key[1]] = [float(v) for v in sol.values]
        abscissae[out.key[1]] = [int(a) for a in sol.stats["n_abscissae"]]
    return values, abscissae


def run_ur_values(config: ExperimentConfig | None = None,
                  service: SolveService | None = None
                  ) -> tuple[dict[int, list[float]], dict[int, list[int]]]:
    """In-text UR(t) values and RRL abscissa counts, per model size."""
    config = config or ExperimentConfig()
    outcomes, _ = _execute_workload(config, _ur_requests(config), [],
                                    service)
    return _assemble_ur(outcomes)


def grid_solve_requests(config: ExperimentConfig | None = None
                        ) -> list[SolveRequest]:
    """Every solve-shaped cell of the evaluation grid, as portable
    requests.

    This is the unit of work the service/queue layer transports: the
    RRL/RSD step columns of Tables 1–2 plus the UR value sweep. The
    analytic SR column (computed, not solved) and the timing cells
    (which must pay their own standalone setup inside one process) are
    process-local passthroughs and deliberately stay out. Submitting
    these to a :class:`~repro.service.queue.JobQueue` and collecting is
    bit-identical to :func:`run_grid`'s in-process execution of the same
    cells.
    """
    config = config or ExperimentConfig()
    requests: list[SolveRequest] = []
    for kind in ("UA", "UR"):
        kind_requests, _ = _steps_table_workload(config, kind)
        requests += kind_requests
    requests += _ur_requests(config)
    return requests


@dataclass
class GridResult:
    """Everything the paper's evaluation produces, in one bundle."""

    table1: StepTable
    table2: StepTable
    ur_values: dict[int, list[float]]
    ur_abscissae: dict[int, list[int]]
    figure3: TimingTable | None = None
    figure4: TimingTable | None = None
    plan_summary: str | None = None
    """One-line description of the execution plan the grid ran under."""

    def render(self) -> str:
        parts = [self.table1.render(), "", self.table2.render(), ""]
        for g, vals in self.ur_values.items():
            paper = PAPER_UR_1E5.get(g)
            suffix = f"  (paper UR(1e5)={paper})" if paper else ""
            parts.append(f"G={g} UR: "
                         + " ".join(f"{v:.5f}" for v in vals)
                         + f"  abscissae={self.ur_abscissae[g]}{suffix}")
        for fig in (self.figure3, self.figure4):
            if fig is not None:
                parts += ["", fig.render()]
        return "\n".join(parts)

    def to_dict(self) -> dict:
        return {
            "table1": self.table1.to_dict(),
            "table2": self.table2.to_dict(),
            "ur_values": {str(g): v for g, v in self.ur_values.items()},
            "ur_abscissae": {str(g): v
                             for g, v in self.ur_abscissae.items()},
            "figure3": self.figure3.to_dict() if self.figure3 else None,
            "figure4": self.figure4.to_dict() if self.figure4 else None,
            "plan_summary": self.plan_summary,
        }


def run_grid(config: ExperimentConfig | None = None,
             service: SolveService | None = None,
             include_timings: bool = True) -> GridResult:
    """Run the full evaluation grid through one service fan-out.

    Every column of Tables 1–2, the UR value sweep, and (optionally)
    every series of Figures 3–4 becomes one cell. Solve cells are
    compiled by the fusion planner (with ``config.fuse``), so e.g. the
    Table 2 RR/RRL column and the UR sweep coalesce into one solve per
    ``G``; then a single :meth:`SolveService.execute` call runs the
    whole workload, keeping ``k`` workers' worth of columns in flight.
    """
    config = config or ExperimentConfig()
    requests: list[SolveRequest] = []
    tasks: list[BatchTask] = []
    for kind in ("UA", "UR"):
        kind_requests, kind_tasks = _steps_table_workload(config, kind)
        requests += kind_requests
        tasks += kind_tasks
    requests += _ur_requests(config)
    if include_timings:
        tasks += _timing_table_tasks(config, "UA")
        tasks += _timing_table_tasks(config, "UR")
    outcomes, plan = _execute_workload(config, requests, tasks, service)
    by_kind: dict[str, list] = {}
    for out in outcomes:
        by_kind.setdefault((out.key[0], out.key[1]) if out.key[0] != "ur"
                           else ("ur", None), []).append(out)
    table1 = _assemble_steps_table(config, "UA", by_kind[("steps", "UA")])
    table2 = _assemble_steps_table(config, "UR", by_kind[("steps", "UR")])
    ur_values, ur_abscissae = _assemble_ur(by_kind[("ur", None)])
    figure3 = figure4 = None
    if include_timings:
        figure3 = _assemble_timing_table(config, "UA",
                                         by_kind[("timing", "UA")])
        figure4 = _assemble_timing_table(config, "UR",
                                         by_kind[("timing", "UR")])
    return GridResult(table1=table1, table2=table2, ur_values=ur_values,
                      ur_abscissae=ur_abscissae, figure3=figure3,
                      figure4=figure4, plan_summary=plan.summary())
