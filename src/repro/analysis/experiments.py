"""Harness regenerating every table and figure of the paper's evaluation.

Every table/figure is decomposed into independent *column tasks* (one per
``(G, method)`` pair) and executed through a
:class:`~repro.batch.runner.BatchRunner`, so the whole grid fans out over
a process pool: ``ExperimentConfig(workers=4)`` or
``run_grid(config, runner=...)``. With ``workers=1`` (the default) the
tasks run inline and the results are identical — the task decomposition
never changes any number, only where it is computed. Timing columns are
still measured per-cell *inside* a worker; on an oversubscribed pool the
absolute seconds inflate, so timing sweeps prefer ``workers <=`` physical
cores.


Section 3 of the paper evaluates four methods on a level-5 RAID model
(``C_H = 1, D_H = 3``, ``G ∈ {20, 40}``, ``ε = 10⁻¹²``):

* **Table 1** — steps of RR/RRL vs RSD for the availability measure
  ``UA(t)``, ``t ∈ {1, 10, 10², 10³, 10⁴, 10⁵}`` h;
* **Table 2** — steps of RR/RRL vs SR for the unreliability ``UR(t)``;
* **Figure 3** — CPU times of RRL/RR/RSD for ``UA(t)`` (log-log);
* **Figure 4** — CPU times of RRL/RR/SR for ``UR(t)``;
* in-text: ``UR(10⁵) = 0.50480`` (G=20) / ``0.74750`` (G=40), Laplace
  inversion ≈ 1–2% of RRL runtime, 105–329 abscissae.

``run_table1/2`` reproduce the step tables (exact integers — these do not
depend on hardware); ``run_figure3/4`` reproduce the timing series on the
current machine (shape, not absolute seconds). Cells whose *predicted*
step count exceeds the configured budget are skipped and reported as
``None`` — SR at ``Λt ≈ 4.4·10⁶`` is precisely the pathology the paper's
method avoids, and a benchmark run should not take hours by default.

The paper's published numbers are embedded (``PAPER_TABLE1`` etc.) so the
benchmark output can print measured-vs-paper side by side.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.analysis.reporting import format_series, format_table
from repro.analysis.runner import get_solver
from repro.batch.runner import BatchRunner, BatchTask
from repro.core.rrl_solver import RRLSolver
from repro.exceptions import TruncationError
from repro.markov.ctmc import CTMC
from repro.markov.rewards import Measure, RewardStructure
from repro.markov.standard import sr_required_steps
from repro.models.raid5 import (
    Raid5Params,
    build_raid5_availability,
    build_raid5_reliability,
)

__all__ = [
    "ExperimentConfig",
    "StepTable",
    "TimingTable",
    "GridResult",
    "run_steps_table",
    "run_timing_table",
    "run_table1",
    "run_table2",
    "run_figure3",
    "run_figure4",
    "run_ur_values",
    "run_grid",
    "PAPER_TABLE1",
    "PAPER_TABLE2",
    "PAPER_UR_1E5",
]

#: Paper Table 1 — steps for UA(t): G -> (RR/RRL column, RSD column),
#: aligned with times (1, 10, 1e2, 1e3, 1e4, 1e5).
PAPER_TABLE1: dict[int, tuple[list[int], list[int]]] = {
    20: ([56, 323, 2234, 2708, 2938, 3157],
         [66, 355, 2612, 2612, 2612, 2612]),
    40: ([86, 554, 4187, 5123, 5549, 5957],
         [99, 594, 4823, 4823, 4823, 4823]),
}

#: Paper Table 2 — steps for UR(t): G -> (RR/RRL column, SR column).
PAPER_TABLE2: dict[int, tuple[list[int], list[int]]] = {
    20: ([56, 323, 2233, 2708, 2937, 3157],
         [65, 354, 2726, 24844, 240958, 2386068]),
    40: ([86, 554, 4186, 5122, 5547, 5955],
         [98, 593, 4849, 45234, 442203, 4390141]),
}

#: Paper in-text UR(100000 h) values.
PAPER_UR_1E5: dict[int, float] = {20: 0.50480, 40: 0.74750}

#: The paper's evaluation grid.
PAPER_TIMES: tuple[float, ...] = (1.0, 10.0, 1e2, 1e3, 1e4, 1e5)
PAPER_GROUPS: tuple[int, ...] = (20, 40)


@dataclass(frozen=True)
class ExperimentConfig:
    """Scale knobs for the reproduction runs.

    The default configuration is laptop-friendly (reduced ``G`` and
    horizon); ``ExperimentConfig.paper()`` selects the paper's exact
    grid. ``sr_step_budget`` bounds the per-cell work of the SR and RR
    timing columns: cells whose predicted inner step count exceeds it
    report ``None`` instead of running for hours.
    """

    groups: tuple[int, ...] = (5, 10)
    times: tuple[float, ...] = (1.0, 10.0, 1e2, 1e3, 1e4)
    eps: float = 1e-12
    sr_step_budget: int = 2_000_000
    rr_inner_budget: int = 10_000_000
    spare_disks: int = 3
    spare_controllers: int = 1
    workers: int = 1
    """Process-pool size for the grid; 1 = inline (identical results)."""
    chunk_size: int = 1
    """Tasks per worker round-trip (see :class:`BatchRunner`)."""

    @classmethod
    def paper(cls, *, sr_step_budget: int = 10_000_000,
              rr_inner_budget: int = 10_000_000,
              workers: int = 1) -> "ExperimentConfig":
        """The paper's exact grid (G ∈ {20,40}, t up to 10⁵ h)."""
        return cls(groups=PAPER_GROUPS, times=PAPER_TIMES,
                   sr_step_budget=sr_step_budget,
                   rr_inner_budget=rr_inner_budget,
                   workers=workers)

    def runner(self) -> BatchRunner:
        """The :class:`BatchRunner` this configuration asks for."""
        return BatchRunner(max_workers=self.workers,
                           chunk_size=self.chunk_size)

    def params_for(self, g: int) -> Raid5Params:
        """RAID parameters for group count ``g`` (other knobs fixed)."""
        return Raid5Params(groups=g, spare_disks=self.spare_disks,
                           spare_controllers=self.spare_controllers)


@dataclass
class StepTable:
    """A reproduced step table plus the paper's numbers when available."""

    title: str
    times: tuple[float, ...]
    columns: dict[str, list[int | None]]
    paper_columns: dict[str, list[int]] = field(default_factory=dict)

    def render(self) -> str:
        names = ["t (h)"] + list(self.columns) + [
            f"paper:{k}" for k in self.paper_columns]
        rows: list[list[object]] = []
        for i, t in enumerate(self.times):
            row: list[object] = [f"{t:g}"]
            row += [self.columns[k][i] for k in self.columns]
            row += [self.paper_columns[k][i] for k in self.paper_columns]
            rows.append(row)
        return format_table(self.title, names, rows)

    def to_dict(self) -> dict:
        """JSON-serializable form (fixtures, ``--json`` dumps)."""
        return {"title": self.title, "times": list(self.times),
                "columns": {k: list(v) for k, v in self.columns.items()},
                "paper_columns": {k: list(v)
                                  for k, v in self.paper_columns.items()}}


@dataclass
class TimingTable:
    """A reproduced CPU-time 'figure' (series of seconds vs t)."""

    title: str
    times: tuple[float, ...]
    series: dict[str, list[float | None]]

    def render(self) -> str:
        return format_series(self.title, "t (h)", list(self.times),
                             self.series)

    def to_dict(self) -> dict:
        """JSON-serializable form (fixtures, ``--json`` dumps)."""
        return {"title": self.title, "times": list(self.times),
                "series": {k: list(v) for k, v in self.series.items()}}


def _build(config: ExperimentConfig, g: int, kind: str
           ) -> tuple[CTMC, RewardStructure]:
    if kind == "UA":
        model, rewards, _ = build_raid5_availability(config.params_for(g))
    elif kind == "UR":
        model, rewards, _ = build_raid5_reliability(config.params_for(g))
    else:
        raise ValueError(f"unknown measure kind {kind!r}")
    return model, rewards


def _steps_column(config: ExperimentConfig, g: int, kind: str,
                  column: str) -> list[int]:
    """One step-table column (module-level: pool workers pickle this).

    RR and RRL share their step counts (the transformation phase is
    identical); the RSD column is measured by running the detection loop;
    the SR column is *computed* from the Poisson quantile (running SR is
    not needed to know its step count).
    """
    model, rewards = _build(config, g, kind)
    if column == "RRL":
        sol = RRLSolver().solve(model, rewards, Measure.TRR,
                                list(config.times), config.eps)
        return [int(s) for s in sol.steps]
    if column == "RSD":
        sol = get_solver("RSD").solve(model, rewards, Measure.TRR,
                                      list(config.times), config.eps)
        return [int(s) for s in sol.steps]
    if column == "SR":
        lam = model.max_output_rate
        return [sr_required_steps(lam * t, config.eps / rewards.max_rate,
                                  Measure.TRR) - 1
                for t in config.times]
    raise ValueError(f"unknown step column {column!r}")


def _steps_table_tasks(config: ExperimentConfig, kind: str
                       ) -> list[BatchTask]:
    comparator = "RSD" if kind == "UA" else "SR"
    return [BatchTask(fn=_steps_column, args=(config, g, kind, column),
                      key=("steps", kind, g, column))
            for g in config.groups
            for column in ("RRL", comparator)]


def _assemble_steps_table(config: ExperimentConfig, kind: str,
                          outcomes) -> StepTable:
    comparator = "RSD" if kind == "UA" else "SR"
    columns: dict[str, list[int | None]] = {}
    paper_cols: dict[str, list[int]] = {}
    for out in outcomes:
        _, _, g, column = out.key
        label = f"G={g} RR/RRL" if column == "RRL" else f"G={g} {column}"
        columns[label] = out.unwrap()
    for g in config.groups:
        paper = (PAPER_TABLE1 if kind == "UA" else PAPER_TABLE2).get(g)
        if paper is not None and config.times == PAPER_TIMES:
            paper_cols[f"G={g} RR/RRL"] = paper[0]
            paper_cols[f"G={g} {comparator}"] = paper[1]
    title = ("Table 1: steps for UA(t) — RR/RRL vs RSD" if kind == "UA"
             else "Table 2: steps for UR(t) — RR/RRL vs SR")
    return StepTable(title=title, times=config.times, columns=columns,
                     paper_columns=paper_cols)


def run_steps_table(config: ExperimentConfig, kind: str,
                    runner: BatchRunner | None = None) -> StepTable:
    """Reproduce a step table (Table 1 for ``kind='UA'``, Table 2 for
    ``'UR'``) by fanning one task per ``(G, column)`` over ``runner``."""
    tasks = _steps_table_tasks(config, kind)
    outcomes = (runner or config.runner()).run(tasks)
    return _assemble_steps_table(config, kind, outcomes)


def _timed_solve(method: str, model: CTMC, rewards: RewardStructure,
                 t: float, eps: float, **kwargs) -> float | None:
    solver = get_solver(method, **kwargs)
    start = time.perf_counter()
    try:
        solver.solve(model, rewards, Measure.TRR, [t], eps)
    except TruncationError:
        return None
    return time.perf_counter() - start


def _timing_column(config: ExperimentConfig, g: int, kind: str,
                   method: str) -> list[float | None]:
    """One timing-figure series (module-level: pool workers pickle this).

    Each cell times one standalone ``solve`` at a single ``t`` (the
    paper's experimental setup). Over-budget SR/RR cells are skipped and
    reported as ``None``.
    """
    model, rewards = _build(config, g, kind)
    lam = model.max_output_rate
    vals: list[float | None] = []
    for t in config.times:
        predicted = sr_required_steps(
            lam * t, config.eps / rewards.max_rate, Measure.TRR)
        if method == "SR" and predicted > config.sr_step_budget:
            vals.append(None)
            continue
        kwargs = {}
        if method == "RR":
            if predicted > config.rr_inner_budget:
                vals.append(None)
                continue
            kwargs["inner_max_steps"] = config.rr_inner_budget
        elif method == "SR":
            kwargs["max_steps"] = config.sr_step_budget
        vals.append(_timed_solve(method, model, rewards, t,
                                 config.eps, **kwargs))
    return vals


def _timing_methods(kind: str) -> tuple[str, ...]:
    return ("RRL", "RR", "RSD") if kind == "UA" else ("RRL", "RR", "SR")


def _timing_table_tasks(config: ExperimentConfig, kind: str
                        ) -> list[BatchTask]:
    return [BatchTask(fn=_timing_column, args=(config, g, kind, method),
                      key=("timing", kind, g, method))
            for g in config.groups
            for method in _timing_methods(kind)]


def _assemble_timing_table(config: ExperimentConfig, kind: str,
                           outcomes) -> TimingTable:
    series: dict[str, list[float | None]] = {}
    for out in outcomes:
        _, _, g, method = out.key
        series[f"G={g}, {method}"] = out.unwrap()
    title = ("Figure 3: CPU seconds, UA(t) — RRL vs RR vs RSD"
             if kind == "UA"
             else "Figure 4: CPU seconds, UR(t) — RRL vs RR vs SR")
    return TimingTable(title=title, times=config.times, series=series)


def run_timing_table(config: ExperimentConfig, kind: str,
                     runner: BatchRunner | None = None) -> TimingTable:
    """Reproduce a CPU-time figure (Figure 3 for ``'UA'``, 4 for ``'UR'``)
    by fanning one task per ``(G, method)`` series over ``runner``.

    Cells are timed inside the worker; oversubscribed pools inflate the
    absolute seconds, so keep ``workers`` within the physical core count
    when the numbers (rather than just the shapes) matter.
    """
    tasks = _timing_table_tasks(config, kind)
    outcomes = (runner or config.runner()).run(tasks)
    return _assemble_timing_table(config, kind, outcomes)


def run_table1(config: ExperimentConfig | None = None,
               runner: BatchRunner | None = None) -> StepTable:
    """Paper Table 1 (steps, UA)."""
    return run_steps_table(config or ExperimentConfig(), "UA", runner)


def run_table2(config: ExperimentConfig | None = None,
               runner: BatchRunner | None = None) -> StepTable:
    """Paper Table 2 (steps, UR)."""
    return run_steps_table(config or ExperimentConfig(), "UR", runner)


def run_figure3(config: ExperimentConfig | None = None,
                runner: BatchRunner | None = None) -> TimingTable:
    """Paper Figure 3 (CPU times, UA)."""
    return run_timing_table(config or ExperimentConfig(), "UA", runner)


def run_figure4(config: ExperimentConfig | None = None,
                runner: BatchRunner | None = None) -> TimingTable:
    """Paper Figure 4 (CPU times, UR)."""
    return run_timing_table(config or ExperimentConfig(), "UR", runner)


def _ur_column(config: ExperimentConfig, g: int) -> dict:
    """RRL unreliability sweep for one model size (pool-picklable)."""
    model, rewards = _build(config, g, "UR")
    sol = RRLSolver().solve(model, rewards, Measure.TRR,
                            list(config.times), config.eps)
    return {"values": [float(v) for v in sol.values],
            "abscissae": [int(a) for a in sol.stats["n_abscissae"]]}


def _ur_tasks(config: ExperimentConfig) -> list[BatchTask]:
    return [BatchTask(fn=_ur_column, args=(config, g), key=("ur", g))
            for g in config.groups]


def _assemble_ur(outcomes
                 ) -> tuple[dict[int, list[float]], dict[int, list[int]]]:
    values: dict[int, list[float]] = {}
    abscissae: dict[int, list[int]] = {}
    for out in outcomes:
        data = out.unwrap()
        values[out.key[1]] = data["values"]
        abscissae[out.key[1]] = data["abscissae"]
    return values, abscissae


def run_ur_values(config: ExperimentConfig | None = None,
                  runner: BatchRunner | None = None
                  ) -> tuple[dict[int, list[float]], dict[int, list[int]]]:
    """In-text UR(t) values and RRL abscissa counts, per model size."""
    config = config or ExperimentConfig()
    outcomes = (runner or config.runner()).run(_ur_tasks(config))
    return _assemble_ur(outcomes)


@dataclass
class GridResult:
    """Everything the paper's evaluation produces, in one bundle."""

    table1: StepTable
    table2: StepTable
    ur_values: dict[int, list[float]]
    ur_abscissae: dict[int, list[int]]
    figure3: TimingTable | None = None
    figure4: TimingTable | None = None

    def render(self) -> str:
        parts = [self.table1.render(), "", self.table2.render(), ""]
        for g, vals in self.ur_values.items():
            paper = PAPER_UR_1E5.get(g)
            suffix = f"  (paper UR(1e5)={paper})" if paper else ""
            parts.append(f"G={g} UR: "
                         + " ".join(f"{v:.5f}" for v in vals)
                         + f"  abscissae={self.ur_abscissae[g]}{suffix}")
        for fig in (self.figure3, self.figure4):
            if fig is not None:
                parts += ["", fig.render()]
        return "\n".join(parts)

    def to_dict(self) -> dict:
        return {
            "table1": self.table1.to_dict(),
            "table2": self.table2.to_dict(),
            "ur_values": {str(g): v for g, v in self.ur_values.items()},
            "ur_abscissae": {str(g): v
                             for g, v in self.ur_abscissae.items()},
            "figure3": self.figure3.to_dict() if self.figure3 else None,
            "figure4": self.figure4.to_dict() if self.figure4 else None,
        }


def run_grid(config: ExperimentConfig | None = None,
             runner: BatchRunner | None = None,
             include_timings: bool = True) -> GridResult:
    """Run the full evaluation grid through one batch fan-out.

    Every column of Tables 1–2, the UR value sweep, and (optionally) every
    series of Figures 3–4 becomes one task; a single
    :meth:`BatchRunner.run` call executes them all, so a pool of ``k``
    workers keeps ``k`` columns in flight at once.
    """
    config = config or ExperimentConfig()
    tasks: list[BatchTask] = []
    tasks += _steps_table_tasks(config, "UA")
    tasks += _steps_table_tasks(config, "UR")
    tasks += _ur_tasks(config)
    if include_timings:
        tasks += _timing_table_tasks(config, "UA")
        tasks += _timing_table_tasks(config, "UR")
    outcomes = (runner or config.runner()).run(tasks)
    by_kind: dict[str, list] = {}
    for out in outcomes:
        by_kind.setdefault((out.key[0], out.key[1]) if out.key[0] != "ur"
                           else ("ur", None), []).append(out)
    table1 = _assemble_steps_table(config, "UA", by_kind[("steps", "UA")])
    table2 = _assemble_steps_table(config, "UR", by_kind[("steps", "UR")])
    ur_values, ur_abscissae = _assemble_ur(by_kind[("ur", None)])
    figure3 = figure4 = None
    if include_timings:
        figure3 = _assemble_timing_table(config, "UA",
                                         by_kind[("timing", "UA")])
        figure4 = _assemble_timing_table(config, "UR",
                                         by_kind[("timing", "UR")])
    return GridResult(table1=table1, table2=table2, ur_values=ur_values,
                      ur_abscissae=ur_abscissae, figure3=figure3,
                      figure4=figure4)
