"""``SolveService`` — the one front door for executing solve workloads.

Before this facade existed the public API was three disjoint surfaces:
per-solver ``solve(...)``, :func:`repro.analysis.runner.solve`, and the
planner's ``execute_requests``. ``SolveService`` is the canonical
replacement for the batch-shaped ones: it owns the planner policy
(coalescing + fusion), the :class:`~repro.batch.runner.BatchRunner` pool
it executes on (and with it the per-worker kernel-cache behaviour), and
the scatter bookkeeping that maps task results back onto requests — so
``analysis``, ``batch.scenarios``, the CLI and the scripts never touch
planner or runner internals again.

The facade adds no numerics of its own: ``SolveService(...).solve(reqs)``
is bit-for-bit identical to the old ``execute_requests(reqs, runner)``
plumbing (pinned by ``tests/service/test_service.py`` and measured by
``benchmarks/bench_batch.py``), which is what makes it safe for every
consumer to route through it unconditionally.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from dataclasses import dataclass

from repro.batch.backends import Backend
from repro.batch.planner import ExecutionPlan, plan_requests, SolveRequest
from repro.batch.runner import BatchOutcome, BatchRunner, BatchTask
from repro.markov.base import TransientSolution

__all__ = ["SolveService", "ServiceResult"]


@dataclass
class ServiceResult:
    """Everything one :meth:`SolveService.execute` fan-out produced.

    ``outcomes`` holds one :class:`~repro.batch.runner.BatchOutcome` per
    submitted request, in submission order, however the plan coalesced or
    fused the work; ``task_outcomes`` holds one outcome per passthrough
    task, in task order.
    """

    outcomes: list[BatchOutcome]
    task_outcomes: list[BatchOutcome]
    plan: ExecutionPlan

    @property
    def all_outcomes(self) -> list[BatchOutcome]:
        """Request outcomes followed by passthrough-task outcomes."""
        return self.outcomes + self.task_outcomes

    def solutions(self) -> list[TransientSolution]:
        """Unwrapped per-request values (raises on the first failure)."""
        return [o.unwrap() for o in self.outcomes]


class SolveService:
    """Facade wrapping planner → runner → scatter behind one call.

    Parameters
    ----------
    workers, chunk_size, task_timeout, mp_context:
        Pool shape, forwarded to the internally-built
        :class:`~repro.batch.runner.BatchRunner` (ignored when ``runner``
        is given). The default ``workers=1`` runs everything inline with
        identical numbers.
    backend:
        Execution strategy (``"serial"`` / ``"threads"`` /
        ``"processes"``, a :class:`~repro.batch.backends.Backend`
        instance, or ``None`` for the ``$REPRO_BACKEND``-aware default),
        forwarded to the runner. Every backend produces bit-identical
        outcomes; they differ only in parallelism, isolation and cache
        topology — see :mod:`repro.batch.backends`.
    fuse:
        Planner policy: coalesce duplicates and fuse SR/RSD cells sharing
        a model (default). ``False`` plans one task per request — same
        numbers, per-cell stepping price — which is the A/B baseline the
        verify paths compare against.
    memoize:
        Planner policy: let schedule-memoizable solvers (RR/RRL, per
        their registry capability) share the ``K + L`` schedule
        transformation across cells through each worker's
        :class:`~repro.core.schedule_cache.ScheduleCache` (default).
        ``False`` rebuilds the transformation per cell — same numbers,
        the A/B baseline for the memoization verify.
    runner:
        A pre-built runner to execute on instead (e.g. one shared across
        several services).
    """

    def __init__(self,
                 *,
                 workers: int = 1,
                 chunk_size: int = 1,
                 task_timeout: float | None = None,
                 mp_context: str | None = None,
                 backend: "Backend | str | None" = None,
                 fuse: bool = True,
                 memoize: bool = True,
                 runner: BatchRunner | None = None) -> None:
        if runner is None:
            runner = BatchRunner(max_workers=workers,
                                 chunk_size=chunk_size,
                                 task_timeout=task_timeout,
                                 mp_context=mp_context,
                                 backend=backend)
        self._runner = runner
        self._fuse = bool(fuse)
        self._memoize = bool(memoize)

    @property
    def fuse(self) -> bool:
        """Whether this service compiles requests through the fusion
        planner."""
        return self._fuse

    @property
    def memoize(self) -> bool:
        """Whether this service lets RR/RRL cells share schedule
        transformations per worker."""
        return self._memoize

    @property
    def runner(self) -> BatchRunner:
        """The runner this service executes on."""
        return self._runner

    @property
    def backend(self) -> Backend:
        """The execution backend the underlying runner fans out on."""
        return self._runner.backend

    def plan(self, requests: Iterable[SolveRequest]) -> ExecutionPlan:
        """Compile requests under this service's planner policy (without
        executing — useful for cost inspection and ``plan.summary()``)."""
        return plan_requests(requests, fuse=self._fuse,
                             memoize=self._memoize)

    def execute(self,
                requests: Iterable[SolveRequest],
                tasks: Sequence[BatchTask] = ()) -> ServiceResult:
        """Run a mixed workload in one pool fan-out.

        ``requests`` are compiled by the planner; ``tasks`` are opaque
        passthroughs (analytic columns, timing cells) appended to the
        same :meth:`~repro.batch.runner.BatchRunner.run` call so the
        whole workload shares the worker pool.
        """
        requests = list(requests)
        tasks = list(tasks)
        plan = plan_requests(requests, fuse=self._fuse,
                             memoize=self._memoize)
        outcomes = self._runner.run(plan.tasks + tasks)
        return ServiceResult(
            outcomes=plan.scatter(outcomes[:plan.n_tasks]),
            task_outcomes=outcomes[plan.n_tasks:],
            plan=plan)

    def solve(self, requests: Iterable[SolveRequest]) -> list[BatchOutcome]:
        """One outcome per request, in submission order."""
        return self.execute(requests).outcomes

    def solve_one(self, request: SolveRequest) -> TransientSolution:
        """Execute a single request and unwrap its solution."""
        return self.solve([request])[0].unwrap()
