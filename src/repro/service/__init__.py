"""Versioned solve protocol and the :class:`SolveService` facade.

This package is the **canonical public API** for running solve workloads.
The three layers:

* :mod:`repro.service.protocol` — a versioned (``SCHEMA_VERSION``) JSON
  codec giving :class:`~repro.batch.planner.SolveRequest`,
  :class:`~repro.batch.runner.BatchOutcome`,
  :class:`~repro.markov.base.TransientSolution`, scenario specs and
  structured failures a stable ``to_dict()``/``from_dict()`` wire form —
  a request that round-trips through JSON solves bit-identically to the
  in-memory object;
* :mod:`repro.service.service` — :class:`SolveService`, the one entry
  point wrapping planner → runner → scatter (kernel-cache policy
  included), which ``analysis``, ``batch.scenarios``, the CLI and the
  scripts all route through;
* :mod:`repro.service.queue` — :class:`JobQueue`, a resumable on-disk
  job queue (append-only JSONL journal of submitted requests and
  completed outcomes) with ``submit``/``poll``/``collect``/``resume``:
  a killed run resumes from the journal and produces bit-identical
  results.

Data flow::

    SolveRequest ──protocol──▶ journal ──JobQueue──▶ SolveService
        ──planner──▶ BatchRunner shard ──▶ BatchOutcome ──▶ journal

which makes sharding the grid across machines a transport problem: any
worker holding the journal line can replay the cell.
"""

from repro.service.protocol import (
    SCHEMA_VERSION,
    ProtocolError,
    from_dict,
    loads,
    dumps,
    to_dict,
)
from repro.service.queue import JobQueue
from repro.service.service import ServiceResult, SolveService

__all__ = [
    "SCHEMA_VERSION",
    "ProtocolError",
    "SolveService",
    "ServiceResult",
    "JobQueue",
    "to_dict",
    "from_dict",
    "dumps",
    "loads",
]
