"""Resumable on-disk job queue over the versioned solve protocol.

A :class:`JobQueue` is a directory holding one append-only JSONL journal
(``journal.jsonl``). Every line is a self-contained, versioned record:

* ``{"kind": "job", "id": N, "request": <solve_request dict>}`` — a
  submitted cell;
* ``{"kind": "result", "id": N, "outcome": <batch_outcome dict>}`` — the
  completed (or structurally failed) outcome for job ``N``.

The queue's whole state is the journal replay: a job with no result
record is *pending*. Because requests round-trip bit-exactly through the
protocol and the planner/kernel stack is deterministic, a run that is
killed at any point — between checkpoints, mid-batch, even mid-write
(a torn final line is detected and ignored) — resumes from the journal
and produces outcomes **bit-identical** to an uninterrupted in-process
execution. ``scripts/run_paper_grid.py --verify`` and
``tests/service/test_queue.py`` prove exactly that with a three-way
compare (in-process vs queue vs kill+resume).

Records are flushed and fsynced per checkpoint batch, so the durability
unit is the ``checkpoint`` parameter of :meth:`run` (1 = one fsync per
job, the safest and slowest; larger batches let the planner fuse more
cells per :class:`~repro.service.service.SolveService` call).

Concurrency contract: **single writer, many readers**. Read-only
operations (``status``/``poll``/``collect``/plain replay) never mutate
the journal — in particular, a torn tail seen by a reader might just be
another process's in-flight append, so its repair (truncation) is
deferred to this object's own first write.
"""

from __future__ import annotations

import json
import os
from collections import OrderedDict
from collections.abc import Iterable
from pathlib import Path

from repro.batch.planner import SolveRequest
from repro.batch.runner import BatchOutcome
from repro.exceptions import ProtocolError, QueueError
from repro.service.protocol import (
    SCHEMA_VERSION,
    outcome_from_dict,
    outcome_to_dict,
    request_from_dict,
    request_to_dict,
)
from repro.service.service import SolveService

__all__ = ["JobQueue"]

_JOURNAL_NAME = "journal.jsonl"


class JobQueue:
    """A directory-backed, crash-resumable queue of solve jobs.

    Parameters
    ----------
    path:
        Queue directory. Created (with parents) unless ``create=False``.
        An existing journal inside is replayed into memory.
    create:
        When ``False``, the directory and journal must already exist —
        the :meth:`resume` spelling for picking up a killed run.
    """

    def __init__(self, path: str | Path, *, create: bool = True) -> None:
        self._dir = Path(path)
        self._journal_path = self._dir / _JOURNAL_NAME
        if create:
            try:
                self._dir.mkdir(parents=True, exist_ok=True)
            except OSError as exc:
                raise QueueError(
                    f"cannot create queue directory {self._dir}: "
                    f"{exc}") from exc
        elif not self._journal_path.exists():
            raise QueueError(
                f"no queue journal at {self._journal_path} "
                "(nothing to resume)")
        self._requests: "OrderedDict[int, SolveRequest]" = OrderedDict()
        self._outcomes: dict[int, BatchOutcome] = {}
        self._next_id = 0
        # Journal repairs discovered during replay (torn tail to cut,
        # missing final newline). They are *deferred to the first
        # append*: replay itself must stay read-only, so that a `status`
        # or `collect` in another process never mutates the journal of a
        # live writer mid-flush. (Writing is single-writer by contract;
        # reading is always safe.)
        self._truncate_to: int | None = None
        self._missing_newline = False
        if self._journal_path.exists():
            self._replay()

    @classmethod
    def resume(cls, path: str | Path) -> "JobQueue":
        """Reopen an existing queue directory (journal must exist)."""
        return cls(path, create=False)

    # -- journal -----------------------------------------------------------

    def _replay(self) -> None:
        raw = self._journal_path.read_bytes()
        offset = 0
        lineno = 0
        while offset < len(raw):
            lineno += 1
            newline = raw.find(b"\n", offset)
            complete = newline != -1
            line = raw[offset:newline] if complete else raw[offset:]
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                if not complete:
                    # Torn tail from a writer killed mid-append: the job
                    # stays pending. Remember to cut the fragment before
                    # *this object's* first append, so a new record never
                    # merges into it (which would lose that record and
                    # corrupt every later resume). Read-only consumers
                    # leave the file untouched.
                    self._truncate_to = offset
                    return
                # A torn record *before* a complete one means real
                # corruption, not a kill.
                raise QueueError(
                    f"{self._journal_path}:{lineno}: corrupt journal "
                    "record") from None
            try:
                self._apply(record)
            except ProtocolError as exc:
                raise QueueError(
                    f"{self._journal_path}:{lineno}: {exc}") from exc
            if not complete:
                # Valid record but no trailing newline (hand-edited
                # journal): it is applied, so keep it and repair the
                # separator before this object's first append.
                self._missing_newline = True
                return
            offset = newline + 1

    def _apply(self, record: object) -> None:
        if not isinstance(record, dict):
            raise ProtocolError(
                "journal record is not an object, got "
                f"{type(record).__name__}")
        version = record.get("schema_version")
        if version != SCHEMA_VERSION:
            raise ProtocolError(
                f"journal schema_version {version!r} is not supported")
        kind = record.get("kind")
        if kind not in ("job", "result"):
            raise ProtocolError(f"unknown journal record kind {kind!r}")
        for field in ("id", "request" if kind == "job" else "outcome"):
            if field not in record:
                raise ProtocolError(
                    f"{kind} record is missing field {field!r}")
        if not isinstance(record["id"], int):
            raise ProtocolError(
                f"job id must be an integer, got {record['id']!r}")
        job_id = record["id"]
        if kind == "job":
            self._requests[job_id] = request_from_dict(record["request"])
            self._next_id = max(self._next_id, job_id + 1)
        else:
            if job_id not in self._requests:
                raise ProtocolError(
                    f"result for unknown job id {job_id}")
            self._outcomes[job_id] = outcome_from_dict(record["outcome"])

    def _append(self, records: list[dict]) -> None:
        if self._truncate_to is not None:
            # Deferred torn-tail repair (see __init__): cut the fragment
            # now that this object is definitely the writer.
            with open(self._journal_path, "r+b") as fh:
                fh.truncate(self._truncate_to)
            self._truncate_to = None
        payload = b"".join(
            json.dumps(record, separators=(",", ":"),
                       sort_keys=True).encode("utf-8") + b"\n"
            for record in records)
        if self._missing_newline:
            payload = b"\n" + payload
            self._missing_newline = False
        with open(self._journal_path, "ab") as fh:
            fh.write(payload)
            fh.flush()
            os.fsync(fh.fileno())

    # -- queue API ---------------------------------------------------------

    @property
    def path(self) -> Path:
        """The queue directory."""
        return self._dir

    def submit(self, requests: Iterable[SolveRequest]) -> list[int]:
        """Journal new jobs; returns their ids (submission order)."""
        requests = list(requests)
        records = []
        ids = []
        for request in requests:
            job_id = self._next_id
            self._next_id += 1
            records.append({"schema_version": SCHEMA_VERSION,
                            "kind": "job", "id": job_id,
                            "request": request_to_dict(request)})
            ids.append(job_id)
        self._append(records)
        # Journal first, memory second: a submit that cannot be made
        # durable must not look accepted.
        for job_id, request in zip(ids, requests):
            self._requests[job_id] = request
        return ids

    def pending(self) -> list[tuple[int, SolveRequest]]:
        """Jobs with no journaled outcome yet, in submission order."""
        return [(job_id, req) for job_id, req in self._requests.items()
                if job_id not in self._outcomes]

    def poll(self, job_id: int) -> BatchOutcome | None:
        """The outcome of one job, or ``None`` while it is pending."""
        if job_id not in self._requests:
            raise QueueError(f"unknown job id {job_id}")
        return self._outcomes.get(job_id)

    def collect(self, *, require_complete: bool = True
                ) -> list[BatchOutcome]:
        """All completed outcomes, in submission order.

        With ``require_complete`` (default) a queue that still has
        pending jobs raises :class:`~repro.exceptions.QueueError` instead
        of returning a silently-partial result set.
        """
        open_jobs = [job_id for job_id in self._requests
                     if job_id not in self._outcomes]
        if require_complete and open_jobs:
            raise QueueError(
                f"{len(open_jobs)} of {len(self._requests)} jobs still "
                f"pending (first: {open_jobs[0]}); run the queue to "
                "completion or pass require_complete=False")
        return [self._outcomes[job_id] for job_id in self._requests
                if job_id in self._outcomes]

    def status(self) -> dict:
        """Counts summary (``submitted/completed/failed/pending``)."""
        completed = len(self._outcomes)
        failed = sum(1 for o in self._outcomes.values() if not o.ok)
        return {"path": str(self._dir),
                "submitted": len(self._requests),
                "completed": completed,
                "failed": failed,
                "pending": len(self._requests) - completed}

    def run(self,
            service: SolveService | None = None,
            *,
            limit: int | None = None,
            checkpoint: int = 8) -> list[tuple[int, BatchOutcome]]:
        """Execute pending jobs through ``service``, journaling results.

        Parameters
        ----------
        service:
            The :class:`~repro.service.service.SolveService` to execute
            on (default: a fresh inline fused service). The service's
            fuse/pool policy never changes a number — only the price.
        limit:
            Process at most this many pending jobs (test harnesses use
            it to simulate a kill between checkpoints).
        checkpoint:
            Jobs per durable batch: each batch is one
            :meth:`~repro.service.service.SolveService.solve` call
            followed by one fsynced journal append.

        Returns the ``(job_id, outcome)`` pairs processed by *this* call.
        """
        if checkpoint < 1:
            raise ValueError("checkpoint must be >= 1")
        service = service or SolveService()
        todo = self.pending()
        if limit is not None:
            todo = todo[:max(0, int(limit))]
        processed: list[tuple[int, BatchOutcome]] = []
        for start in range(0, len(todo), checkpoint):
            batch = todo[start:start + checkpoint]
            outcomes = service.solve([req for _, req in batch])
            records = []
            for (job_id, _), outcome in zip(batch, outcomes):
                records.append({"schema_version": SCHEMA_VERSION,
                                "kind": "result", "id": job_id,
                                "outcome": outcome_to_dict(outcome)})
            self._append(records)
            for (job_id, _), outcome in zip(batch, outcomes):
                self._outcomes[job_id] = outcome
                processed.append((job_id, outcome))
        return processed
