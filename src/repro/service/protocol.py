"""Versioned wire protocol for solve requests, outcomes and solutions.

Every experiment cell — and everything a cell produces — is expressible
as a portable, versioned JSON artifact that any worker can replay
bit-identically:

* :class:`~repro.batch.planner.SolveRequest` (scenario- or model-backed),
* :class:`~repro.batch.scenarios.Scenario` specs,
* :class:`~repro.markov.base.TransientSolution` results,
* :class:`~repro.batch.runner.BatchOutcome` envelopes, including
  **structured failures** (exception type / message / traceback as plain
  strings — never live exception objects), so failed cells survive a
  journal round-trip exactly like successful ones.

Wire form
---------
Each object maps to a dict carrying ``"schema_version"`` (an integer —
decoding a different version raises :class:`ProtocolError`, never a
silent misparse) and a ``"kind"`` tag dispatched by :func:`from_dict`.
Floats ride through JSON via Python's shortest-roundtrip ``repr`` and are
therefore **bit-exact**; tuples (request keys, scenario params, solver
kwargs) are preserved against JSON's list coercion with a ``{"__tuple__":
[...]}`` tag, because request identity — and with it planner coalescing
and fusion — must be indistinguishable between a live object and its
decoded twin.

The codec is deliberately strict: values that are not plain data (or one
of the protocol types) raise :class:`ProtocolError` at *encode* time, so
a request that cannot be replayed elsewhere is rejected before it ever
reaches a journal.
"""

from __future__ import annotations

import json
from collections.abc import Mapping
from typing import Any

import numpy as np
from scipy import sparse

from repro.batch.planner import SolveRequest
from repro.batch.runner import BatchOutcome
from repro.batch.scenarios import Scenario
from repro.exceptions import ProtocolError, UnknownMethodError
from repro.solvers import registry
from repro.markov.base import TransientSolution
from repro.markov.ctmc import CTMC
from repro.markov.rewards import Measure, RewardStructure

__all__ = [
    "SCHEMA_VERSION",
    "ProtocolError",
    "to_dict",
    "from_dict",
    "dumps",
    "loads",
    "request_to_dict",
    "request_from_dict",
    "outcome_to_dict",
    "outcome_from_dict",
    "solution_to_dict",
    "solution_from_dict",
    "scenario_to_dict",
    "scenario_from_dict",
    "ctmc_to_dict",
    "ctmc_from_dict",
    "rewards_to_dict",
    "rewards_from_dict",
]

#: Wire schema version. Bump on any change to the dict layouts below;
#: decoders accept exactly this version.
SCHEMA_VERSION = 1

_TUPLE_TAG = "__tuple__"


# -- plain-data codec ------------------------------------------------------

def _encode_plain(value: Any, *, where: str) -> Any:
    """JSON-safe form of identity-bearing plain data (keys, params,
    solver kwargs). Tuples are tagged so decoding restores them exactly;
    numpy scalars collapse to their Python equivalents."""
    if value is None or isinstance(value, (bool, str)):
        return value
    if isinstance(value, (int, float)):
        return value
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return float(value)
    if isinstance(value, Measure):
        return {"__measure__": value.value}
    if isinstance(value, tuple):
        return {_TUPLE_TAG: [_encode_plain(v, where=where) for v in value]}
    if isinstance(value, list):
        return [_encode_plain(v, where=where) for v in value]
    if isinstance(value, Mapping):
        out = {}
        for k, v in value.items():
            if not isinstance(k, str):
                raise ProtocolError(
                    f"{where}: mapping keys must be strings, got {k!r}")
            out[k] = _encode_plain(v, where=where)
        return out
    raise ProtocolError(
        f"{where}: {type(value).__name__} is not wire-serializable "
        "(plain data only)")


def _decode_plain(value: Any) -> Any:
    if isinstance(value, dict):
        if set(value) == {_TUPLE_TAG}:
            return tuple(_decode_plain(v) for v in value[_TUPLE_TAG])
        if set(value) == {"__measure__"}:
            return _measure_from(value["__measure__"])
        return {k: _decode_plain(v) for k, v in value.items()}
    if isinstance(value, list):
        return [_decode_plain(v) for v in value]
    return value


def _jsonify_stats(value: Any, *, where: str) -> Any:
    """Lossy-but-faithful form of diagnostic stats: numpy arrays become
    lists (stats are not identity-bearing, so no tuple tagging)."""
    if isinstance(value, np.ndarray):
        return value.tolist()
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return float(value)
    if isinstance(value, (tuple, list)):
        return [_jsonify_stats(v, where=where) for v in value]
    if isinstance(value, Mapping):
        return {str(k): _jsonify_stats(v, where=where)
                for k, v in value.items()}
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    raise ProtocolError(
        f"{where}: {type(value).__name__} is not wire-serializable")


# -- envelope helpers ------------------------------------------------------

def _envelope(kind: str, payload: dict) -> dict:
    return {"schema_version": SCHEMA_VERSION, "kind": kind, **payload}


def _expect(data: Any, kind: str) -> dict:
    if not isinstance(data, Mapping):
        raise ProtocolError(f"expected a dict for {kind!r}, "
                            f"got {type(data).__name__}")
    version = data.get("schema_version")
    if version != SCHEMA_VERSION:
        raise ProtocolError(
            f"schema_version {version!r} is not supported "
            f"(this codec speaks version {SCHEMA_VERSION})")
    if data.get("kind") != kind:
        raise ProtocolError(
            f"expected kind {kind!r}, got {data.get('kind')!r}")
    return dict(data)


def _field(data: Mapping, name: str, kind: str) -> Any:
    try:
        return data[name]
    except KeyError:
        raise ProtocolError(f"{kind} record is missing field {name!r}") \
            from None


def _measure_from(tag: Any) -> Measure:
    try:
        return Measure(tag)
    except ValueError:
        raise ProtocolError(f"unknown measure tag {tag!r}") from None


# -- scenarios -------------------------------------------------------------

def scenario_to_dict(scenario: Scenario) -> dict:
    """Wire form of a scenario spec (registry key + plain params)."""
    return _envelope("scenario", {
        "name": scenario.name,
        "family": scenario.family,
        "params": _encode_plain(dict(scenario.params),
                                where=f"scenario {scenario.name!r} params"),
        "measure": scenario.measure.value,
        "times": [float(t) for t in scenario.times],
        "eps": float(scenario.eps),
    })


def scenario_from_dict(data: Mapping) -> Scenario:
    d = _expect(data, "scenario")
    return Scenario(
        name=_field(d, "name", "scenario"),
        family=_field(d, "family", "scenario"),
        params=_decode_plain(_field(d, "params", "scenario")),
        measure=_measure_from(_field(d, "measure", "scenario")),
        times=tuple(float(t) for t in _field(d, "times", "scenario")),
        eps=float(_field(d, "eps", "scenario")))


# -- models and rewards ----------------------------------------------------

def ctmc_to_dict(model: CTMC) -> dict:
    """Wire form of a live model: CSR generator + initial distribution.

    Labels ride along when they are plain data; a model whose labels are
    not wire-serializable is rejected (drop the labels first if they do
    not matter for the remote solve).
    """
    q = model.generator
    labels = None
    if model.labels is not None:
        labels = [_encode_plain(lab, where="CTMC labels")
                  for lab in model.labels]
    return _envelope("ctmc", {
        "n_states": int(model.n_states),
        "indptr": np.asarray(q.indptr).tolist(),
        "indices": np.asarray(q.indices).tolist(),
        "data": np.asarray(q.data).tolist(),
        "initial": np.asarray(model.initial).tolist(),
        "labels": labels,
    })


def ctmc_from_dict(data: Mapping) -> CTMC:
    d = _expect(data, "ctmc")
    n = int(_field(d, "n_states", "ctmc"))
    q = sparse.csr_matrix(
        (np.asarray(_field(d, "data", "ctmc"), dtype=np.float64),
         np.asarray(_field(d, "indices", "ctmc"), dtype=np.int32),
         np.asarray(_field(d, "indptr", "ctmc"), dtype=np.int32)),
        shape=(n, n))
    initial = np.asarray(_field(d, "initial", "ctmc"), dtype=np.float64)
    labels = d.get("labels")
    if labels is not None:
        labels = [_decode_plain(lab) for lab in labels]
    model = CTMC(q, initial=initial, labels=labels, fix_diagonal=False)
    # The constructor re-normalizes ``initial`` (a divide that can move
    # the last bit when the stored sum is 1 ± 1 ulp). The wire payload
    # *is* an already-validated distribution from a live CTMC, and the
    # protocol promises bit-exact replay, so restore it verbatim.
    model._initial = initial
    return model


def rewards_to_dict(rewards: RewardStructure) -> dict:
    """Wire form of a reward structure (the rate vector)."""
    return _envelope("rewards",
                     {"rates": np.asarray(rewards.rates).tolist()})


def rewards_from_dict(data: Mapping) -> RewardStructure:
    d = _expect(data, "rewards")
    return RewardStructure(
        np.asarray(_field(d, "rates", "rewards"), dtype=np.float64))


# -- requests --------------------------------------------------------------

def request_to_dict(request: SolveRequest) -> dict:
    """Wire form of one declarative solve cell.

    Scenario-backed requests ship only the scenario description (the
    cheap path — the worker rebuilds the model); model-backed requests
    ship the CSR payload once.
    """
    return _envelope("solve_request", {
        "measure": request.measure.value,
        "times": [float(t) for t in request.times],
        "eps": float(request.eps),
        "method": request.method,
        "scenario": (scenario_to_dict(request.scenario)
                     if request.scenario is not None else None),
        "model": (ctmc_to_dict(request.model)
                  if request.model is not None else None),
        "rewards": (rewards_to_dict(request.rewards)
                    if request.rewards is not None else None),
        "solver_kwargs": _encode_plain(dict(request.solver_kwargs),
                                       where="request solver_kwargs"),
        "key": _encode_plain(request.key, where="request key"),
    })


def request_from_dict(data: Mapping) -> SolveRequest:
    d = _expect(data, "solve_request")
    scenario = _field(d, "scenario", "solve_request")
    model = _field(d, "model", "solve_request")
    rewards = _field(d, "rewards", "solve_request")
    method = _field(d, "method", "solve_request")
    # Validate against the solver registry *here* so a journal written by
    # a newer/older deployment fails as a protocol problem (with the
    # known-method list), not as a deep worker-side exception.
    try:
        registry.get_spec(method)
    except UnknownMethodError as exc:
        raise ProtocolError(f"solve_request: {exc}") from None
    return SolveRequest(
        measure=_measure_from(_field(d, "measure", "solve_request")),
        times=tuple(float(t) for t in _field(d, "times", "solve_request")),
        eps=float(_field(d, "eps", "solve_request")),
        method=method,
        scenario=scenario_from_dict(scenario) if scenario else None,
        model=ctmc_from_dict(model) if model else None,
        rewards=rewards_from_dict(rewards) if rewards else None,
        solver_kwargs=_decode_plain(
            _field(d, "solver_kwargs", "solve_request")),
        key=_decode_plain(_field(d, "key", "solve_request")))


# -- solutions -------------------------------------------------------------

def solution_to_dict(solution: TransientSolution) -> dict:
    """Wire form of a solver result (values, steps, diagnostics)."""
    return _envelope("transient_solution", {
        "times": np.asarray(solution.times, dtype=np.float64).tolist(),
        "values": np.asarray(solution.values, dtype=np.float64).tolist(),
        "measure": solution.measure.value,
        "eps": float(solution.eps),
        "steps": np.asarray(solution.steps).tolist(),
        "method": solution.method,
        "stats": _jsonify_stats(solution.stats, where="solution stats"),
    })


def solution_from_dict(data: Mapping) -> TransientSolution:
    d = _expect(data, "transient_solution")
    return TransientSolution(
        times=np.asarray(_field(d, "times", "solution"), dtype=np.float64),
        values=np.asarray(_field(d, "values", "solution"),
                          dtype=np.float64),
        measure=_measure_from(_field(d, "measure", "solution")),
        eps=float(_field(d, "eps", "solution")),
        steps=np.asarray(_field(d, "steps", "solution"), dtype=np.int64),
        method=_field(d, "method", "solution"),
        stats=dict(_field(d, "stats", "solution")))


# -- outcomes --------------------------------------------------------------

def outcome_to_dict(outcome: BatchOutcome) -> dict:
    """Wire form of one task outcome, success or structured failure.

    Failures are already fully stringly-typed on :class:`BatchOutcome`
    (``error_type``/``error``/``traceback``), so a failed cell journals
    and round-trips exactly like a successful one. Success values must be
    a :class:`TransientSolution` or plain data.
    """
    if outcome.value is None:
        value = None
    elif isinstance(outcome.value, TransientSolution):
        value = solution_to_dict(outcome.value)
    else:
        value = {"kind": "plain",
                 "value": _jsonify_stats(outcome.value,
                                         where="outcome value")}
    for name in ("error_type", "error", "traceback"):
        attr = getattr(outcome, name)
        if attr is not None and not isinstance(attr, str):
            raise ProtocolError(
                f"outcome {name} must be a string (live exception "
                f"objects are not wire-serializable), "
                f"got {type(attr).__name__}")
    return _envelope("batch_outcome", {
        "key": _encode_plain(outcome.key, where="outcome key"),
        "ok": bool(outcome.ok),
        "value": value,
        "error_type": outcome.error_type,
        "error": outcome.error,
        "traceback": outcome.traceback,
        "duration": float(outcome.duration),
        "worker_pid": (int(outcome.worker_pid)
                       if outcome.worker_pid is not None else None),
    })


def outcome_from_dict(data: Mapping) -> BatchOutcome:
    d = _expect(data, "batch_outcome")
    raw = _field(d, "value", "outcome")
    if raw is None:
        value: Any = None
    elif isinstance(raw, Mapping) and raw.get("kind") == "plain":
        # Plain values were encoded with the untagged stats codec, so
        # decode is the identity — running _decode_plain here would
        # invent tuples out of dicts that happen to carry a tag key.
        value = raw.get("value")
    else:
        value = solution_from_dict(raw)
    return BatchOutcome(
        key=_decode_plain(_field(d, "key", "outcome")),
        ok=bool(_field(d, "ok", "outcome")),
        value=value,
        error_type=d.get("error_type"),
        error=d.get("error"),
        traceback=d.get("traceback"),
        duration=float(d.get("duration", 0.0)),
        worker_pid=d.get("worker_pid"))


# -- generic dispatch ------------------------------------------------------

_ENCODERS = (
    (SolveRequest, request_to_dict),
    (BatchOutcome, outcome_to_dict),
    (TransientSolution, solution_to_dict),
    (Scenario, scenario_to_dict),
    (CTMC, ctmc_to_dict),
    (RewardStructure, rewards_to_dict),
)

_DECODERS = {
    "solve_request": request_from_dict,
    "batch_outcome": outcome_from_dict,
    "transient_solution": solution_from_dict,
    "scenario": scenario_from_dict,
    "ctmc": ctmc_from_dict,
    "rewards": rewards_from_dict,
}


def to_dict(obj: Any) -> dict:
    """Wire form of any protocol object (dispatch on type)."""
    for cls, encoder in _ENCODERS:
        if isinstance(obj, cls):
            return encoder(obj)
    raise ProtocolError(
        f"{type(obj).__name__} is not a protocol type; expected one of "
        + ", ".join(cls.__name__ for cls, _ in _ENCODERS))


def from_dict(data: Mapping) -> Any:
    """Decode any protocol dict (dispatch on its ``"kind"`` tag)."""
    if not isinstance(data, Mapping):
        raise ProtocolError(
            f"expected a dict, got {type(data).__name__}")
    kind = data.get("kind")
    try:
        decoder = _DECODERS[kind]
    except KeyError:
        raise ProtocolError(
            f"unknown protocol kind {kind!r}; known: "
            + ", ".join(sorted(_DECODERS))) from None
    return decoder(data)


def dumps(obj: Any) -> str:
    """One-line JSON wire string of a protocol object (journal format)."""
    return json.dumps(to_dict(obj), separators=(",", ":"),
                      sort_keys=True)


def loads(text: str) -> Any:
    """Decode a JSON wire string produced by :func:`dumps`."""
    try:
        data = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ProtocolError(f"malformed protocol JSON: {exc}") from None
    return from_dict(data)
