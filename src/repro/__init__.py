"""repro — Transient analysis of dependability/performability Markov models
by regenerative randomization with Laplace transform inversion.

Reproduction of: J. A. Carrasco, "Transient Analysis of Dependability/
Performability Models by Regenerative Randomization with Laplace Transform
Inversion", IPDPS 2000 Workshops, LNCS 1800, pp. 1226–1235.

Quickstart
----------
>>> import numpy as np
>>> from repro import CTMC, RewardStructure, TRR, RRLSolver
>>> q = [[-1.0, 1.0], [10.0, -10.0]]            # 2-state repairable system
>>> model = CTMC(np.array(q))
>>> rewards = RewardStructure.indicator(2, [1])  # unavailability
>>> sol = RRLSolver().solve(model, rewards, TRR, [100.0], eps=1e-10)
>>> round(sol.values[0], 6)                      # ≈ 1/11 at steady state
0.090909

Public API
----------
* Substrate: :class:`CTMC`, :class:`DTMC`, :class:`RewardStructure`,
  measures :data:`TRR` / :data:`MRR`.
* Solvers (all share ``solve(model, rewards, measure, times, eps)``):
  :class:`RRLSolver` (the paper's method),
  :class:`RegenerativeRandomizationSolver` (original RR),
  :class:`StandardRandomizationSolver` (SR),
  :class:`SteadyStateDetectionSolver` (RSD),
  :class:`AdaptiveUniformizationSolver` (AU),
  :class:`OdeSolver` (cross-check).
* Models: :mod:`repro.models` (parametric RAID-5 generator and a library
  of small analytical chains).
* Experiments: :mod:`repro.analysis` (the table/figure harness).
* Batch: :mod:`repro.batch` (shared uniformization kernel, parametric
  scenario generator, model-fused execution planner
  (:class:`SolveRequest` → :func:`repro.batch.planner.execute_requests`),
  parallel :class:`BatchRunner`).
"""

from repro.exceptions import (
    ConvergenceError,
    InversionError,
    MeasureError,
    ModelError,
    ReproError,
    TruncationError,
)
from repro.markov import (
    CTMC,
    DTMC,
    MRR,
    TRR,
    AdaptiveUniformizationSolver,
    Measure,
    MultistepRandomizationSolver,
    OdeSolver,
    RewardStructure,
    StandardRandomizationSolver,
    SteadyStateDetectionSolver,
)
from repro.markov.base import TransientSolution
from repro.core import (
    BoundedSolution,
    RegenerativeRandomizationSolver,
    RRLBoundsSolver,
    RRLSolver,
)
from repro.batch.kernel import UniformizationKernel
from repro.batch.planner import SolveRequest
from repro.batch.runner import BatchOutcome, BatchRunner, BatchTask
from repro.batch.scenarios import Scenario, generate_scenarios

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # errors
    "ReproError", "ModelError", "MeasureError", "ConvergenceError",
    "TruncationError", "InversionError",
    # substrate
    "CTMC", "DTMC", "RewardStructure", "Measure", "TRR", "MRR",
    "TransientSolution",
    # solvers
    "RRLSolver", "RegenerativeRandomizationSolver",
    "StandardRandomizationSolver", "SteadyStateDetectionSolver",
    "AdaptiveUniformizationSolver", "OdeSolver",
    "MultistepRandomizationSolver", "RRLBoundsSolver", "BoundedSolution",
    # batch subsystem
    "UniformizationKernel", "BatchRunner", "BatchTask", "BatchOutcome",
    "Scenario", "generate_scenarios", "SolveRequest",
]
