"""repro — Transient analysis of dependability/performability Markov models
by regenerative randomization with Laplace transform inversion.

Reproduction of: J. A. Carrasco, "Transient Analysis of Dependability/
Performability Models by Regenerative Randomization with Laplace Transform
Inversion", IPDPS 2000 Workshops, LNCS 1800, pp. 1226–1235.

Quickstart
----------
>>> import numpy as np
>>> from repro import CTMC, RewardStructure, TRR, RRLSolver
>>> q = [[-1.0, 1.0], [10.0, -10.0]]            # 2-state repairable system
>>> model = CTMC(np.array(q))
>>> rewards = RewardStructure.indicator(2, [1])  # unavailability
>>> sol = RRLSolver().solve(model, rewards, TRR, [100.0], eps=1e-10)
>>> round(sol.values[0], 6)                      # ≈ 1/11 at steady state
0.090909

Public API
----------
* Substrate: :class:`CTMC`, :class:`DTMC`, :class:`RewardStructure`,
  measures :data:`TRR` / :data:`MRR`.
* Solvers (all share ``solve(model, rewards, measure, times, eps)``):
  :class:`RRLSolver` (the paper's method),
  :class:`RegenerativeRandomizationSolver` (original RR),
  :class:`StandardRandomizationSolver` (SR),
  :class:`SteadyStateDetectionSolver` (RSD),
  :class:`AdaptiveUniformizationSolver` (AU),
  :class:`OdeSolver` (cross-check).
* Models: :mod:`repro.models` (parametric RAID-5 generator and a library
  of small analytical chains).
* Experiments: :mod:`repro.analysis` (the table/figure harness).
* Batch substrate: :mod:`repro.batch` (shared uniformization kernel,
  parametric scenario generator, model-fused execution planner,
  parallel :class:`BatchRunner`).
* **Service (canonical batch API)**: :mod:`repro.service` —
  :class:`SolveService` (the one entry point wrapping planner → runner →
  scatter), a versioned JSON wire protocol for
  :class:`SolveRequest`/:class:`BatchOutcome`/:class:`TransientSolution`
  (:mod:`repro.service.protocol`, ``schema_version``-checked,
  bit-exact), and :class:`JobQueue`, a resumable on-disk job queue whose
  journal a killed run replays with bit-identical results.
"""

from repro.exceptions import (
    ConvergenceError,
    InversionError,
    MeasureError,
    ModelError,
    ProtocolError,
    QueueError,
    RegistryError,
    ReproError,
    TruncationError,
    UnknownMethodError,
)
from repro.markov import (
    CTMC,
    DTMC,
    MRR,
    TRR,
    AdaptiveUniformizationSolver,
    Measure,
    MultistepRandomizationSolver,
    OdeSolver,
    RewardStructure,
    StandardRandomizationSolver,
    SteadyStateDetectionSolver,
)
from repro.markov.base import TransientSolution
from repro.core import (
    BoundedSolution,
    RegenerativeRandomizationSolver,
    RRLBoundsSolver,
    RRLSolver,
    ScheduleCache,
)
from repro.solvers.registry import SolverSpec
from repro.batch.backends import (
    Backend,
    ProcessBackend,
    SerialBackend,
    ThreadBackend,
)
from repro.batch.kernel import UniformizationKernel
from repro.batch.planner import SolveRequest
from repro.batch.runner import BatchOutcome, BatchRunner, BatchTask
from repro.batch.scenarios import Scenario, generate_scenarios
from repro.service import JobQueue, ServiceResult, SolveService

# 2.2.0: execution became a pluggable backend layer
# (``repro.batch.backends``): BatchRunner/SolveService/ExperimentConfig
# and the CLI select ``serial`` / ``threads`` / ``processes`` (default
# honours ``$REPRO_BACKEND``). The thread backend shares the
# process-wide kernel/window/schedule caches (now lock-protected)
# across workers with zero serialization; all backends are bit-for-bit
# identical. Additive: the process pool remains the default.
#
# 2.1.0: the capability-declaring solver registry
# (``repro.solvers.registry``) became the one dispatch authority — every
# solver self-registers a SolverSpec, and the runner, planner, protocol
# and CLI resolve method tags through it — and RR/RRL gained cross-cell
# schedule-transformation memoization (``ScheduleCache``). Additive:
# 2.0 call sites keep working (``FUSABLE_METHODS`` /
# ``KERNEL_AWARE_METHODS`` remain as deprecated registry-derived
# aliases).
__version__ = "2.2.0"

__all__ = [
    "__version__",
    # errors
    "ReproError", "ModelError", "MeasureError", "ConvergenceError",
    "TruncationError", "InversionError", "ProtocolError", "QueueError",
    "UnknownMethodError", "RegistryError",
    # substrate
    "CTMC", "DTMC", "RewardStructure", "Measure", "TRR", "MRR",
    "TransientSolution",
    # solvers + registry
    "RRLSolver", "RegenerativeRandomizationSolver",
    "StandardRandomizationSolver", "SteadyStateDetectionSolver",
    "AdaptiveUniformizationSolver", "OdeSolver",
    "MultistepRandomizationSolver", "RRLBoundsSolver", "BoundedSolution",
    "SolverSpec", "ScheduleCache",
    # batch subsystem
    "UniformizationKernel", "BatchRunner", "BatchTask", "BatchOutcome",
    "Backend", "SerialBackend", "ThreadBackend", "ProcessBackend",
    "Scenario", "generate_scenarios", "SolveRequest",
    # service layer (canonical batch API)
    "SolveService", "ServiceResult", "JobQueue",
]
