"""repro — Transient analysis of dependability/performability Markov models
by regenerative randomization with Laplace transform inversion.

Reproduction of: J. A. Carrasco, "Transient Analysis of Dependability/
Performability Models by Regenerative Randomization with Laplace Transform
Inversion", IPDPS 2000 Workshops, LNCS 1800, pp. 1226–1235.

Quickstart
----------
>>> import numpy as np
>>> from repro import CTMC, RewardStructure, TRR, RRLSolver
>>> q = [[-1.0, 1.0], [10.0, -10.0]]            # 2-state repairable system
>>> model = CTMC(np.array(q))
>>> rewards = RewardStructure.indicator(2, [1])  # unavailability
>>> sol = RRLSolver().solve(model, rewards, TRR, [100.0], eps=1e-10)
>>> round(sol.values[0], 6)                      # ≈ 1/11 at steady state
0.090909

Public API
----------
* Substrate: :class:`CTMC`, :class:`DTMC`, :class:`RewardStructure`,
  measures :data:`TRR` / :data:`MRR`.
* Solvers (all share ``solve(model, rewards, measure, times, eps)``):
  :class:`RRLSolver` (the paper's method),
  :class:`RegenerativeRandomizationSolver` (original RR),
  :class:`StandardRandomizationSolver` (SR),
  :class:`SteadyStateDetectionSolver` (RSD),
  :class:`AdaptiveUniformizationSolver` (AU),
  :class:`OdeSolver` (cross-check).
* Models: :mod:`repro.models` (parametric RAID-5 generator and a library
  of small analytical chains).
* Experiments: :mod:`repro.analysis` (the table/figure harness).
* Batch substrate: :mod:`repro.batch` (shared uniformization kernel,
  parametric scenario generator, model-fused execution planner,
  parallel :class:`BatchRunner`).
* **Service (canonical batch API)**: :mod:`repro.service` —
  :class:`SolveService` (the one entry point wrapping planner → runner →
  scatter), a versioned JSON wire protocol for
  :class:`SolveRequest`/:class:`BatchOutcome`/:class:`TransientSolution`
  (:mod:`repro.service.protocol`, ``schema_version``-checked,
  bit-exact), and :class:`JobQueue`, a resumable on-disk job queue whose
  journal a killed run replays with bit-identical results.
"""

from repro.exceptions import (
    ConvergenceError,
    InversionError,
    MeasureError,
    ModelError,
    ProtocolError,
    QueueError,
    ReproError,
    TruncationError,
)
from repro.markov import (
    CTMC,
    DTMC,
    MRR,
    TRR,
    AdaptiveUniformizationSolver,
    Measure,
    MultistepRandomizationSolver,
    OdeSolver,
    RewardStructure,
    StandardRandomizationSolver,
    SteadyStateDetectionSolver,
)
from repro.markov.base import TransientSolution
from repro.core import (
    BoundedSolution,
    RegenerativeRandomizationSolver,
    RRLBoundsSolver,
    RRLSolver,
)
from repro.batch.kernel import UniformizationKernel
from repro.batch.planner import SolveRequest
from repro.batch.runner import BatchOutcome, BatchRunner, BatchTask
from repro.batch.scenarios import Scenario, generate_scenarios
from repro.service import JobQueue, ServiceResult, SolveService

# 2.0.0: the service layer became the canonical batch API, and the
# pre-existing ``runner=BatchRunner(...)`` parameters of the experiment
# harness were removed (breaking) in its favour — hence the major bump.
__version__ = "2.0.0"

__all__ = [
    "__version__",
    # errors
    "ReproError", "ModelError", "MeasureError", "ConvergenceError",
    "TruncationError", "InversionError", "ProtocolError", "QueueError",
    # substrate
    "CTMC", "DTMC", "RewardStructure", "Measure", "TRR", "MRR",
    "TransientSolution",
    # solvers
    "RRLSolver", "RegenerativeRandomizationSolver",
    "StandardRandomizationSolver", "SteadyStateDetectionSolver",
    "AdaptiveUniformizationSolver", "OdeSolver",
    "MultistepRandomizationSolver", "RRLBoundsSolver", "BoundedSolution",
    # batch subsystem
    "UniformizationKernel", "BatchRunner", "BatchTask", "BatchOutcome",
    "Scenario", "generate_scenarios", "SolveRequest",
    # service layer (canonical batch API)
    "SolveService", "ServiceResult", "JobQueue",
]
