"""Damping-parameter selection for Durbin's inversion formula.

Durbin's approximation with damping ``a`` and period ``2T`` has aliasing
("approximation") error

    f*(t) = Σ_{k>=1} f(2kT + t) e^{-2akT},

so a bound on ``f`` translates into a closed-form bound on ``f*`` that can
be solved for the ``a`` achieving a prescribed budget. The paper (Section
2.2) works out the two cases RRL needs and allocates ``eps/4`` to each:

* ``f = TRR`` is bounded by ``r_max``  →  geometric series, giving
  ``a = (1/(2T)) log(1 + 4 r_max / eps)``;
* ``f = C(t) = t·MRR(t)`` is bounded by ``r_max · t``  →  arithmetic-
  geometric series, giving a quadratic in ``x = e^{-2aT}``.

The paper evaluates the quadratic with the textbook root formula and
patches its catastrophic cancellation with a Taylor expansion when
``y = sqrt((eps/4 + t r)/(eps/2 + (t+2T) r)) < 1e-3``. We implement the
algebraically equivalent *stable* root form ``x = 2c / (b + sqrt(b²−4ac))``
(no cancellation for any parameter values) as the primary routine and keep
the paper's Taylor fallback as a cross-checked secondary implementation.
"""

from __future__ import annotations

import math

__all__ = [
    "damping_for_bounded",
    "damping_for_cumulative",
    "damping_for_cumulative_taylor",
    "aliasing_error_bounded",
    "aliasing_error_cumulative",
]


def damping_for_bounded(eps_quarter: float, bound: float, t_period: float) -> float:
    """Damping ``a`` so the aliasing error of a function with
    ``|f| <= bound`` is at most ``eps_quarter``.

    Solves ``bound · x / (1 − x) = eps_quarter`` for ``x = e^{-2aT}``:
    ``a = log(1 + bound/eps_quarter) / (2T)`` (paper's TRR case with
    ``eps_quarter = eps/4`` and ``bound = r_max``).
    """
    if eps_quarter <= 0.0:
        raise ValueError("error budget must be positive")
    if t_period <= 0.0:
        raise ValueError("period T must be positive")
    if bound < 0.0:
        raise ValueError("bound must be non-negative")
    if bound == 0.0:
        return 0.0
    return math.log1p(bound / eps_quarter) / (2.0 * t_period)


def aliasing_error_bounded(a: float, bound: float, t_period: float) -> float:
    """Aliasing bound ``bound·x/(1−x)`` with ``x = e^{-2aT}`` (for tests)."""
    x = math.exp(-2.0 * a * t_period)
    if x >= 1.0:
        return math.inf
    return bound * x / (1.0 - x)


def _cumulative_quadratic(eps_quarter: float, r_max: float, t: float,
                          t_period: float) -> tuple[float, float, float]:
    """Coefficients ``(A, B, C)`` of ``A x² − B x + C = 0`` for the
    cumulative-measure aliasing equation
    ``r_max[(t+2T)x − t x²]/(1−x)² = eps_quarter``."""
    a_coef = r_max * t + eps_quarter
    b_coef = r_max * (t + 2.0 * t_period) + 2.0 * eps_quarter
    c_coef = eps_quarter
    return a_coef, b_coef, c_coef


def damping_for_cumulative(eps_quarter: float, r_max: float, t: float,
                           t_period: float) -> float:
    """Damping ``a`` so the aliasing error of ``C(t) = t·MRR(t)`` (bounded
    by ``r_max·t``) is at most ``eps_quarter`` — stable root form.

    The aliasing series evaluates to
    ``r_max[(t+2T)x − t x²]/(1−x)²`` with ``x = e^{-2aT}``; setting it to
    ``eps_quarter`` yields ``A x² − B x + C = 0`` with ``A = r·t + ε₄``,
    ``B = r(t+2T) + 2ε₄``, ``C = ε₄``. The needed (smaller) root is
    computed as ``x = 2C / (B + sqrt(B² − 4AC))``, which involves no
    subtraction of nearly equal quantities.
    """
    if eps_quarter <= 0.0 or t <= 0.0 or t_period <= 0.0:
        raise ValueError("eps, t and T must be positive")
    if r_max < 0.0:
        raise ValueError("r_max must be non-negative")
    if r_max == 0.0:
        return 0.0
    a_coef, b_coef, c_coef = _cumulative_quadratic(eps_quarter, r_max, t,
                                                   t_period)
    disc = b_coef * b_coef - 4.0 * a_coef * c_coef
    x = 2.0 * c_coef / (b_coef + math.sqrt(disc))
    return -math.log(x) / (2.0 * t_period)


def damping_for_cumulative_taylor(eps_quarter: float, r_max: float, t: float,
                                  t_period: float,
                                  y_switch: float = 1e-3) -> float:
    """Paper-faithful variant: textbook root with Taylor fallback.

    Follows Section 2.2 / eq. (2): uses the explicit-subtraction root
    unless ``y = sqrt(4AC/B²)``-style ratio is below ``y_switch``, in which
    case the first-order Taylor approximation ``x ≈ C/B`` (expansion of
    the stable form in ``y``) is used. Provided for fidelity and tested to
    agree with :func:`damping_for_cumulative` to high relative accuracy.
    """
    if r_max == 0.0:
        return 0.0
    a_coef, b_coef, c_coef = _cumulative_quadratic(eps_quarter, r_max, t,
                                                   t_period)
    y = math.sqrt(4.0 * a_coef * c_coef) / b_coef
    if y < y_switch:
        # Taylor series of (1 − sqrt(1−y²))/y² · (2C/B·...) to first order:
        # x ≈ C/B (1 + AC/B² + ...). Keep two terms.
        x = (c_coef / b_coef) * (1.0 + a_coef * c_coef / (b_coef * b_coef))
    else:
        disc = b_coef * b_coef - 4.0 * a_coef * c_coef
        x = (b_coef - math.sqrt(disc)) / (2.0 * a_coef)
    return -math.log(x) / (2.0 * t_period)


def aliasing_error_cumulative(a: float, r_max: float, t: float,
                              t_period: float) -> float:
    """Aliasing bound ``r_max[(t+2T)x − t x²]/(1−x)²`` (for tests)."""
    x = math.exp(-2.0 * a * t_period)
    if x >= 1.0:
        return math.inf
    return r_max * ((t + 2.0 * t_period) * x - t * x * x) / (1.0 - x) ** 2
