"""Durbin's Fourier-series approximation of the inverse Laplace transform.

For a transform ``F(s)`` of a real function ``f(t)``, Durbin's formula
[Durbin, Computer Journal 1974] with damping ``a`` and half-period ``T``:

    f_a(t) = (e^{at}/T) [ F(a)/2 + Σ_{k>=1} Re( F(a + ikπ/T) e^{ikπt/T} ) ]

satisfies ``f_a(t) = f(t) + Σ_{k>=1} f(2kT + t) e^{-2akT}`` — the aliasing
error handled by :mod:`repro.laplace.error_control`. This module generates
the (real) series terms lazily so the inversion driver can feed them to
the epsilon accelerator one at a time and stop as soon as the accelerated
estimates settle; the number of abscissae actually consumed is the cost
metric the paper reports (105–329 abscissae in its experiments).
"""

from __future__ import annotations

from collections.abc import Callable, Iterator

import numpy as np

__all__ = ["durbin_terms", "durbin_partial_sums"]

#: How many abscissae to evaluate per batch; the transform callable is
#: vectorized over ``s`` so batching amortizes per-call overhead without
#: wasting many extra abscissae past the convergence point.
_BATCH = 16


def durbin_terms(transform: Callable[[np.ndarray], np.ndarray],
                 t: float, a: float, t_period: float,
                 max_terms: int,
                 batch: int = _BATCH) -> Iterator[float]:
    """Yield the Durbin series terms (already scaled by ``e^{at}/T``).

    The first yielded value is the ``k = 0`` half-term
    ``(e^{at}/T)·F(a)/2``; term ``k >= 1`` is
    ``(e^{at}/T)·Re(F(a + ikπ/T) e^{ikπt/T})``.

    Parameters
    ----------
    transform:
        Vectorized complex transform ``F``; called with a 1-D complex array.
    t:
        Inversion time (> 0).
    a:
        Damping parameter.
    t_period:
        Half-period ``T`` (the paper uses ``T = 8t``).
    max_terms:
        Hard cap on the number of terms generated (``k = 0 .. max_terms-1``).
    batch:
        Abscissae per transform call.
    """
    if t <= 0.0 or t_period <= 0.0:
        raise ValueError("t and T must be positive")
    scale = np.exp(a * t) / t_period
    s0 = np.asarray([complex(a, 0.0)])
    yield float(scale * transform(s0)[0].real / 2.0)
    k = 1
    omega = np.pi / t_period
    while k < max_terms:
        ks = np.arange(k, min(k + batch, max_terms), dtype=np.float64)
        s = a + 1j * ks * omega
        vals = transform(s)
        phases = np.exp(1j * ks * omega * t)
        terms = scale * (vals * phases).real
        for term in terms:
            yield float(term)
        k += ks.size


def durbin_partial_sums(transform: Callable[[np.ndarray], np.ndarray],
                        t: float, a: float, t_period: float,
                        max_terms: int,
                        batch: int = _BATCH) -> Iterator[float]:
    """Yield running partial sums of :func:`durbin_terms`."""
    total = 0.0
    for term in durbin_terms(transform, t, a, t_period, max_terms, batch):
        total += term
        yield total
