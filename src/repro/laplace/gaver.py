"""Gaver–Stehfest inversion — the real-abscissa comparator.

The paper's RRL uses Durbin's complex-abscissa formula with epsilon
acceleration. The main alternative family, Gaver–Stehfest,

    f(t) ≈ (ln 2 / t) Σ_{k=1}^{2M} ζ_k F(k ln 2 / t),

needs only *real* transform evaluations but amplifies round-off by
~10^{0.45·2M}: in double precision ``M ≈ 7`` is the usable ceiling,
giving at best ~6–8 correct digits — far short of the paper's ε = 10⁻¹²
requirement. This module exists as a working comparator so the ablation
benchmarks can *demonstrate* that limitation rather than assert it.

The Stehfest weights are computed exactly with :mod:`fractions` and
cached per ``M``.
"""

from __future__ import annotations

import math
from collections.abc import Callable
from fractions import Fraction
from functools import lru_cache

import numpy as np

from repro.laplace.inversion import InversionResult

__all__ = ["stehfest_weights", "invert_gaver_stehfest"]


@lru_cache(maxsize=16)
def stehfest_weights(m: int) -> tuple[float, ...]:
    """Exact Stehfest coefficients ``ζ_1 .. ζ_{2M}`` for parameter ``M``.

    ``ζ_k = (-1)^{M+k} Σ_{j=⌊(k+1)/2⌋}^{min(k,M)}
    j^{M+1}/M! · C(M,j) C(2j,j) C(j,k−j)``.
    """
    if m < 1:
        raise ValueError("M must be >= 1")
    weights = []
    fact_m = math.factorial(m)
    for k in range(1, 2 * m + 1):
        total = Fraction(0)
        for j in range((k + 1) // 2, min(k, m) + 1):
            term = (Fraction(j) ** (m + 1) / fact_m
                    * math.comb(m, j)
                    * math.comb(2 * j, j)
                    * math.comb(j, k - j))
            total += term
        sign = -1 if (m + k) % 2 else 1
        weights.append(float(sign * total))
    return tuple(weights)


def invert_gaver_stehfest(transform: Callable[[np.ndarray], np.ndarray],
                          t: float, m: int = 7) -> InversionResult:
    """Invert ``transform`` at ``t`` with the 2M-point Stehfest rule.

    Parameters
    ----------
    transform:
        Vectorized transform; called with a real-valued (complex-dtype)
        abscissa array on the positive axis.
    t:
        Inversion time (> 0).
    m:
        Half the number of terms; 7 is the double-precision sweet spot.

    Returns
    -------
    InversionResult
        ``damping`` is reported as 0 (the method has none) and
        ``converged_diff`` as the magnitude of the *last* term — a crude
        internal error indicator.
    """
    if t <= 0.0:
        raise ValueError("t must be positive")
    w = np.asarray(stehfest_weights(m))
    ln2_t = math.log(2.0) / t
    ks = np.arange(1, 2 * m + 1, dtype=np.float64)
    s = (ks * ln2_t).astype(np.complex128)
    vals = np.asarray(transform(s)).real
    value = ln2_t * float(w @ vals)
    return InversionResult(value=value,
                           n_abscissae=2 * m,
                           damping=0.0,
                           t_period=0.0,
                           converged_diff=abs(ln2_t * w[-1] * vals[-1]))
