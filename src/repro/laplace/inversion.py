"""Top-level numerical Laplace inversion with the paper's error control.

The driver combines the three ingredients:

1. **Damping** ``a`` chosen so the aliasing error is ``<= eps/4``
   (:mod:`repro.laplace.error_control`; separate formulas for a bounded
   integrand like TRR and for the cumulative ``C(t) = t·MRR(t)``);
2. **Durbin series** with half-period ``T = T_factor · t`` (the paper
   settled on ``T_factor = 8`` after finding Crump's ``T = t`` fast but
   occasionally unstable and Piessens' ``T = 16t`` stable but slow);
3. **Epsilon acceleration** of the partial sums, declaring convergence
   when consecutive accelerated estimates differ by ``<= eps/100`` — the
   paper's factor-25 safety margin on the ``eps/4`` truncation budget.

The returned :class:`InversionResult` carries the abscissa count, which is
the inversion cost the paper reports (105–329 abscissae; ~1–2% of total
RRL runtime).
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass

import numpy as np

from repro.exceptions import InversionError
from repro.laplace.durbin import durbin_partial_sums
from repro.laplace.epsilon import EpsilonAccelerator
from repro.laplace.error_control import (
    damping_for_bounded,
    damping_for_cumulative,
)

__all__ = ["InversionResult", "invert_bounded", "invert_cumulative",
           "invert"]

#: Paper: convergence when consecutive accelerated values differ by
#: ``eps_truncation / 25`` (i.e. total budget eps/4 → tolerance eps/100).
_SAFETY_FACTOR = 25.0

#: Require this many consecutive under-tolerance differences before
#: declaring convergence. The paper stops at the first small difference;
#: requiring three guards against accidental near-ties of the epsilon
#: table (observed on performability rewards with r_max >> 1) for a
#: handful of extra abscissae.
_CONSECUTIVE = 3

_MAX_TERMS_DEFAULT = 20_000
_MIN_TERMS = 8


@dataclass(frozen=True)
class InversionResult:
    """Outcome of one numerical inversion.

    Attributes
    ----------
    value:
        The inverted function value ``f(t)``.
    n_abscissae:
        Number of transform evaluations consumed (cost metric).
    damping:
        The damping parameter ``a`` used.
    t_period:
        The half-period ``T`` used.
    converged_diff:
        Final difference between consecutive accelerated estimates.
    """

    value: float
    n_abscissae: int
    damping: float
    t_period: float
    converged_diff: float


def _drive(transform: Callable[[np.ndarray], np.ndarray],
           t: float, a: float, t_period: float, tol: float,
           max_terms: int) -> InversionResult:
    """Run the accelerate-until-settled loop shared by both entry points."""
    acc = EpsilonAccelerator()
    prev = np.nan
    diff = np.inf
    hits = 0
    n = 0
    for partial in durbin_partial_sums(transform, t, a, t_period, max_terms):
        est = acc.add(partial)
        n += 1
        if n >= _MIN_TERMS and np.isfinite(prev):
            diff = abs(est - prev)
            if diff <= tol:
                hits += 1
                if hits >= _CONSECUTIVE:
                    return InversionResult(value=est, n_abscissae=n,
                                           damping=a, t_period=t_period,
                                           converged_diff=diff)
            else:
                hits = 0
        prev = est
    raise InversionError(
        f"Durbin series did not settle within {max_terms} abscissae "
        f"(last diff {diff:.3e}, tol {tol:.3e})")


def invert_bounded(transform: Callable[[np.ndarray], np.ndarray],
                   t: float, *, eps: float, bound: float,
                   t_factor: float = 8.0,
                   max_terms: int = _MAX_TERMS_DEFAULT) -> InversionResult:
    """Invert the transform of a function with ``|f| <= bound`` at ``t``.

    Total inversion error ``<= eps/2``: ``eps/4`` aliasing (via damping
    selection) plus ``eps/4`` series truncation (tolerance ``eps/100``
    with the paper's factor-25 margin). This is the TRR path of RRL.
    """
    if eps <= 0.0 or t <= 0.0:
        raise ValueError("eps and t must be positive")
    t_period = t_factor * t
    a = damping_for_bounded(eps / 4.0, bound, t_period)
    tol = eps / (4.0 * _SAFETY_FACTOR)
    return _drive(transform, t, a, t_period, tol, max_terms)


def invert_cumulative(transform: Callable[[np.ndarray], np.ndarray],
                      t: float, *, eps: float, r_max: float,
                      t_factor: float = 8.0,
                      max_terms: int = _MAX_TERMS_DEFAULT) -> InversionResult:
    """Invert the transform of ``C(t) = t·MRR(t)`` (``0 <= C <= r_max·t``).

    The budgets are scaled by ``t`` as in the paper (error ``t·eps/4`` for
    aliasing and tolerance ``t·eps/100`` for truncation) so that the
    *derived* measure ``MRR(t) = C(t)/t`` honours the same ``eps/2`` as
    the TRR path. The returned ``value`` is ``C(t)``, not ``MRR``.
    """
    if eps <= 0.0 or t <= 0.0:
        raise ValueError("eps and t must be positive")
    t_period = t_factor * t
    a = damping_for_cumulative(t * eps / 4.0, r_max, t, t_period)
    tol = t * eps / (4.0 * _SAFETY_FACTOR)
    return _drive(transform, t, a, t_period, tol, max_terms)


def invert(transform: Callable[[np.ndarray], np.ndarray],
           t: float, *, eps: float, bound: float,
           kind: str = "bounded",
           t_factor: float = 8.0,
           max_terms: int = _MAX_TERMS_DEFAULT) -> InversionResult:
    """Generic entry point: ``kind`` is ``"bounded"`` or ``"cumulative"``.

    For ``"cumulative"``, ``bound`` is interpreted as ``r_max`` (the bound
    on the *derivative* of the cumulative function).
    """
    if kind == "bounded":
        return invert_bounded(transform, t, eps=eps, bound=bound,
                              t_factor=t_factor, max_terms=max_terms)
    if kind == "cumulative":
        return invert_cumulative(transform, t, eps=eps, r_max=bound,
                                 t_factor=t_factor, max_terms=max_terms)
    raise ValueError(f"unknown inversion kind {kind!r}")
