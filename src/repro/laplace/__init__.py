"""Numerical Laplace transform inversion (Durbin/Crump family).

This subpackage implements the inversion layer of the paper's RRL method:
Durbin's trapezoidal approximation of the Bromwich integral with period
parameter ``T`` (the paper settles on ``T = 8t`` as the stability/speed
compromise between Crump's ``T = t`` and Piessens–Huysmans' ``T = 16t``),
Wynn's epsilon algorithm to accelerate the Fourier series, and the paper's
error-budget machinery for choosing the damping parameter ``a``.
"""

from repro.laplace.epsilon import EpsilonAccelerator, wynn_epsilon
from repro.laplace.error_control import (
    damping_for_bounded,
    damping_for_cumulative,
    damping_for_cumulative_taylor,
)
from repro.laplace.durbin import durbin_terms
from repro.laplace.inversion import (
    InversionResult,
    invert_bounded,
    invert_cumulative,
    invert,
)
from repro.laplace.gaver import invert_gaver_stehfest, stehfest_weights

__all__ = [
    "EpsilonAccelerator",
    "wynn_epsilon",
    "damping_for_bounded",
    "damping_for_cumulative",
    "damping_for_cumulative_taylor",
    "durbin_terms",
    "InversionResult",
    "invert_bounded",
    "invert_cumulative",
    "invert",
    "invert_gaver_stehfest",
    "stehfest_weights",
]
