"""Wynn's epsilon algorithm for nonlinear series acceleration.

Crump's inversion method [Crump, JACM 1976] — and the paper's RRL, which
follows it with ``T = 8t`` — feeds the partial sums of the Durbin Fourier
series through the epsilon algorithm, which computes Shanks transforms
recursively:

    ε_{-1}^{(j)} = 0,   ε_0^{(j)} = S_j,
    ε_{k+1}^{(j)} = ε_{k-1}^{(j+1)} + 1 / (ε_k^{(j+1)} − ε_k^{(j)}).

Even columns ``ε_{2m}^{(j)}`` converge (often dramatically faster than the
raw sums) to the series limit; odd columns are intermediates.

The incremental :class:`EpsilonAccelerator` keeps only the current
anti-diagonal of the table, so accepting the ``n``-th partial sum costs
``O(n)`` time and memory, and exposes the best current even-column
estimate after each term — exactly what the inversion loop's convergence
test consumes.
"""

from __future__ import annotations

import numpy as np

__all__ = ["EpsilonAccelerator", "wynn_epsilon"]

#: Denominators smaller than this (relative to the working scale) signal an
#: exactly-converged (or degenerate) column; the algorithm then reuses the
#: lower-order estimate rather than dividing by ~0.
_TINY = 1e-300

#: Relative degeneracy threshold: a denominator within round-off of the
#: column entries means the column has converged to working precision —
#: dividing by it would inject ``1/round-off`` garbage into deeper columns
#: (the classic epsilon-table failure on exactly-geometric input, where
#: ``ε_2`` is already exact and every deeper column is pure noise).
_DEGENERATE_RTOL = 5e-14


class EpsilonAccelerator:
    """Incremental epsilon-algorithm table over a stream of partial sums.

    Usage::

        acc = EpsilonAccelerator()
        for s in partial_sums:
            estimate = acc.add(s)

    ``add`` returns the current best accelerated estimate (the deepest
    even-column entry available). :attr:`n_terms` counts the partial sums
    consumed.
    """

    def __init__(self) -> None:
        self._diag: list[float] = []  # current anti-diagonal, ε_k^{(n-k)}
        self._n = 0
        self._last_estimate = 0.0
        self._degenerate = False

    @property
    def n_terms(self) -> int:
        """Number of partial sums consumed so far."""
        return self._n

    @property
    def estimate(self) -> float:
        """Best accelerated estimate seen so far."""
        return self._last_estimate

    def add(self, partial_sum: float) -> float:
        """Consume one partial sum; return the current best estimate."""
        s = float(partial_sum)
        old = self._diag
        new: list[float] = [s]
        # Build the next anti-diagonal: new[k] = ε_k^{(n-k)} where
        # ε_k = ε_{k-2}(shifted) + 1/(ε_{k-1}(new) − ε_{k-1}(old)).
        # After a degenerate break the kept anti-diagonal is shorter than
        # the term count; the table simply stops deepening past that point.
        for k in range(1, len(old) + 1):
            denom = new[k - 1] - old[k - 1]
            prev = old[k - 2] if k >= 2 else 0.0
            scale = abs(new[k - 1]) + abs(old[k - 1])
            if (not np.isfinite(denom)
                    or abs(denom) <= _DEGENERATE_RTOL * scale + _TINY):
                # Exact convergence at this depth (or an inf/inf collision
                # in an odd column): stop deepening the table here. The
                # last finished even column already holds the limit.
                self._degenerate = True
                break
            nxt = prev + 1.0 / denom
            if not np.isfinite(nxt):
                self._degenerate = True
                break
            new.append(nxt)
        self._diag = new
        self._n += 1
        # Deepest even-column entry on the anti-diagonal.
        top = len(new) - 1
        if top % 2 == 1:
            top -= 1
        self._last_estimate = new[top]
        return self._last_estimate


def wynn_epsilon(partial_sums: "np.ndarray | list[float]") -> float:
    """One-shot acceleration of a finite sequence of partial sums."""
    acc = EpsilonAccelerator()
    est = 0.0
    for s in np.asarray(partial_sums, dtype=np.float64):
        est = acc.add(float(s))
    return est
