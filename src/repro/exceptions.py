"""Exception hierarchy for the :mod:`repro` package.

All library-raised errors derive from :class:`ReproError` so callers can
catch everything from this package with a single ``except`` clause while
still distinguishing model-construction problems from numerical failures.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` package."""


class ModelError(ReproError):
    """A CTMC/DTMC or reward structure is malformed or inconsistent."""


class MeasureError(ReproError):
    """A measure specification is invalid for the given model."""


class ConvergenceError(ReproError):
    """An iterative numerical procedure failed to converge.

    Attributes
    ----------
    iterations:
        Number of iterations performed before giving up.
    residual:
        Last observed residual / tolerance gap, when meaningful.
    """

    def __init__(self, message: str, *, iterations: int | None = None,
                 residual: float | None = None) -> None:
        super().__init__(message)
        self.iterations = iterations
        self.residual = residual


class TruncationError(ReproError):
    """A truncation point (K, L, or Poisson window) could not be found
    within the configured hard limits."""


class InversionError(ReproError):
    """The numerical Laplace transform inversion failed or became unstable."""


class UnknownMethodError(ReproError, ValueError):
    """A solver method tag is not present in the solver registry.

    Subclasses :class:`ValueError` for backward compatibility with the
    pre-registry ``get_solver`` behaviour (callers catching ValueError
    keep working).

    Attributes
    ----------
    method:
        The unrecognized method tag as given by the caller.
    known:
        Sorted tuple of the registered method tags at raise time.
    """

    def __init__(self, method: str, known: tuple[str, ...]) -> None:
        super().__init__(
            f"unknown method {method!r}; known methods: "
            + ", ".join(known))
        self.method = method
        self.known = known


class RegistryError(ReproError):
    """A solver registration conflicts with an existing entry (same name,
    different spec) or is otherwise malformed."""


class ProtocolError(ReproError):
    """A wire-protocol payload is malformed, of an unsupported schema
    version, or contains values that cannot be serialized."""


class QueueError(ReproError):
    """A job-queue operation is invalid for the queue's current state
    (unknown job id, collecting an incomplete queue, corrupt journal)."""
