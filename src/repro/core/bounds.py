"""Self-certifying bounds from the truncated transformed model.

The paper builds on a bounding property of regenerative randomization
(its reference [2], Carrasco TR DMSD 99-4): the truncated chain
``V_{K,L}`` *under-counts* every reward-carrying state — trajectories
routed into the truncation state ``a`` contribute zero — so for any
non-negative reward structure

    TRR^a_{K,L}(t)  <=  TRR(t)  <=  TRR^a_{K,L}(t) + r_max · P[V(t) = a],

and the analogous sandwich holds for the cumulative measure with
``∫_0^t P[V(τ) = a] dτ``. Both correction terms have closed-form
transforms (:meth:`repro.core.transforms.VklTransform.p_absorbed_a`), so
RRL can return *certified* two-sided bounds for the price of one extra
inversion — independent of how the truncation points were chosen.

This turns the a-priori union bound used for selecting ``K, L`` into an
a-posteriori certificate: the reported interval width is the *realized*
truncation loss, typically far smaller than the selection bound.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core._setup import prepare
from repro.core.transforms import VklTransform
from repro.core.truncation import select_truncation
from repro.laplace.inversion import invert_bounded, invert_cumulative
from repro.markov.base import as_time_array
from repro.markov.ctmc import CTMC
from repro.markov.rewards import Measure, RewardStructure

__all__ = ["BoundedSolution", "RRLBoundsSolver"]


@dataclass
class BoundedSolution:
    """Two-sided certified bounds on a transient measure.

    ``lower`` and ``upper`` sandwich the exact measure up to the
    inversion budget (``eps/2``); ``width = upper − lower`` is the
    realized truncation loss ``r_max·p_a`` — an a-posteriori certificate
    for the ``K, L`` selection.
    """

    times: np.ndarray
    lower: np.ndarray
    upper: np.ndarray
    measure: Measure
    eps: float
    steps: np.ndarray
    stats: dict

    @property
    def width(self) -> np.ndarray:
        """Certified interval width per time point."""
        return self.upper - self.lower

    @property
    def midpoint(self) -> np.ndarray:
        """Midpoint estimate (error ``<= width/2 + eps/2``)."""
        return 0.5 * (self.lower + self.upper)


class RRLBoundsSolver:
    """RRL variant returning certified lower/upper bounds.

    Parameters mirror :class:`repro.core.rrl_solver.RRLSolver`. The
    inversion budget ``eps/2`` is split between the measure inversion and
    the ``p_a`` inversion (``eps/4`` each), so
    ``lower − eps/2 <= measure <= upper + eps/2`` rigorously up to the
    series-truncation heuristic shared with plain RRL.
    """

    method_name = "RRL-bounds"

    def __init__(self, regenerative: int | None = None,
                 rate: float | None = None,
                 t_factor: float = 8.0,
                 max_terms: int = 20_000) -> None:
        self._regenerative = regenerative
        self._rate = rate
        self._t_factor = t_factor
        self._max_terms = max_terms

    def solve_bounds(self,
                     model: CTMC,
                     rewards: RewardStructure,
                     measure: Measure,
                     times: np.ndarray | list[float],
                     eps: float = 1e-12) -> BoundedSolution:
        """Compute certified bounds at every time point."""
        rewards.check_model(model)
        t_arr = as_time_array(times)
        if eps <= 0.0:
            raise ValueError("eps must be positive")
        r_max = rewards.max_rate
        if r_max == 0.0:
            zeros = np.zeros_like(t_arr)
            return BoundedSolution(times=t_arr, lower=zeros.copy(),
                                   upper=zeros.copy(), measure=measure,
                                   eps=eps,
                                   steps=np.zeros(t_arr.size, dtype=int),
                                   stats={})

        setup = prepare(model, rewards, self._regenerative, self._rate)
        lower = np.empty(t_arr.size)
        upper = np.empty(t_arr.size)
        steps = np.empty(t_arr.size, dtype=np.int64)
        pa_vals = np.empty(t_arr.size)
        order = np.argsort(t_arr)
        for i in order:
            t = float(t_arr[i])
            choice = select_truncation(setup.main, setup.primed, setup.rate,
                                       t, eps / 2.0, r_max)
            tr = VklTransform(
                setup.main.snapshot(),
                setup.primed.snapshot() if setup.primed is not None else None,
                choice.k_point, choice.l_point, setup.rate,
                setup.absorbing_rewards)
            if measure is Measure.TRR:
                low = invert_bounded(tr.trr, t, eps=eps / 2.0, bound=r_max,
                                     t_factor=self._t_factor,
                                     max_terms=self._max_terms).value
                pa = invert_bounded(tr.p_absorbed_a, t, eps=eps / 2.0,
                                    bound=1.0, t_factor=self._t_factor,
                                    max_terms=self._max_terms).value
                lower[i] = max(low, 0.0)
                upper[i] = min(low + r_max * max(pa, 0.0), r_max)
            else:
                low = invert_cumulative(tr.cumulative, t, eps=eps / 2.0,
                                        r_max=r_max,
                                        t_factor=self._t_factor,
                                        max_terms=self._max_terms).value
                # ∫ p_a has transform p̃_a/s and is bounded by t (a
                # probability integrated over [0, t]).
                pa_int = invert_cumulative(
                    lambda s: tr.p_absorbed_a(np.asarray(s)) / s, t,
                    eps=eps / 2.0, r_max=1.0, t_factor=self._t_factor,
                    max_terms=self._max_terms).value
                pa = pa_int / t
                lower[i] = max(low / t, 0.0)
                upper[i] = min(low / t + r_max * max(pa, 0.0), r_max)
            pa_vals[i] = pa
            steps[i] = choice.steps
        return BoundedSolution(
            times=t_arr, lower=lower, upper=upper, measure=measure,
            eps=eps, steps=steps,
            stats={
                "rate": setup.rate,
                "regenerative": setup.regenerative,
                "p_absorbed": pa_vals,
                "transformation_steps": setup.main.steps_done
                + (setup.primed.steps_done if setup.primed else 0),
            })
