"""Shared preparation code for the RR and RRL solvers."""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

import numpy as np

from repro.batch.kernel import UniformizationKernel
from repro.core.schedules import ScheduleBuilder
from repro.exceptions import ModelError
from repro.markov.ctmc import CTMC
from repro.markov.rewards import RewardStructure

__all__ = ["RegenerativeSetup", "prepare"]


@dataclass
class RegenerativeSetup:
    """Everything both regenerative solvers need before per-``t`` work.

    Holds the incremental schedule builders (shared across all requested
    time points — larger horizons extend, never recompute), the
    randomization rate, the absorbing-state bookkeeping and ``α_r``.

    ``lock`` serializes *extension* of the builders when the setup is
    shared across threads (the thread backend hands one cached setup to
    every same-model RR/RRL cell): two concurrent solves must not
    interleave ``step()`` mutations. Solvers hold it for their
    truncation/extension phase; with a private setup it is uncontended
    and costs one acquire per solve. Setups are never pickled (they are
    built and cached worker-side), so the unpicklable lock is fine here.
    """

    main: ScheduleBuilder
    primed: ScheduleBuilder | None
    rate: float
    absorbing: np.ndarray
    absorbing_rewards: np.ndarray
    alpha_r: float
    regenerative: int
    lock: threading.RLock = field(default_factory=threading.RLock,
                                  repr=False, compare=False)


def default_regenerative_state(model: CTMC) -> int:
    """The paper's choice: the (most likely) initial state.

    Ties are broken by index; absorbing states are excluded (an absorbing
    regenerative state would make the excursion description degenerate).
    """
    mask = np.ones(model.n_states, dtype=bool)
    mask[model.absorbing_states()] = False
    masked = np.where(mask, model.initial, -1.0)
    idx = int(np.argmax(masked))
    if masked[idx] < 0.0:
        raise ModelError("model has no non-absorbing state")
    return idx


def prepare(model: CTMC, rewards: RewardStructure,
            regenerative: int | None, rate: float | None,
            kernel: UniformizationKernel | None = None
            ) -> RegenerativeSetup:
    """Uniformize the model and construct the schedule builders.

    An injected pre-built ``kernel`` skips the re-uniformization and lets
    both schedule builders step through the shared CSR; the resulting
    setup is bit-identical.
    """
    if regenerative is None:
        regenerative = default_regenerative_state(model)
    main, primed, lam, absorbing = ScheduleBuilder.for_model(
        model, rewards, regenerative, rate, kernel=kernel)
    return RegenerativeSetup(
        main=main,
        primed=primed,
        rate=lam,
        absorbing=absorbing,
        absorbing_rewards=rewards.rates[absorbing],
        alpha_r=float(model.initial[regenerative]),
        regenerative=int(regenerative),
    )
