"""Cross-cell memoization of the RR/RRL schedule transformation.

The expensive, cell-independent part of both regenerative solvers is the
*transformation phase*: stepping the randomized DTMC to extract the
regenerative schedules (``K + L`` matrix–vector products per model). The
per-``t`` work — truncation-point selection, building/inverting
``V_{K,L}`` — only ever *reads* schedule prefixes. Two properties make the
phase memoizable across solve calls:

* a :class:`~repro.core.schedules.ScheduleBuilder` is **incremental and
  prefix-stable** — extending it for a larger horizon never changes any
  already-recorded ``a(k)/c(k)/q_k/v_k`` entry, and truncation selection
  plus the transforms consume only the ``[0..K]`` (``[0..L]``) prefix;
* the schedules depend only on ``(model, rewards, regenerative state,
  randomization rate)`` — **not** on ``t`` or ``ε`` (those only decide
  how far the prefix must extend) and not on solver tuning knobs like
  RRL's ``t_factor`` or RR's ``inner_max_steps``.

So a grid of RR/RRL cells sharing a model pays the stepping phase once:
the first cell builds the :class:`~repro.core._setup.RegenerativeSetup`,
later cells (RR *and* RRL — the key carries no method) reuse and at most
extend it, with bit-for-bit identical values and step counts (pinned by
``tests/core/test_schedule_cache.py`` and the three-way
``run_paper_grid.py --verify``).

Workers use the process-wide instance (:func:`process_schedule_cache`);
the planner's :func:`repro.batch.planner.run_request` injects it into
every solver whose :class:`~repro.solvers.registry.SolverSpec` declares
``schedule_memoizable`` (disable per run with ``memoize=False``).
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from collections.abc import Mapping
from typing import TYPE_CHECKING, Any

from repro.core._setup import (
    RegenerativeSetup,
    default_regenerative_state,
    prepare,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.batch.kernel import UniformizationKernel
    from repro.markov.ctmc import CTMC
    from repro.markov.rewards import RewardStructure

__all__ = [
    "ScheduleCache",
    "regenerative_schedule_fingerprint",
    "process_schedule_cache",
    "process_schedule_cache_clear",
    "process_schedule_cache_info",
]

#: Setups a process keeps warm. A paper-style grid touches a handful of
#: models; RR and RRL share entries (the key has no method), so 16 covers
#: every in-tree sweep while bounding a long-lived worker's memory.
_DEFAULT_MAX_ENTRIES = 16


def regenerative_schedule_fingerprint(
        solver_kwargs: Mapping[str, Any]) -> tuple:
    """The subset of RR/RRL constructor kwargs the transformation depends
    on (the :class:`~repro.solvers.registry.SolverSpec` fingerprint hook,
    consumed by
    :meth:`repro.batch.planner.ExecutionPlan.schedule_builds`).

    Everything else (``t_factor``, ``max_terms``, ``inner_max_steps``)
    tunes only the per-``t`` solution phase, so cells differing in those
    still share one schedule.
    """
    return (("regenerative", solver_kwargs.get("regenerative")),
            ("rate", solver_kwargs.get("rate")))


class ScheduleCache:
    """LRU of :class:`~repro.core._setup.RegenerativeSetup` objects keyed
    on ``(model digest, rewards digest, regenerative state, rate)``.

    Entries are *live* builders: a consumer may extend them (that is the
    point — later cells inherit the prefix), but must never mutate
    recorded entries; :class:`~repro.core.schedules.ScheduleBuilder` has
    no API to do so.

    The cache is thread-safe: lookups, counters and — deliberately — the
    build-on-miss ``prepare`` call happen under one lock, so two thread
    workers missing the same key cannot both pay the ``K + L`` stepping
    phase ("one build per process" is the thread backend's headline
    saving, and builds are exactly the work being amortized). *Using* a
    returned setup concurrently is a separate concern: consumers that
    may extend the shared builders (RR/RRL) serialize on the setup's own
    :attr:`~repro.core._setup.RegenerativeSetup.lock`.
    """

    def __init__(self, max_entries: int = _DEFAULT_MAX_ENTRIES) -> None:
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        self._max_entries = int(max_entries)
        self._entries: "OrderedDict[tuple, RegenerativeSetup]" = \
            OrderedDict()
        self._hits = 0
        self._misses = 0
        self._lock = threading.RLock()

    @staticmethod
    def key_for(model: "CTMC", rewards: "RewardStructure",
                regenerative: int | None, rate: float | None,
                kernel: "UniformizationKernel | None" = None) -> tuple:
        """The cache identity of a transformation request.

        ``regenerative``/``rate`` are resolved to the same defaults the
        solvers use (paper's choice of the initial state; the model's
        maximum output rate), so explicit-default and implicit-default
        requests share one entry.
        """
        if regenerative is None:
            regenerative = default_regenerative_state(model)
        if rate is None:
            if kernel is not None and kernel.rate is not None:
                rate = kernel.rate
            else:
                rate = model.max_output_rate
        return (model.content_digest(), rewards.content_digest(),
                int(regenerative), float(rate))

    def setup_for(self, model: "CTMC", rewards: "RewardStructure",
                  regenerative: int | None = None,
                  rate: float | None = None,
                  *,
                  kernel: "UniformizationKernel | None" = None
                  ) -> tuple[RegenerativeSetup, bool]:
        """``(setup, was_hit)`` — cached when available, built otherwise.

        A hit returns the *same* setup object earlier cells stepped, so
        the ``K + L`` prefix those cells paid for is free here; results
        remain bit-identical to a cold build (prefix stability).
        """
        key = self.key_for(model, rewards, regenerative, rate,
                           kernel=kernel)
        with self._lock:
            setup = self._entries.get(key)
            if setup is not None:
                self._hits += 1
                self._entries.move_to_end(key)
                return setup, True
            self._misses += 1
            setup = prepare(model, rewards, regenerative, rate,
                            kernel=kernel)
            self._entries[key] = setup
            while len(self._entries) > self._max_entries:
                self._entries.popitem(last=False)
            return setup, False

    def info(self) -> dict[str, int]:
        """Hit/miss/size statistics (bench and CI artifacts report these)."""
        with self._lock:
            return {"hits": self._hits, "misses": self._misses,
                    "size": len(self._entries),
                    "max_size": self._max_entries}

    def clear(self) -> None:
        """Drop every entry and reset the counters."""
        with self._lock:
            self._entries.clear()
            self._hits = 0
            self._misses = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)


#: The per-process instance batch workers share (one per pool worker —
#: exactly the "per-worker LRU" granularity of the planner's model/kernel
#: cache, and cleared together with it by ``worker_cache_clear``).
_PROCESS_CACHE = ScheduleCache()


def process_schedule_cache() -> ScheduleCache:
    """This process's shared schedule-transformation cache."""
    return _PROCESS_CACHE


def process_schedule_cache_clear() -> None:
    """Drop the process-wide cache (tests, worker hygiene)."""
    _PROCESS_CACHE.clear()


def process_schedule_cache_info() -> dict[str, int]:
    """Statistics of the process-wide cache."""
    return _PROCESS_CACHE.info()
