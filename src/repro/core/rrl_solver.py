"""Regenerative randomization with Laplace transform inversion — ``RRL``.

This is the paper's contribution. It shares the transformation phase with
RR (``K + L`` DTMC steps to extract the regenerative schedules and select
truncation points for error ``eps/2``) but replaces the inner standard-
randomization solution of ``V_{K,L}`` by

1. the closed-form Laplace transform of ``TRR^a_{K,L}`` / ``C_{K,L}``
   (:class:`repro.core.transforms.VklTransform`), and
2. numerical inversion by Durbin's formula with ``T = 8t``, damping chosen
   for an ``eps/4`` aliasing budget, and epsilon-accelerated series
   summation stopped at the ``eps/100`` tolerance
   (:mod:`repro.laplace.inversion`),

so the solution phase costs a few hundred transform evaluations —
*independent of* ``Λt`` — instead of ``O(Λt)`` inner steps. The paper
reports the inversion at 1–2% of total RRL runtime with 105–329 abscissae;
the solver records the abscissa count per time point so the benchmark
harness can reproduce that claim.
"""

from __future__ import annotations

import numpy as np

from repro.batch.kernel import UniformizationKernel
from repro.core._setup import prepare
from repro.core.schedule_cache import (
    ScheduleCache,
    regenerative_schedule_fingerprint,
)
from repro.core.transforms import VklTransform
from repro.core.truncation import select_truncation
from repro.laplace.inversion import invert_bounded, invert_cumulative
from repro.markov.base import TransientSolution, as_time_array
from repro.markov.ctmc import CTMC
from repro.markov.rewards import Measure, RewardStructure
from repro.solvers.registry import SolverSpec, register

__all__ = ["RRLSolver"]


class RRLSolver:
    """Transient solver using regenerative randomization with Laplace
    transform inversion (the paper's ``RRL``).

    Parameters
    ----------
    regenerative:
        Index of the regenerative state ``r``; defaults to the most likely
        initial state.
    rate:
        Randomization rate ``Λ``; defaults to the model's maximum output
        rate.
    t_factor:
        Half-period multiplier ``T = t_factor · t``; the paper settles on
        8 after trying 1 (Crump — fast, occasionally unstable) through 16
        (Piessens–Huysmans — stable, slow).
    max_terms:
        Cap on Durbin series terms per inversion.
    """

    method_name = "RRL"

    def __init__(self, regenerative: int | None = None,
                 rate: float | None = None,
                 t_factor: float = 8.0,
                 max_terms: int = 20_000) -> None:
        self._regenerative = regenerative
        self._rate = rate
        self._t_factor = t_factor
        self._max_terms = max_terms

    def solve(self,
              model: CTMC,
              rewards: RewardStructure,
              measure: Measure,
              times: np.ndarray | list[float],
              eps: float = 1e-12,
              *,
              kernel: UniformizationKernel | None = None,
              schedule_cache: ScheduleCache | None = None
              ) -> TransientSolution:
        """Compute the measure at every time point with total error ``eps``.

        ``kernel`` may be a pre-built (cached/shared) kernel from
        ``UniformizationKernel.from_model(model)``; the transformation
        phase then steps through it instead of re-uniformizing, with
        bit-identical results. ``schedule_cache`` additionally shares the
        transformation itself across solve calls — RR and RRL cells on
        one ``(model, rewards, regenerative, rate)`` pay the ``K + L``
        stepping phase once per cache, bit-identically — see
        :mod:`repro.core.schedule_cache`.
        """
        rewards.check_model(model)
        t_arr = as_time_array(times)
        if eps <= 0.0:
            raise ValueError("eps must be positive")
        r_max = rewards.max_rate
        if r_max == 0.0:
            return TransientSolution(
                times=t_arr, values=np.zeros_like(t_arr), measure=measure,
                eps=eps, steps=np.zeros(t_arr.size, dtype=int),
                method=self.method_name,
                stats={"rate": self._rate if self._rate is not None
                       else model.max_output_rate})

        cache_hit: bool | None = None
        if schedule_cache is not None:
            setup, cache_hit = schedule_cache.setup_for(
                model, rewards, self._regenerative, self._rate,
                kernel=kernel)
        else:
            setup = prepare(model, rewards, self._regenerative, self._rate,
                            kernel=kernel)
        values = np.empty(t_arr.size)
        steps = np.empty(t_arr.size, dtype=np.int64)
        k_points = np.empty(t_arr.size, dtype=np.int64)
        l_points = np.full(t_arr.size, -1, dtype=np.int64)
        abscissae = np.empty(t_arr.size, dtype=np.int64)
        dampings = np.empty(t_arr.size)
        order = np.argsort(t_arr)
        # A cached setup may be shared with concurrent solves (thread
        # backend): the lock serializes builder extension and keeps the
        # steps_done accounting attributable to this call. Private
        # setups pay one uncontended acquire.
        with setup.lock:
            # Steps already on the (possibly shared) builders before
            # this solve: the difference is what *this* call charged.
            reused_steps = setup.main.steps_done \
                + (setup.primed.steps_done if setup.primed else 0)
            for i in order:
                t = float(t_arr[i])
                choice = select_truncation(setup.main, setup.primed,
                                           setup.rate, t, eps / 2.0, r_max)
                transform = VklTransform(
                    setup.main.snapshot(),
                    setup.primed.snapshot()
                    if setup.primed is not None else None,
                    choice.k_point, choice.l_point, setup.rate,
                    setup.absorbing_rewards)
                if measure is Measure.TRR:
                    res = invert_bounded(transform.trr, t, eps=eps,
                                         bound=r_max,
                                         t_factor=self._t_factor,
                                         max_terms=self._max_terms)
                    values[i] = res.value
                else:
                    res = invert_cumulative(transform.cumulative, t,
                                            eps=eps, r_max=r_max,
                                            t_factor=self._t_factor,
                                            max_terms=self._max_terms)
                    values[i] = res.value / t
                steps[i] = choice.steps
                k_points[i] = choice.k_point
                l_points[i] = choice.l_point \
                    if choice.l_point is not None else -1
                abscissae[i] = res.n_abscissae
                dampings[i] = res.damping
            transformation_steps = setup.main.steps_done \
                + (setup.primed.steps_done if setup.primed else 0) \
                - reused_steps
        stats = {
            "rate": setup.rate,
            "regenerative": setup.regenerative,
            "alpha_r": setup.alpha_r,
            "K": k_points,
            "L": l_points,
            "n_abscissae": abscissae,
            "damping": dampings,
            "t_factor": self._t_factor,
            "transformation_steps": transformation_steps,
        }
        if cache_hit is not None:
            stats["schedule_cache_hit"] = cache_hit
            stats["transformation_steps_reused"] = reused_steps
        return TransientSolution(
            times=t_arr, values=values, measure=measure, eps=eps,
            steps=steps, method=self.method_name, stats=stats)


register(SolverSpec(
    name="RRL",
    constructor=RRLSolver,
    summary="Regenerative randomization with Laplace transform inversion "
            "(the paper's method)",
    kernel_aware=True,
    schedule_memoizable=True,
    schedule_fingerprint=regenerative_schedule_fingerprint,
    table_label="RR/RRL",
))
