"""Closed-form Laplace transforms of the truncated transformed model.

Given the regenerative schedules and truncation points ``K, L`` the chain
``V_{K,L}`` admits closed-form transforms (paper, Section 2.1). With
``γ = Λ/(s+Λ)`` and the *unnormalized* schedule masses
(``c(k) = a(k)b(k)``, ``vmass_k = Σ_i v_k^i a(k)``,
``rfv_k = Σ_i r_{f_i} v_k^i a(k)``):

    p̃_0(s) = A(s) / B(s)
    A(s) = 1 − (s/(s+Λ)) Σ_{k=0}^{L-1} a'(k)γ^k
             − (Λ/(s+Λ)) Σ_{k=0}^{L-1} vmass'_k γ^k − a'(L) γ^L
    B(s) = s Σ_{k=0}^{K} a(k)γ^k + Λ Σ_{k=0}^{K-1} vmass_k γ^k
             + Λ a(K) γ^K

    TRR̃(s) = [ Σ_{k=0}^{K} c(k)γ^k + (Λ/s) Σ_{k=0}^{K-1} rfv_k γ^k ] p̃_0(s)
              + (1/(s+Λ)) Σ_{k=0}^{L} c'(k)γ^k
              + (1/s) Σ_{k=0}^{L-1} rfv'_k γ^{k+1}

    C̃(s)   = TRR̃(s)/s              (C(t) = t·MRR(t))

(The paper prints A(s) with sums to ``L`` and a trailing ``a'(L)γ^{L+1}``;
the two forms are algebraically identical since ``s/(s+Λ) + γ = 1``. We
re-derived the expressions from the chain's balance equations — see
DESIGN.md — and the test-suite verifies them against a direct solution of
the explicitly-built ``V_{K,L}``.)

When ``α_r = 1`` there is no primed chain: ``A(s) = 1`` and the primed
sums vanish (the paper's ``V_K`` case).

Evaluation strategy: all sums are polynomials in ``γ`` with non-negative
coefficients. For a batch of abscissae we form the matrix of powers
``γ^k`` via ``exp(k·log γ)`` (``|γ| < 1`` for ``Re s > 0``, so this is
stable and fully vectorized) and take inner products with the coefficient
vectors; the powers matrix is shared by all five sums, and the transform
also exposes ``p_absorbed_a`` — the transform of the probability of the
truncation state — used by a-posteriori error checks.
"""

from __future__ import annotations

import numpy as np

from repro.core.schedules import RegenerativeSchedule
from repro.exceptions import ModelError

__all__ = ["VklTransform"]


class VklTransform:
    """Vectorized evaluator of the closed-form transforms of ``V_{K,L}``.

    Parameters
    ----------
    main:
        Main-chain schedule snapshot (must cover steps ``0..K``).
    primed:
        Primed-chain snapshot covering ``0..L``, or ``None`` for
        ``α_r = 1``.
    k_point, l_point:
        Truncation points ``K`` and ``L`` (``l_point`` must be ``None``
        iff ``primed`` is).
    rate:
        Randomization rate ``Λ``.
    absorbing_rewards:
        Reward rates of the ``A`` absorbing states, aligned with the
        ``vmass`` columns of the schedules.
    """

    def __init__(self,
                 main: RegenerativeSchedule,
                 primed: RegenerativeSchedule | None,
                 k_point: int,
                 l_point: int | None,
                 rate: float,
                 absorbing_rewards: np.ndarray) -> None:
        if (primed is None) != (l_point is None):
            raise ModelError("primed schedule and l_point must come together")
        k = int(k_point)
        if k >= main.n:
            if not main.exhausted:
                raise ModelError(f"main schedule too short for K={k}")
            k = main.n - 1
        self._k = k
        self._rate = float(rate)
        rf = np.asarray(absorbing_rewards, dtype=np.float64)

        # Main-chain coefficient vectors (lengths K+1 / K).
        self._a = main.a[: k + 1]
        self._c = main.c[: k + 1]
        n_trans = min(k, main.vmass.shape[0])
        vm = main.vmass[:n_trans]
        self._vsum = np.zeros(k)
        self._rfv = np.zeros(k)
        if vm.shape[1]:
            self._vsum[:n_trans] = vm.sum(axis=1)
            self._rfv[:n_trans] = vm @ rf
        self._a_tail = self._a[k] if k < main.n else 0.0

        # Primed-chain coefficient vectors.
        self._has_primed = primed is not None
        if primed is not None:
            lp = int(l_point)  # type: ignore[arg-type]
            if lp >= primed.n:
                if not primed.exhausted:
                    raise ModelError(f"primed schedule too short for L={lp}")
                lp = primed.n - 1
            self._l = lp
            self._ap = primed.a[: lp + 1]
            self._cp = primed.c[: lp + 1]
            n_t = min(lp, primed.vmass.shape[0])
            vmp = primed.vmass[:n_t]
            self._vsum_p = np.zeros(lp)
            self._rfv_p = np.zeros(lp)
            if vmp.shape[1]:
                self._vsum_p[:n_t] = vmp.sum(axis=1)
                self._rfv_p[:n_t] = vmp @ rf
            self._ap_tail = self._ap[lp]
        else:
            self._l = None

    # -- helpers -----------------------------------------------------------

    @property
    def k_point(self) -> int:
        """Effective main truncation point ``K``."""
        return self._k

    @property
    def l_point(self) -> int | None:
        """Effective primed truncation point ``L`` (``None`` if α_r = 1)."""
        return self._l

    def _powers(self, s: np.ndarray, n: int) -> np.ndarray:
        """Matrix ``γ(s)^k`` of shape ``(len(s), n)``."""
        gamma = self._rate / (s + self._rate)
        ks = np.arange(n, dtype=np.float64)
        return np.exp(np.log(gamma)[:, None] * ks[None, :])

    # -- transform components ---------------------------------------------

    def p0(self, s: np.ndarray) -> np.ndarray:
        """Transform of ``P[V(t) = s_0]`` at complex abscissae ``s``."""
        s = np.asarray(s, dtype=np.complex128)
        lam = self._rate
        pw = self._powers(s, self._k + 1)
        b_val = (s * (pw @ self._a)
                 + lam * (pw[:, : self._k] @ self._vsum)
                 + lam * self._a_tail * pw[:, self._k])
        if not self._has_primed:
            return 1.0 / b_val
        lp = self._l
        pwp = self._powers(s, lp + 1)
        a_val = (1.0
                 - (s / (s + lam)) * (pwp[:, :lp] @ self._ap[:lp])
                 - (lam / (s + lam)) * (pwp[:, :lp] @ self._vsum_p)
                 - self._ap_tail * pwp[:, lp])
        return a_val / b_val

    def trr(self, s: np.ndarray) -> np.ndarray:
        """Transform of ``TRR^a_{K,L}(t)`` at complex abscissae ``s``."""
        s = np.asarray(s, dtype=np.complex128)
        lam = self._rate
        pw = self._powers(s, self._k + 1)
        main_reward = pw @ self._c
        main_absorb = (lam / s) * (pw[:, : self._k] @ self._rfv)
        out = (main_reward + main_absorb) * self.p0(s)
        if self._has_primed:
            lp = self._l
            pwp = self._powers(s, lp + 1)
            gamma = lam / (s + lam)
            out = out + (pwp @ self._cp) / (s + lam)
            out = out + (gamma / s) * (pwp[:, :lp] @ self._rfv_p)
        return out

    def cumulative(self, s: np.ndarray) -> np.ndarray:
        """Transform of ``C_{K,L}(t) = t·MRR^a_{K,L}(t)``."""
        s = np.asarray(s, dtype=np.complex128)
        return self.trr(s) / s

    def p_absorbed_a(self, s: np.ndarray) -> np.ndarray:
        """Transform of ``P[V(t) = a]`` — the realized truncation loss.

        Flow into ``a`` comes from ``s_K`` at rate ``Λ`` and (primed case)
        from ``s'_L`` at rate ``Λ``:
        ``p̃_a = (Λ/s)[a(K)γ^K p̃_0 + a'(L)γ^L/(s+Λ)]``.
        Useful as an a-posteriori truncation-error certificate:
        ``err <= r_max · p_a(t)``.
        """
        s = np.asarray(s, dtype=np.complex128)
        lam = self._rate
        pw = self._powers(s, self._k + 1)
        out = (lam / s) * self._a_tail * pw[:, self._k] * self.p0(s)
        if self._has_primed:
            lp = self._l
            pwp = self._powers(s, lp + 1)
            out = out + (lam / s) * self._ap_tail * pwp[:, lp] / (s + lam)
        return out
