"""Regenerative schedules: the quantities RR extracts from the model.

Regenerative randomization picks a regenerative state ``r`` and describes
the randomized DTMC ``X̂`` through the statistics of its excursions away
from ``r``. Stepping the sub-stochastic vector

    u_0 = e_r,     u_{k+1} = (u_k P) with the entries at r and at the
                   absorbing states zeroed after recording them,

yields, for every step ``k``:

* ``a(k) = Σ u_k``         — probability the excursion is still running,
* ``c(k) = Σ u_k(i) r_i``  — reward mass carried (``c = a·b`` of the paper),
* ``qmass(k) = (u_k P)_r`` — mass regenerating at step ``k+1``
  (``= q_k a(k)``),
* ``vmass(k, i) = (u_k P)_{f_i}`` — mass absorbed into ``f_i`` at step
  ``k+1`` (``= v_k^i a(k)``).

The same recursion started from the initial distribution restricted to
``S \\ {r}`` (mass ``1 − α_r``) produces the primed schedules ``a'(k)``
etc. Working with the *unnormalized* masses is deliberate: the transforms
of Section 2.1 only ever consume the products ``a(k)b(k)``, ``v_k^i a(k)``
— so no divisions occur and the computation stays subtraction-free, the
stability property randomization methods are prized for.

A :class:`ScheduleBuilder` is *incremental*: truncation-point selection
extends it on demand, and a sweep over increasing ``t`` reuses all
previously computed steps (this is why RR/RRL step counts in the paper's
tables are cumulative-friendly).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import sparse

from repro.batch.kernel import UniformizationKernel, ensure_model_kernel
from repro.exceptions import ModelError
from repro.markov.ctmc import CTMC
from repro.markov.rewards import RewardStructure

__all__ = ["RegenerativeSchedule", "ScheduleBuilder"]

#: Below this total excursion mass the schedule is declared exhausted:
#: the truncation error of any longer chain is zero at double precision.
_EXHAUSTED = 1e-305


@dataclass(frozen=True)
class RegenerativeSchedule:
    """Frozen snapshot of a schedule prefix (length ``n``).

    ``a`` and ``c`` have length ``n``; ``qmass`` and ``vmass`` have length
    ``n - 1`` (they describe transitions *out of* step ``k`` and the last
    recorded step has not been stepped yet) unless the excursion is
    exhausted, in which case all mass is gone and trailing entries vanish.
    """

    a: np.ndarray
    c: np.ndarray
    qmass: np.ndarray
    vmass: np.ndarray  # shape (n-1, A)
    exhausted: bool

    @property
    def n(self) -> int:
        """Number of recorded steps (entries of ``a``)."""
        return int(self.a.size)

    def b(self, k: int) -> float:
        """Conditional expected reward ``b(k) = c(k)/a(k)`` (0 if a=0)."""
        if self.a[k] <= 0.0:
            return 0.0
        return float(self.c[k] / self.a[k])


class ScheduleBuilder:
    """Incrementally computes a regenerative schedule by stepping ``P``.

    Parameters
    ----------
    transition:
        CSR transition matrix of the randomized DTMC ``X̂``.
    regenerative:
        Index of the regenerative state ``r``.
    absorbing:
        Indices of the absorbing states ``f_1 .. f_A`` (may be empty).
    reward:
        Reward rate vector over the full state space.
    u0:
        Starting sub-stochastic vector (``e_r`` for the main schedule, the
        initial distribution restricted to ``S \\ {r}`` for the primed
        one). Entries at ``r``/absorbing states must already be zero
        except that ``u0 = e_r`` is of course allowed for the main chain.
    kernel:
        Optional pre-built stepping kernel over the same ``P``. The main
        and primed builders (and any other consumer of the model) can
        share one kernel — and hence one CSR transpose — instead of each
        converting ``transition`` privately; stepping is bit-identical
        either way.
    """

    def __init__(self,
                 transition: sparse.csr_matrix,
                 regenerative: int,
                 absorbing: np.ndarray,
                 reward: np.ndarray,
                 u0: np.ndarray,
                 kernel: UniformizationKernel | None = None) -> None:
        self._kernel = kernel if kernel is not None \
            else UniformizationKernel(transition)
        if self._kernel.n_states != transition.shape[0]:
            raise ModelError("kernel does not match transition matrix")
        self._r_idx = int(regenerative)
        self._abs_idx = np.asarray(absorbing, dtype=int)
        self._reward = np.asarray(reward, dtype=np.float64)
        self._u = np.asarray(u0, dtype=np.float64).copy()
        if np.any(self._u < 0.0):
            raise ModelError("u0 must be non-negative")
        if self._abs_idx.size and np.any(self._u[self._abs_idx] > 0.0):
            raise ModelError("u0 must carry no mass on absorbing states")

        self._a: list[float] = [float(self._u.sum())]
        self._c: list[float] = [float(self._reward @ self._u)]
        self._qmass: list[float] = []
        self._vmass: list[np.ndarray] = []
        self._exhausted = self._a[0] <= _EXHAUSTED
        self._steps_done = 0

    @classmethod
    def for_model(cls, model: CTMC, rewards: RewardStructure,
                  regenerative: int,
                  rate: float | None = None,
                  kernel: UniformizationKernel | None = None
                  ) -> tuple["ScheduleBuilder", "ScheduleBuilder | None",
                             float, np.ndarray]:
        """Build the main and primed builders for a model.

        Returns ``(main, primed_or_None, rate, absorbing_indices)``.
        The primed builder is ``None`` when the initial distribution is
        concentrated on ``r`` (``α_r = 1``), the paper's ``V_K`` case.
        With a pre-built ``kernel`` (from
        ``UniformizationKernel.from_model(model)``) the model is not
        re-uniformized and both builders step through the shared kernel;
        the schedules are bit-identical either way.
        """
        rewards.check_model(model)
        kernel, dtmc, lam = ensure_model_kernel(model, kernel, rate)
        absorbing = model.absorbing_states()
        if regenerative in set(int(i) for i in absorbing):
            raise ModelError("the regenerative state cannot be absorbing")
        init = model.initial
        if absorbing.size and float(init[absorbing].sum()) > 0.0:
            raise ModelError(
                "initial probability on absorbing states must be zero "
                "(paper assumption P[X(0)=f_i]=0)")
        p = dtmc.transition_matrix
        r_vec = rewards.rates

        e_r = np.zeros(model.n_states)
        e_r[regenerative] = 1.0
        main = cls(p, regenerative, absorbing, r_vec, e_r, kernel=kernel)

        alpha_r = float(init[regenerative])
        primed: ScheduleBuilder | None = None
        if alpha_r < 1.0:
            u0 = init.copy()
            u0[regenerative] = 0.0
            primed = cls(p, regenerative, absorbing, r_vec, u0,
                         kernel=kernel)
        return main, primed, lam, absorbing

    # -- incremental stepping ---------------------------------------------

    @property
    def n_recorded(self) -> int:
        """Number of steps with ``a(k)`` recorded (``k = 0 .. n-1``)."""
        return len(self._a)

    @property
    def steps_done(self) -> int:
        """Number of DTMC matrix–vector products performed so far."""
        return self._steps_done

    @property
    def exhausted(self) -> bool:
        """True once the excursion mass has vanished (no truncation error
        beyond the recorded prefix)."""
        return self._exhausted

    @property
    def n_absorbing(self) -> int:
        """Number of absorbing states ``A``."""
        return int(self._abs_idx.size)

    def a_last(self) -> float:
        """Most recent ``a(k)`` value."""
        return self._a[-1]

    def a_at(self, k: int) -> float:
        """``a(k)`` for an already-recorded step ``k`` (O(1))."""
        return self._a[k]

    def step(self) -> None:
        """Advance one step (no-op when exhausted)."""
        if self._exhausted:
            return
        y = self._kernel.step(self._u)
        q = float(y[self._r_idx])
        y[self._r_idx] = 0.0
        if self._abs_idx.size:
            v = y[self._abs_idx].copy()
            y[self._abs_idx] = 0.0
        else:
            v = np.zeros(0)
        self._qmass.append(q)
        self._vmass.append(v)
        self._u = y
        self._a.append(float(y.sum()))
        self._c.append(float(self._reward @ y))
        self._steps_done += 1
        if self._a[-1] <= _EXHAUSTED:
            self._exhausted = True

    def extend_to(self, k: int) -> None:
        """Ensure ``a(k)`` is recorded (or the schedule is exhausted)."""
        while len(self._a) <= k and not self._exhausted:
            self.step()

    def snapshot(self) -> RegenerativeSchedule:
        """Freeze the current prefix into arrays."""
        n = len(self._a)
        a_arr = np.asarray(self._a)
        c_arr = np.asarray(self._c)
        q_arr = np.asarray(self._qmass)
        if self._vmass:
            v_arr = np.vstack(self._vmass)
        else:
            v_arr = np.zeros((0, self.n_absorbing))
        return RegenerativeSchedule(a=a_arr[:n], c=c_arr[:n],
                                    qmass=q_arr, vmass=v_arr,
                                    exhausted=self._exhausted)
