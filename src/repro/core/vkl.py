"""Explicit construction of the truncated transformed chain ``V_{K,L}``.

The original RR method solves this chain by standard randomization; the
test-suite additionally uses it to validate the closed-form transforms of
:mod:`repro.core.transforms` (solve the explicit chain, compare against
the inverted transform).

State layout (paper's Figure 1):

====================  =========================================
index                 state
====================  =========================================
``0 .. K``            ``s_0 .. s_K`` (main chain)
``K+1 .. K+1+L``      ``s'_0 .. s'_L`` (only when ``α_r < 1``)
next ``A`` indices    ``f_1 .. f_A``
last index            ``a`` (truncation sink)
====================  =========================================

Transition rates (all states of the two chains have total exit rate ``Λ``;
the ``q_0 Λ`` self-loop of ``s_0`` is dropped — a CTMC self-loop is a
no-op):

* ``s_k → s_{k+1}`` at ``w_k Λ = Λ a(k+1)/a(k)``,
* ``s_k → s_0`` at ``q_k Λ``, ``s_k → f_i`` at ``v_k^i Λ`` (``k < K``),
* ``s_K → a`` at ``Λ``; primed chain analogous with ``s'_k → s_0`` for
  the first visit to ``r`` and ``s'_L → a`` at ``Λ``.

Rewards: ``b(k)`` on ``s_k``, ``b'(k)`` on ``s'_k``, the original
``r_{f_i}`` on ``f_i``, and 0 on ``a``.
"""

from __future__ import annotations

import numpy as np

from repro.core.schedules import RegenerativeSchedule
from repro.exceptions import ModelError
from repro.markov.ctmc import CTMC
from repro.markov.rewards import RewardStructure

__all__ = ["build_vkl"]


def _chain_transitions(sched: RegenerativeSchedule, k_point: int,
                       base: int, s0_index: int, f_base: int,
                       sink: int, rate: float,
                       out: list[tuple[int, int, float]]) -> None:
    """Emit the transitions of one (main or primed) excursion chain."""
    a = sched.a
    for k in range(k_point):
        a_k = a[k]
        if a_k <= 0.0:
            break
        src = base + k
        w_rate = rate * (a[k + 1] / a_k)
        if w_rate > 0.0:
            out.append((src, base + k + 1, w_rate))
        q_rate = rate * (sched.qmass[k] / a_k)
        if q_rate > 0.0 and src != s0_index:
            out.append((src, s0_index, q_rate))
        if sched.vmass.shape[1]:
            for i, vm in enumerate(sched.vmass[k]):
                v_rate = rate * (vm / a_k)
                if v_rate > 0.0:
                    out.append((src, f_base + i, v_rate))
    # Truncation sink (only when the end of the chain still carries mass).
    if a[k_point] > 0.0:
        out.append((base + k_point, sink, rate))


def build_vkl(main: RegenerativeSchedule,
              primed: RegenerativeSchedule | None,
              k_point: int,
              l_point: int | None,
              rate: float,
              absorbing_rewards: np.ndarray,
              alpha_r: float) -> tuple[CTMC, RewardStructure]:
    """Materialize ``V_{K,L}`` (or ``V_K``) and its reward structure.

    Returns the chain with initial distribution
    ``P[s_0] = α_r, P[s'_0] = 1 − α_r`` and the reward structure described
    in the module docstring.
    """
    if (primed is None) != (l_point is None):
        raise ModelError("primed schedule and l_point must come together")
    k = min(int(k_point), main.n - 1)
    if k < int(k_point) and not main.exhausted:
        raise ModelError(f"main schedule too short for K={k_point}")
    rf = np.asarray(absorbing_rewards, dtype=np.float64)
    n_abs = rf.size

    n_main = k + 1
    if primed is not None:
        lp = min(int(l_point), primed.n - 1)  # type: ignore[arg-type]
        if lp < int(l_point) and not primed.exhausted:
            raise ModelError(f"primed schedule too short for L={l_point}")
        n_primed = lp + 1
    else:
        lp = None
        n_primed = 0
    f_base = n_main + n_primed
    sink = f_base + n_abs
    n_states = sink + 1

    transitions: list[tuple[int, int, float]] = []
    _chain_transitions(main, k, base=0, s0_index=0, f_base=f_base,
                       sink=sink, rate=rate, out=transitions)
    if primed is not None:
        _chain_transitions(primed, lp, base=n_main, s0_index=0,
                           f_base=f_base, sink=sink, rate=rate,
                           out=transitions)

    initial = np.zeros(n_states)
    initial[0] = alpha_r
    if primed is not None:
        initial[n_main] = 1.0 - alpha_r
    elif not np.isclose(alpha_r, 1.0):
        raise ModelError("alpha_r < 1 requires a primed schedule")

    rewards = np.zeros(n_states)
    for i in range(n_main):
        rewards[i] = main.b(i)
    if primed is not None:
        for i in range(n_primed):
            rewards[n_main + i] = primed.b(i)
    rewards[f_base: f_base + n_abs] = rf
    # rewards[sink] stays 0 (state ``a``).

    labels: list[object] = [("s", i) for i in range(n_main)]
    labels += [("s'", i) for i in range(n_primed)]
    labels += [("f", i) for i in range(n_abs)]
    labels.append(("a",))
    model = CTMC.from_transitions(n_states, transitions, initial=initial,
                                  labels=labels)
    return model, RewardStructure(rewards)
