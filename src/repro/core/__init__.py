"""The paper's contribution: regenerative randomization (RR) and its
Laplace-transform-inversion variant (RRL).

Pipeline
--------
1. :mod:`repro.core.schedules` steps the randomized DTMC and records the
   regenerative schedules ``a(k), c(k), q_k, v_k^i`` (and the primed
   counterparts for initial distributions not concentrated on ``r``);
2. :mod:`repro.core.truncation` selects the truncation points ``K`` and
   ``L`` for a target time and error budget;
3. either
   * :mod:`repro.core.vkl` materializes the truncated transformed chain
     ``V_{K,L}`` and :mod:`repro.core.rr_solver` solves it by standard
     randomization (**RR**, the original method), or
   * :mod:`repro.core.transforms` evaluates the closed-form Laplace
     transform of ``TRR^a_{K,L}`` / ``C_{K,L}`` and
     :mod:`repro.core.rrl_solver` inverts it numerically (**RRL**, the
     paper's new variant).
"""

from repro.core.schedules import RegenerativeSchedule, ScheduleBuilder
from repro.core.schedule_cache import (
    ScheduleCache,
    process_schedule_cache,
    process_schedule_cache_clear,
    process_schedule_cache_info,
)
from repro.core.truncation import select_truncation, truncation_error_bound
from repro.core.transforms import VklTransform
from repro.core.vkl import build_vkl
from repro.core.rr_solver import RegenerativeRandomizationSolver
from repro.core.rrl_solver import RRLSolver
from repro.core.bounds import BoundedSolution, RRLBoundsSolver

__all__ = [
    "RegenerativeSchedule",
    "ScheduleBuilder",
    "ScheduleCache",
    "process_schedule_cache",
    "process_schedule_cache_clear",
    "process_schedule_cache_info",
    "select_truncation",
    "truncation_error_bound",
    "VklTransform",
    "build_vkl",
    "RegenerativeRandomizationSolver",
    "RRLSolver",
    "BoundedSolution",
    "RRLBoundsSolver",
]
