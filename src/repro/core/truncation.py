"""Truncation-point selection for the transformed model ``V_{K,L}``.

The truncated chain routes into the artificial absorbing state ``a`` all
trajectories whose current excursion from the regenerative state exceeds
``K`` steps (or whose pre-first-regeneration prefix exceeds ``L`` steps).
Since every state of ``V_{K,L}`` except ``a`` reproduces the conditional
reward of the original chain, the measure error is at most
``r_max · P[V(t) = a-or-was-absorbed-late]``, and that probability obeys a
union bound over excursion restarts:

* each visit to ``a`` through the main chain requires ``K+1`` consecutive
  non-regenerative DTMC steps after some regeneration epoch; with ``N(t) ~
  Poisson(Λt)`` steps available there are at most ``(N(t) − K)^+`` start
  epochs, each succeeding with probability ``a(K)``;
* the primed route requires the *first* ``L+1`` steps to avoid ``r``,
  which has probability ``a'(L)`` and needs ``N(t) >= L+1``.

Hence

    err(K, L, t)  <=  r_max · [ a(K) · E[(N(t) − K)^+]
                                + a'(L) · P[N(t) >= L+1] ].

Both factors of each product are non-increasing in ``K`` (resp. ``L``), so
the smallest admissible truncation points are found by scanning forward —
which is free, because the schedules are computed by forward stepping
anyway. For the interval measure MRR the same bound applies uniformly on
``[0, t]`` (it is non-decreasing in ``t``), so one selection serves both
measures, as in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import TruncationError
from repro.core.schedules import ScheduleBuilder
from repro.markov.poisson import poisson_expected_excess, poisson_sf

__all__ = ["select_truncation", "truncation_error_bound", "TruncationChoice"]

_HARD_CAP = 2_000_000


@dataclass(frozen=True)
class TruncationChoice:
    """Selected truncation points and the bound they achieve.

    ``l_point`` is ``None`` when there is no primed chain (``α_r = 1``).
    ``steps`` is the step count the paper's tables report: ``K + L`` for
    ``α_r < 1`` and ``K`` for ``α_r = 1``.
    """

    k_point: int
    l_point: int | None
    error_bound: float

    @property
    def steps(self) -> int:
        """DTMC steps charged to this selection (paper's cost metric)."""
        return self.k_point + (self.l_point or 0)


def truncation_error_bound(a_k: float, k: int, a_l: float | None,
                           l: int | None, rate_time: float,
                           r_max: float) -> float:
    """Evaluate the union bound for given truncation points."""
    err = r_max * a_k * poisson_expected_excess(rate_time, k)
    if a_l is not None and l is not None:
        err += r_max * a_l * poisson_sf(l, rate_time)
    return float(err)


def _scan(builder: ScheduleBuilder, weight, budget: float,
          hard_cap: int) -> int:
    """Smallest k with ``a(k)·weight(k) <= budget`` (forward scan).

    ``weight`` must be non-increasing in ``k``. Extends the builder on
    demand; an exhausted builder satisfies any budget at its last index.
    """
    k = 0
    while True:
        builder.extend_to(k)
        n = builder.n_recorded
        if k >= n:
            # Exhausted before reaching k: zero mass beyond the prefix.
            return n - 1
        if builder.a_at(k) * weight(k) <= budget:
            return k
        if builder.exhausted and k >= n - 1:
            return n - 1
        k += 1
        if k > hard_cap:
            raise TruncationError(
                f"no admissible truncation point below {hard_cap}")


def select_truncation(main: ScheduleBuilder,
                      primed: ScheduleBuilder | None,
                      rate: float,
                      t: float,
                      eps_budget: float,
                      r_max: float,
                      hard_cap: int = _HARD_CAP) -> TruncationChoice:
    """Choose ``K`` (and ``L``) so the model-truncation error is
    ``<= eps_budget`` at time ``t``.

    The budget is split evenly between the two chains when a primed chain
    exists, as the paper does with its ``ε/2``.
    """
    if eps_budget <= 0.0 or t <= 0.0 or rate <= 0.0:
        raise ValueError("eps_budget, t and rate must be positive")
    if r_max == 0.0:
        return TruncationChoice(k_point=0,
                                l_point=0 if primed is not None else None,
                                error_bound=0.0)
    rate_time = rate * t
    share = eps_budget / (2.0 if primed is not None else 1.0)

    k_point = _scan(main,
                    lambda k: r_max * poisson_expected_excess(rate_time, k),
                    share, hard_cap)
    l_point: int | None = None
    if primed is not None:
        l_point = _scan(primed,
                        lambda k: r_max * poisson_sf(k, rate_time),
                        share, hard_cap)
    a_k = main.a_at(k_point)
    a_l = primed.a_at(l_point) if primed is not None else None
    bound = truncation_error_bound(a_k, k_point, a_l, l_point, rate_time,
                                   r_max)
    return TruncationChoice(k_point=k_point, l_point=l_point,
                            error_bound=bound)
