"""The original regenerative randomization method — ``RR``.

RR [Carrasco, TR DMSD 99-2/99-4] transforms the model into the truncated
chain ``V_{K,L}`` (cost: ``K + L`` steps of a DTMC the size of ``X̂``) and
then solves ``V_{K,L}`` *by standard randomization*. The transformation
cost is shared with RRL; the difference is the solution phase, which for
RR still needs ``O(Λt)`` (cheap, ``O(K+L)``-sized) steps — this is exactly
the regime where the paper's new variant wins (Figures 3 and 4).

Error budget: ``eps/2`` for the model truncation (selection of ``K, L``)
and ``eps/2`` for the inner standard-randomization solution, as in the
paper.
"""

from __future__ import annotations

import numpy as np

from repro.batch.kernel import UniformizationKernel
from repro.core._setup import prepare
from repro.core.schedule_cache import (
    ScheduleCache,
    regenerative_schedule_fingerprint,
)
from repro.core.truncation import select_truncation
from repro.core.vkl import build_vkl
from repro.markov.base import TransientSolution, as_time_array
from repro.markov.ctmc import CTMC
from repro.markov.rewards import Measure, RewardStructure
from repro.markov.standard import StandardRandomizationSolver
from repro.solvers.registry import SolverSpec, register

__all__ = ["RegenerativeRandomizationSolver"]


class RegenerativeRandomizationSolver:
    """Transient solver using the original RR method.

    Parameters
    ----------
    regenerative:
        Index of the regenerative state ``r``; defaults to the most likely
        initial state (the paper uses the all-components-up state, which
        is also its initial state).
    rate:
        Randomization rate ``Λ``; defaults to the model's maximum output
        rate.
    inner_max_steps:
        Step cap handed to the inner SR solver (``Λt`` can be huge; the
        cap turns a multi-hour run into an explicit error).
    """

    method_name = "RR"

    def __init__(self, regenerative: int | None = None,
                 rate: float | None = None,
                 inner_max_steps: int = 50_000_000) -> None:
        self._regenerative = regenerative
        self._rate = rate
        self._inner_max_steps = inner_max_steps

    def solve(self,
              model: CTMC,
              rewards: RewardStructure,
              measure: Measure,
              times: np.ndarray | list[float],
              eps: float = 1e-12,
              *,
              kernel: UniformizationKernel | None = None,
              schedule_cache: ScheduleCache | None = None
              ) -> TransientSolution:
        """Compute the measure at every time point with total error ``eps``.

        ``kernel`` may be a pre-built (cached/shared) kernel from
        ``UniformizationKernel.from_model(model)``; the transformation
        phase then steps through it instead of re-uniformizing, with
        bit-identical results. ``schedule_cache`` additionally shares the
        transformation itself across solve calls (the ``K + L`` stepping
        phase is paid once per ``(model, rewards, regenerative, rate)``
        per cache), again bit-identically — see
        :mod:`repro.core.schedule_cache`.
        """
        rewards.check_model(model)
        t_arr = as_time_array(times)
        if eps <= 0.0:
            raise ValueError("eps must be positive")
        r_max = rewards.max_rate
        if r_max == 0.0:
            return TransientSolution(
                times=t_arr, values=np.zeros_like(t_arr), measure=measure,
                eps=eps, steps=np.zeros(t_arr.size, dtype=int),
                method=self.method_name,
                stats={"rate": self._rate if self._rate is not None
                       else model.max_output_rate})

        cache_hit: bool | None = None
        if schedule_cache is not None:
            setup, cache_hit = schedule_cache.setup_for(
                model, rewards, self._regenerative, self._rate,
                kernel=kernel)
        else:
            setup = prepare(model, rewards, self._regenerative, self._rate,
                            kernel=kernel)
        inner = StandardRandomizationSolver(max_steps=self._inner_max_steps)

        values = np.empty(t_arr.size)
        steps = np.empty(t_arr.size, dtype=np.int64)
        k_points = np.empty(t_arr.size, dtype=np.int64)
        l_points = np.full(t_arr.size, -1, dtype=np.int64)
        inner_steps = np.empty(t_arr.size, dtype=np.int64)
        order = np.argsort(t_arr)  # ascending t reuses schedule prefixes
        # A cached setup may be shared with concurrent solves (thread
        # backend): the lock serializes builder extension and keeps the
        # steps_done accounting attributable to this call. Private
        # setups pay one uncontended acquire.
        with setup.lock:
            # Steps already on the (possibly shared) builders before
            # this solve: the difference is what *this* call charged.
            reused_steps = setup.main.steps_done \
                + (setup.primed.steps_done if setup.primed else 0)
            for i in order:
                t = float(t_arr[i])
                choice = select_truncation(setup.main, setup.primed,
                                           setup.rate, t, eps / 2.0, r_max)
                v_model, v_rewards = build_vkl(
                    setup.main.snapshot(),
                    setup.primed.snapshot()
                    if setup.primed is not None else None,
                    choice.k_point, choice.l_point, setup.rate,
                    setup.absorbing_rewards, setup.alpha_r)
                sol = inner.solve(v_model, v_rewards, measure, [t],
                                  eps / 2.0)
                values[i] = sol.values[0]
                steps[i] = choice.steps
                k_points[i] = choice.k_point
                l_points[i] = choice.l_point \
                    if choice.l_point is not None else -1
                inner_steps[i] = sol.steps[0]
            transformation_steps = setup.main.steps_done \
                + (setup.primed.steps_done if setup.primed else 0) \
                - reused_steps
        stats = {
            "rate": setup.rate,
            "regenerative": setup.regenerative,
            "alpha_r": setup.alpha_r,
            "K": k_points,
            "L": l_points,
            "inner_sr_steps": inner_steps,
            "transformation_steps": transformation_steps,
        }
        if cache_hit is not None:
            stats["schedule_cache_hit"] = cache_hit
            stats["transformation_steps_reused"] = reused_steps
        return TransientSolution(
            times=t_arr, values=values, measure=measure, eps=eps,
            steps=steps, method=self.method_name, stats=stats)


register(SolverSpec(
    name="RR",
    constructor=RegenerativeRandomizationSolver,
    summary="Original regenerative randomization (transform model, solve "
            "V_KL by inner SR)",
    kernel_aware=True,
    schedule_memoizable=True,
    schedule_fingerprint=regenerative_schedule_fingerprint,
    step_budget_kwarg="inner_max_steps",
    table_label="RR/RRL",
))
