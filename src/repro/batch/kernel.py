"""Shared uniformized-stepping kernel.

Every randomization-based solver in this package ultimately does the same
two things:

1. step one or more row vectors through the randomized DTMC,
   ``π ↦ π P`` with ``P = I + Q/Λ`` (SR's reward sequence ``d_n = (π P^n) r``,
   RSD's detection loop, the regenerative schedule recursions of RR/RRL,
   multistep's window summation, adaptive uniformization's per-level steps
   ``π ↦ π (I + Q/Λ_n)``);
2. weight the results with Poisson probabilities from a Fox–Glynn window
   for some ``(Λt, ε)`` pair.

The :class:`UniformizationKernel` centralizes (1). It stores ``P`` once as
the CSR form of ``Pᵀ`` — the layout scipy's matvec walks sequentially for
the left product ``π P = (Pᵀ πᵀ)ᵀ`` — and propagates a whole *stack* of
vectors per step with a single CSR × dense-matrix product: the sparse
matrix is traversed once per step no matter how many vectors ride along.
Column ``j`` of a stacked product is bit-for-bit identical to propagating
vector ``j`` alone (scipy's CSR multi-vector product accumulates each
column in the same order as its matvec), so batching never changes any
solver's numerics — a property the unit tests pin down.

:func:`shared_fox_glynn` centralizes (2) behind a process-wide LRU cache
keyed on ``(Λt, ε)``. Sweeps revisit the same key constantly — a
multi-``t`` SR solve, RR's truncation selection plus its inner SR solve,
and a batch run fanning one scenario grid over several methods all ask for
identical windows. Windows are treated as immutable (callers only read
``weights``), so one cache serves the whole process; the
:class:`~repro.batch.runner.BatchRunner` workers each build their own as
they warm up.
"""

from __future__ import annotations

import threading
from functools import lru_cache
from typing import TYPE_CHECKING

import numpy as np
from scipy import sparse

from repro.exceptions import ModelError
from repro.markov.poisson import FoxGlynnWindow, fox_glynn, poisson_sf

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids import cycles
    from repro.markov.ctmc import CTMC
    from repro.markov.dtmc import DTMC

__all__ = [
    "UniformizationKernel",
    "ensure_model_kernel",
    "shared_fox_glynn",
    "fox_glynn_cache_info",
    "fox_glynn_cache_clear",
    "shared_poisson_tail",
    "poisson_tail_cache_info",
    "poisson_tail_cache_clear",
    "kernel_build_count",
]

#: Process-wide count of kernel constructions. The fusion planner's whole
#: point is that a grid over one model builds the CSR once per (model,
#: worker) — and once per (model, *process*) under the thread backend —
#: so the benchmarks assert sharing by diffing this counter. Incremented
#: under a lock: the thread backend constructs kernels from pool workers,
#: and an unlocked ``count += 1`` loses updates under contention.
_BUILD_COUNT = 0
_BUILD_COUNT_LOCK = threading.Lock()


def _record_kernel_build() -> None:
    global _BUILD_COUNT
    with _BUILD_COUNT_LOCK:
        _BUILD_COUNT += 1


def kernel_build_count() -> int:
    """How many :class:`UniformizationKernel` objects this process built."""
    return _BUILD_COUNT

#: Distinct (Λt, ε) windows kept alive; a paper-style grid touches a few
#: dozen, so 512 keeps every realistic sweep fully cached while bounding
#: memory (windows are O(√Λt) floats each).
_FOX_GLYNN_CACHE_SIZE = 512


@lru_cache(maxsize=_FOX_GLYNN_CACHE_SIZE)
def _fox_glynn_cached(rate_time: float, eps: float) -> FoxGlynnWindow:
    return fox_glynn(rate_time, eps)


def shared_fox_glynn(rate_time: float, eps: float) -> FoxGlynnWindow:
    """Fox–Glynn window from the process-wide ``(Λt, ε)`` LRU cache.

    The returned window is shared: callers must treat ``weights`` as
    read-only (every in-tree consumer only slices it).
    """
    return _fox_glynn_cached(float(rate_time), float(eps))


def fox_glynn_cache_info():
    """``functools.lru_cache`` statistics of the shared window cache."""
    return _fox_glynn_cached.cache_info()


def fox_glynn_cache_clear() -> None:
    """Drop every cached window (tests; long-lived worker hygiene)."""
    _fox_glynn_cached.cache_clear()


#: Distinct (Λt, n) Poisson right-tail arrays kept alive. One array is
#: O(n) floats and a paper-style MRR sweep touches one (Λt, n) pair per
#: (model, t, ε) cell, so a small cache covers every realistic grid.
_POISSON_TAIL_CACHE_SIZE = 256

#: Largest ``n`` worth caching (~0.5 MB per array). SR at extreme Λt
#: needs tails millions of entries long; 256 of those pinned
#: process-wide would hold gigabytes in a long-lived service worker, so
#: oversized requests are computed fresh (and garbage-collected per
#: cell, exactly the pre-cache behaviour) instead of cached.
_POISSON_TAIL_MAX_N = 65_536


@lru_cache(maxsize=_POISSON_TAIL_CACHE_SIZE)
def _poisson_tail_cached(rate_time: float, n: int) -> np.ndarray:
    tails = poisson_sf(np.arange(n, dtype=np.float64), rate_time)
    tails.setflags(write=False)  # shared across callers: read-only
    return tails


def shared_poisson_tail(rate_time: float, n: int) -> np.ndarray:
    """``P[N(Λt) > k]`` for ``k = 0 .. n-1`` from a process-wide LRU.

    The MRR weighting of :mod:`repro.markov.standard` recomputes this
    array for every cell sharing a ``(Λt, n)`` key — a grid fans the same
    model/horizon pair over many reward structures, and under the thread
    backend every worker would redo the identical ``poisson_sf`` sweep.
    The returned array is shared and marked read-only; values are
    bit-identical to an uncached ``poisson_sf(np.arange(n), Λt)`` call
    (it *is* that call, performed once). Arrays beyond
    ``_POISSON_TAIL_MAX_N`` entries bypass the cache — identical values,
    per-call lifetime — so pathological horizons cannot pin gigabytes.
    """
    n = int(n)
    if n > _POISSON_TAIL_MAX_N:
        return poisson_sf(np.arange(n, dtype=np.float64),
                          float(rate_time))
    return _poisson_tail_cached(float(rate_time), n)


def poisson_tail_cache_info():
    """``functools.lru_cache`` statistics of the shared tail cache."""
    return _poisson_tail_cached.cache_info()


def poisson_tail_cache_clear() -> None:
    """Drop every cached tail array (tests; worker hygiene)."""
    _poisson_tail_cached.cache_clear()


class UniformizationKernel:
    """Vectorized stepping engine for one randomized DTMC.

    Parameters
    ----------
    transition:
        Row-stochastic (or sub-stochastic) transition matrix ``P``.
    rate:
        Randomization rate ``Λ`` the matrix was built with; optional for
        stepping-only use, required for :meth:`window`.
    generator:
        The CTMC generator ``Q``; optional, required only for
        :meth:`step_rate` (adaptive uniformization re-randomizes each
        step with the current active rate instead of a fixed ``Λ``).

    Notes
    -----
    Stacks are stored *column-wise*: shape ``(n_states, k)`` holds ``k``
    distributions, so one ``Pᵀ @ stack`` product advances all of them.
    1-D vectors work everywhere a stack does.

    A kernel is safe to *share across threads* (the thread backend's
    whole point): stepping only reads the CSR matrices and returns fresh
    arrays. The one mutable bit, the informational :attr:`steps_done`
    counter, is deliberately not locked — a per-step lock would tax the
    hot path for a diagnostic number — so under concurrent stepping it
    is a lower bound, not an exact count.
    """

    def __init__(self,
                 transition: sparse.spmatrix | np.ndarray | None,
                 rate: float | None = None,
                 generator: sparse.spmatrix | None = None) -> None:
        _record_kernel_build()
        if transition is None and generator is None:
            raise ModelError("need a transition matrix or a generator")
        self._pt: sparse.csr_matrix | None = None
        self._qt: sparse.csr_matrix | None = None
        n: int | None = None
        if transition is not None:
            p = sparse.csr_matrix(transition, dtype=np.float64)
            if p.shape[0] != p.shape[1]:
                raise ModelError(
                    f"transition matrix must be square, got {p.shape}")
            self._pt = p.T.tocsr()
            n = p.shape[0]
        if generator is not None:
            q = sparse.csr_matrix(generator, dtype=np.float64)
            if q.shape[0] != q.shape[1]:
                raise ModelError(f"generator must be square, got {q.shape}")
            if n is not None and q.shape[0] != n:
                raise ModelError("generator shape does not match transition")
            self._qt = q.T.tocsr()
            n = q.shape[0]
        self._rate = float(rate) if rate is not None else None
        self._n = int(n)  # type: ignore[arg-type]
        self._steps = 0
        self._dtmc: "DTMC | None" = None

    # -- constructors ------------------------------------------------------

    @classmethod
    def from_model(cls, model: "CTMC", rate: float | None = None,
                   slack: float = 1.0
                   ) -> tuple["UniformizationKernel", "DTMC", float]:
        """Uniformize ``model`` and wrap the result.

        Returns ``(kernel, dtmc, Λ)`` — the solvers also need the
        randomized chain's initial distribution and the realized rate.
        The kernel keeps a reference to the randomized chain (see
        :attr:`dtmc`), so a cached kernel can be handed to any solver
        without re-uniformizing the model.
        """
        dtmc, lam = model.uniformize(rate, slack)
        kernel = cls(dtmc.transition_matrix, rate=lam,
                     generator=model.generator)
        kernel._dtmc = dtmc
        return kernel, dtmc, lam

    @classmethod
    def from_dtmc(cls, dtmc: "DTMC",
                  rate: float | None = None) -> "UniformizationKernel":
        """Wrap an already-randomized chain."""
        return cls(dtmc.transition_matrix, rate=rate)

    @classmethod
    def from_generator(cls, model: "CTMC") -> "UniformizationKernel":
        """Rate-adaptive kernel over ``Q`` only (no fixed-rate ``P``).

        For adaptive uniformization, which re-randomizes every step with
        the current active rate — building ``P = I + Q/Λ`` would be
        wasted work.
        """
        return cls(None, generator=model.generator)

    # -- properties --------------------------------------------------------

    @property
    def n_states(self) -> int:
        """State-space size ``n``."""
        return self._n

    @property
    def rate(self) -> float | None:
        """Randomization rate ``Λ`` (``None`` for stepping-only kernels)."""
        return self._rate

    @property
    def steps_done(self) -> int:
        """Matrix–vector/matrix products performed through this kernel."""
        return self._steps

    @property
    def has_generator(self) -> bool:
        """Whether ``Q`` is available (required by :meth:`step_rate`)."""
        return self._qt is not None

    @property
    def dtmc(self) -> "DTMC | None":
        """The randomized chain this kernel was built from, when known.

        Set by :meth:`from_model`; ``None`` for kernels wrapped around a
        bare matrix. Solvers accepting an injected kernel need the chain
        for its initial distribution (and MS for its row-form ``P``).
        """
        return self._dtmc

    # -- stepping ----------------------------------------------------------

    def step(self, stack: np.ndarray) -> np.ndarray:
        """One uniformized step of every column: ``stack ↦ Pᵀ stack``."""
        if self._pt is None:
            raise ModelError(
                "kernel was built without a transition matrix; "
                "fixed-rate stepping needs P")
        self._steps += 1
        return self._pt @ stack

    def propagate(self, stack: np.ndarray, n_steps: int) -> np.ndarray:
        """Apply ``n_steps >= 0`` uniformized steps to the stack."""
        if n_steps < 0:
            raise ValueError("n_steps must be non-negative")
        out = np.asarray(stack, dtype=np.float64)
        for _ in range(n_steps):
            out = self.step(out)
        return out

    def step_rate(self, stack: np.ndarray, rate: float) -> np.ndarray:
        """One step of ``I + Q/rate`` (adaptive uniformization).

        ``rate`` must dominate the exit rates of every state carrying
        mass; the caller (AU) guarantees this by construction.
        """
        if self._qt is None:
            raise ModelError(
                "kernel was built without a generator; step_rate needs Q")
        if rate <= 0.0:
            raise ValueError("rate must be positive")
        self._steps += 1
        return stack + (self._qt @ stack) / rate

    def reward_sequence(self,
                        initial: np.ndarray,
                        rewards: np.ndarray,
                        n_max: int) -> np.ndarray:
        """The sequence ``d_n = (π P^n) r`` for ``n = 0 .. n_max-1``.

        ``initial`` may be one vector ``(n,)`` (result ``(n_max,)``) or a
        column stack ``(n, k)`` (result ``(n_max, k)``, column ``j``
        bit-identical to the per-vector run of ``initial[:, j]``).
        """
        if n_max < 1:
            raise ValueError("n_max must be >= 1")
        pi = np.asarray(initial, dtype=np.float64)
        # Contiguous rewards: the dot below must round identically whether
        # r arrived as a flat vector or as a column sliced off a stack.
        r = np.ascontiguousarray(rewards, dtype=np.float64)
        if pi.shape[0] != self._n or r.shape != (self._n,):
            raise ModelError("initial/rewards shape does not match kernel")
        out = np.empty((n_max,) + pi.shape[1:], dtype=np.float64)
        # Contract column-by-column over contiguous copies: BLAS rounds a
        # gemv (and even a strided dot) differently from the contiguous
        # dot of the single-vector path, and the bit-for-bit batching
        # guarantee matters more than the O(nk) copy — stepping dominates
        # the cost anyway. One preallocated scratch column serves every
        # (step, column) pair: copyto into it is the same contiguous
        # layout (hence the same dot, bit for bit) as a fresh
        # ascontiguousarray per column, without n_max × k allocations.
        scratch = np.empty(self._n, dtype=np.float64) if pi.ndim > 1 \
            else None
        for n in range(n_max):
            if pi.ndim == 1:
                out[n] = r @ pi
            else:
                for j in range(pi.shape[1]):
                    np.copyto(scratch, pi[:, j])
                    out[n, j] = r @ scratch
            if n + 1 < n_max:
                pi = self.step(pi)
        return out

    def reward_sequences(self,
                         initial: np.ndarray,
                         rewards: np.ndarray,
                         n_max: int) -> np.ndarray:
        """Fused sequences ``d_n^{(j)} = (π P^n) r_j`` for a reward *stack*.

        The dual of :meth:`reward_sequence`'s initial-stack support: one
        shared initial distribution ``(n,)`` is stepped exactly as in the
        single-reward path — one matvec per step no matter how many reward
        vectors ``rewards[:, j]`` ride along — and each step is contracted
        with every reward column. Column ``j`` of the ``(n_max, k)`` result
        is bit-for-bit identical to
        ``reward_sequence(initial, rewards[:, j], n_max)``: the stepping
        sequence is the same object and every contraction is the same
        contiguous dot, so fusing cells never changes a solver's numerics.
        """
        if n_max < 1:
            raise ValueError("n_max must be >= 1")
        pi = np.asarray(initial, dtype=np.float64)
        rs = np.asarray(rewards, dtype=np.float64)
        if pi.ndim != 1 or pi.shape[0] != self._n:
            raise ModelError("initial must be one (n_states,) vector")
        if rs.ndim != 2 or rs.shape[0] != self._n:
            raise ModelError("rewards must be an (n_states, k) stack")
        cols = [np.ascontiguousarray(rs[:, j]) for j in range(rs.shape[1])]
        out = np.empty((n_max, len(cols)), dtype=np.float64)
        for n in range(n_max):
            for j, r in enumerate(cols):
                out[n, j] = r @ pi
            if n + 1 < n_max:
                pi = self.step(pi)
        return out

    def window(self, t: float, eps: float) -> FoxGlynnWindow:
        """Cached Fox–Glynn window for ``(Λ·t, eps)``."""
        if self._rate is None:
            raise ModelError("kernel has no randomization rate")
        return shared_fox_glynn(self._rate * t, eps)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"UniformizationKernel(n_states={self._n}, "
                f"rate={self._rate}, steps_done={self._steps})")


def ensure_model_kernel(model: "CTMC",
                        kernel: UniformizationKernel | None,
                        rate: float | None = None
                        ) -> tuple[UniformizationKernel, "DTMC", float]:
    """Validate an injected kernel against ``(model, rate)`` or build one.

    The common preamble of every solver that accepts a pre-built kernel:
    with ``kernel=None`` it is exactly ``UniformizationKernel.from_model``;
    otherwise the injected kernel must have been produced by
    ``from_model`` **for this model**, at the requested randomization
    rate if the solver pinned one. Since ``from_model`` is deterministic,
    a kernel built once (by the planner or a worker cache) and injected
    everywhere yields bit-identical results to per-solve construction.

    Validation is sanity-level, not cryptographic: state-space size, a
    rate lower bound and the initial distribution are checked (catching
    kernels built from a genuinely different model), but matrix contents
    are not re-hashed — callers sharing kernels across cells are expected
    to key them on a real model fingerprint, as the planner's worker
    cache does.
    """
    if kernel is None:
        return UniformizationKernel.from_model(model, rate)
    dtmc = kernel.dtmc
    if dtmc is None or kernel.rate is None:
        raise ModelError(
            "injected kernel must come from UniformizationKernel.from_model "
            "(it carries no randomized chain)")
    if kernel.n_states != model.n_states:
        raise ModelError(
            f"injected kernel has {kernel.n_states} states, "
            f"model has {model.n_states}")
    if rate is not None and not np.isclose(kernel.rate, rate,
                                           rtol=1e-12, atol=0.0):
        raise ModelError(
            f"injected kernel rate {kernel.rate} != requested rate {rate}")
    if kernel.rate < model.max_output_rate * (1.0 - 1e-12):
        raise ModelError(
            f"injected kernel rate {kernel.rate} is below the model's "
            f"max output rate {model.max_output_rate} — built from a "
            "different model?")
    # Tight-but-tolerant: uniformization renormalizes the initial vector,
    # which may perturb the last ulp relative to model.initial.
    if not np.allclose(dtmc.initial, model.initial, rtol=1e-12,
                       atol=1e-15):
        raise ModelError(
            "injected kernel was built from a model with a different "
            "initial distribution")
    return kernel, dtmc, float(kernel.rate)
