"""Parallel batch execution of experiment tasks.

The paper's evaluation — and any serious sweep built on top of it — is a
grid of independent ``(model, measure, ε, t, method)`` cells. The
:class:`BatchRunner` fans such cells over a pluggable execution backend
(:mod:`repro.batch.backends`: inline serial, GIL-releasing thread pool
with process-wide shared caches, or the classic process pool) with:

* **chunking** — adjacent tasks are grouped so cheap cells amortize the
  per-round-trip overhead (pickle/IPC for processes, future bookkeeping
  for threads);
* **structured failure capture** — a task raising (e.g.
  :class:`~repro.exceptions.TruncationError` for an over-budget SR cell)
  produces a :class:`BatchOutcome` carrying the exception type, message
  and formatted traceback instead of poisoning the whole run;
* **per-task timeouts** — a chunk that exceeds ``task_timeout`` × (chunk
  length) is recorded as timed out (best-effort: a running worker cannot
  be interrupted mid-task, so the deadline is enforced at collection
  time);
* **deterministic ordering** — results always come back in submission
  order, whatever order the workers finished in.

Tasks submitted to the process backend must be picklable: module-level
functions plus plain-data arguments (every in-tree model/reward/measure
object pickles cleanly); the serial and thread backends accept anything
callable. With ``max_workers=1`` (or a single task) every backend
degrades to an inline loop with identical semantics minus timeout
enforcement, so library code can route *everything* through it
unconditionally.
"""

from __future__ import annotations

import os
import time
import traceback as _traceback
from collections.abc import Callable, Iterable, Sequence
from dataclasses import dataclass, field
from typing import Any

from repro.batch.backends import (
    Backend,
    available_cpus,
    resolve_backend,
)

__all__ = ["BatchTask", "BatchOutcome", "BatchExecutionError", "BatchRunner",
           "available_cpus"]


class BatchExecutionError(RuntimeError):
    """Raised by :meth:`BatchOutcome.unwrap` on a failed task."""


@dataclass(frozen=True)
class BatchTask:
    """One unit of work: ``fn(*args, **kwargs)`` under identity ``key``."""

    fn: Callable[..., Any]
    args: tuple = ()
    kwargs: dict[str, Any] = field(default_factory=dict)
    key: Any = None
    weight: int = 1
    """Logical cells this task covers. A fused task doing the work of
    ``N`` cells sets ``weight=N`` so per-task timeout budgets scale with
    the work actually submitted, not the task count."""


@dataclass
class BatchOutcome:
    """Result (or structured failure) of one :class:`BatchTask`.

    ``error_type`` holds the exception class name (``"TruncationError"``,
    ``"TimeoutError"``, ``"BrokenProcessPool"``, ...) so callers can
    pattern-match expected failures without importing worker internals.
    """

    key: Any
    ok: bool
    value: Any = None
    error_type: str | None = None
    error: str | None = None
    traceback: str | None = None
    duration: float = 0.0
    worker_pid: int | None = None

    def unwrap(self) -> Any:
        """Return ``value`` or raise with the captured failure context."""
        if self.ok:
            return self.value
        raise BatchExecutionError(
            f"task {self.key!r} failed with {self.error_type}: {self.error}"
            + (f"\n{self.traceback}" if self.traceback else ""))


def _run_one(task: BatchTask) -> BatchOutcome:
    """Execute one task, converting any exception into a failure outcome."""
    start = time.perf_counter()
    try:
        value = task.fn(*task.args, **task.kwargs)
    except Exception as exc:  # KeyboardInterrupt/SystemExit must propagate
        return BatchOutcome(
            key=task.key, ok=False,
            error_type=type(exc).__name__, error=str(exc),
            traceback=_traceback.format_exc(),
            duration=time.perf_counter() - start,
            worker_pid=os.getpid())
    return BatchOutcome(key=task.key, ok=True, value=value,
                        duration=time.perf_counter() - start,
                        worker_pid=os.getpid())


def _run_chunk(tasks: list[BatchTask]) -> list[BatchOutcome]:
    """Worker entry point: execute a chunk sequentially."""
    return [_run_one(t) for t in tasks]


class BatchRunner:
    """Fan :class:`BatchTask` lists over an execution backend.

    Parameters
    ----------
    max_workers:
        Pool size; defaults to the CPUs available to this process. With
        ``max_workers=1`` everything runs inline (no pool), which is
        also the fallback when only one task is submitted.
    chunk_size:
        Tasks per worker round-trip. 1 maximizes load balance; larger
        values amortize per-round-trip overhead for many cheap tasks.
    task_timeout:
        Soft per-task seconds budget, enforced by the pool backends. A
        chunk is given ``task_timeout * sum(task.weight)`` measured from
        the moment the batch is *submitted* (not from when its result is
        collected — deadlines anchored at collection would let a slow
        early chunk silently grant every later chunk extra wall-clock).
        Time spent queued behind other chunks — and pool startup itself,
        which under the ``spawn`` start method includes booting
        interpreters — counts: a chunk still queued when its deadline
        passes is reported timed out even though it never ran, and once
        one chunk expires every later same-deadline chunk that has not
        finished expires with it. Size the timeout for the whole fan-out
        (or raise ``chunk_size`` so queueing is bounded), not just one
        task's compute. On expiry a chunk's tasks are recorded as failed
        with ``error_type="TimeoutError"`` and :meth:`run` returns
        without joining the hung worker (an orphaned process runs its
        current task to completion or dies with the interpreter; an
        orphaned thread runs on until its task finishes — a running task
        cannot be interrupted from outside). ``None`` disables
        deadlines. Inline runs are never interrupted.
    mp_context:
        ``multiprocessing`` start-method name (``"fork"``, ``"spawn"``,
        ...); ``None`` uses the platform default. Only meaningful for the
        process backend — passing it pins ``backend`` to processes when
        no backend is chosen explicitly.
    backend:
        Execution strategy: ``"serial"``, ``"threads"``, ``"processes"``,
        a ready :class:`~repro.batch.backends.Backend` instance (which
        then owns its own pool shape), or ``None`` for the default
        (``$REPRO_BACKEND`` when set, processes otherwise). See
        :mod:`repro.batch.backends` for the trade-offs.
    """

    def __init__(self,
                 max_workers: int | None = None,
                 chunk_size: int = 1,
                 task_timeout: float | None = None,
                 mp_context: str | None = None,
                 backend: Backend | str | None = None) -> None:
        if max_workers is not None and max_workers < 1:
            raise ValueError("max_workers must be >= 1")
        if chunk_size < 1:
            raise ValueError("chunk_size must be >= 1")
        if task_timeout is not None and task_timeout <= 0.0:
            raise ValueError("task_timeout must be positive")
        self._backend = resolve_backend(backend,
                                        max_workers=max_workers,
                                        chunk_size=chunk_size,
                                        task_timeout=task_timeout,
                                        mp_context=mp_context)

    @property
    def max_workers(self) -> int:
        """Effective pool size."""
        return self._backend.max_workers

    @property
    def backend(self) -> Backend:
        """The execution backend this runner fans out on."""
        return self._backend

    @property
    def backend_name(self) -> str:
        """Registry spelling of the active backend."""
        return self._backend.name

    # -- public API --------------------------------------------------------

    def map(self, fn: Callable[..., Any], items: Iterable[Any],
            key_fn: Callable[[Any], Any] | None = None) -> list[BatchOutcome]:
        """Run ``fn(item)`` for every item (convenience over :meth:`run`)."""
        tasks = [BatchTask(fn=fn, args=(item,),
                           key=key_fn(item) if key_fn else i)
                 for i, item in enumerate(items)]
        return self.run(tasks)

    def run(self, tasks: Sequence[BatchTask]) -> list[BatchOutcome]:
        """Execute every task; outcomes come back in submission order."""
        tasks = list(tasks)
        if not tasks:
            return []
        return self._backend.run(tasks)
