"""Parallel batch execution of experiment tasks.

The paper's evaluation — and any serious sweep built on top of it — is a
grid of independent ``(model, measure, ε, t, method)`` cells. The
:class:`BatchRunner` fans such cells over a ``concurrent.futures`` process
pool with:

* **chunking** — adjacent tasks are grouped so cheap cells amortize the
  pickle/IPC overhead of a round-trip;
* **structured failure capture** — a task raising (e.g.
  :class:`~repro.exceptions.TruncationError` for an over-budget SR cell)
  produces a :class:`BatchOutcome` carrying the exception type, message
  and formatted traceback instead of poisoning the whole run;
* **per-task timeouts** — a chunk that exceeds ``task_timeout`` × (chunk
  length) is recorded as timed out (best-effort: a running worker cannot
  be interrupted mid-task, so the deadline is enforced at collection
  time);
* **deterministic ordering** — results always come back in submission
  order, whatever order the workers finished in.

Tasks must be picklable: module-level functions plus plain-data arguments
(every in-tree model/reward/measure object pickles cleanly). With
``max_workers=1`` (or a single task) the runner degrades to an inline
loop with identical semantics minus timeout enforcement, so library code
can route *everything* through it unconditionally.
"""

from __future__ import annotations

import os
import time
import traceback as _traceback
from collections.abc import Callable, Iterable, Sequence
from dataclasses import dataclass, field
from typing import Any

__all__ = ["BatchTask", "BatchOutcome", "BatchExecutionError", "BatchRunner",
           "available_cpus"]


def available_cpus() -> int:
    """CPUs usable by this process (affinity-aware, ≥ 1)."""
    try:
        return max(1, len(os.sched_getaffinity(0)))
    except AttributeError:  # pragma: no cover - non-Linux fallback
        return max(1, os.cpu_count() or 1)


class BatchExecutionError(RuntimeError):
    """Raised by :meth:`BatchOutcome.unwrap` on a failed task."""


@dataclass(frozen=True)
class BatchTask:
    """One unit of work: ``fn(*args, **kwargs)`` under identity ``key``."""

    fn: Callable[..., Any]
    args: tuple = ()
    kwargs: dict[str, Any] = field(default_factory=dict)
    key: Any = None
    weight: int = 1
    """Logical cells this task covers. A fused task doing the work of
    ``N`` cells sets ``weight=N`` so per-task timeout budgets scale with
    the work actually submitted, not the task count."""


@dataclass
class BatchOutcome:
    """Result (or structured failure) of one :class:`BatchTask`.

    ``error_type`` holds the exception class name (``"TruncationError"``,
    ``"TimeoutError"``, ``"BrokenProcessPool"``, ...) so callers can
    pattern-match expected failures without importing worker internals.
    """

    key: Any
    ok: bool
    value: Any = None
    error_type: str | None = None
    error: str | None = None
    traceback: str | None = None
    duration: float = 0.0
    worker_pid: int | None = None

    def unwrap(self) -> Any:
        """Return ``value`` or raise with the captured failure context."""
        if self.ok:
            return self.value
        raise BatchExecutionError(
            f"task {self.key!r} failed with {self.error_type}: {self.error}"
            + (f"\n{self.traceback}" if self.traceback else ""))


def _run_one(task: BatchTask) -> BatchOutcome:
    """Execute one task, converting any exception into a failure outcome."""
    start = time.perf_counter()
    try:
        value = task.fn(*task.args, **task.kwargs)
    except Exception as exc:  # KeyboardInterrupt/SystemExit must propagate
        return BatchOutcome(
            key=task.key, ok=False,
            error_type=type(exc).__name__, error=str(exc),
            traceback=_traceback.format_exc(),
            duration=time.perf_counter() - start,
            worker_pid=os.getpid())
    return BatchOutcome(key=task.key, ok=True, value=value,
                        duration=time.perf_counter() - start,
                        worker_pid=os.getpid())


def _run_chunk(tasks: list[BatchTask]) -> list[BatchOutcome]:
    """Worker entry point: execute a chunk sequentially."""
    return [_run_one(t) for t in tasks]


class BatchRunner:
    """Fan :class:`BatchTask` lists over a process pool.

    Parameters
    ----------
    max_workers:
        Pool size; defaults to the CPUs available to this process. With
        ``max_workers=1`` everything runs inline (no subprocesses), which
        is also the fallback when only one task is submitted.
    chunk_size:
        Tasks per worker round-trip. 1 maximizes load balance; larger
        values amortize IPC for many cheap tasks.
    task_timeout:
        Soft per-task seconds budget. A chunk is given
        ``task_timeout * sum(task.weight)`` measured from the moment the batch
        is *submitted* (not from when its result is collected — deadlines
        anchored at collection would let a slow early chunk silently
        grant every later chunk extra wall-clock). Time spent queued
        behind other chunks — and pool startup itself, which under the
        ``spawn`` start method includes booting interpreters — counts:
        a chunk still queued when its deadline passes is reported timed
        out even though it never ran, and once one chunk expires every
        later same-deadline chunk that has not finished expires with it.
        Size the timeout for the whole fan-out (or raise ``chunk_size``
        so queueing is bounded), not just one task's compute. On expiry
        a chunk's tasks are recorded as failed with
        ``error_type="TimeoutError"`` and :meth:`run` returns without
        joining the hung worker (the orphaned process runs its current
        task to completion or dies with the interpreter — a running
        task cannot be interrupted from outside). ``None`` disables
        deadlines. Inline runs are never interrupted.
    mp_context:
        ``multiprocessing`` start-method name (``"fork"``, ``"spawn"``,
        ...); ``None`` uses the platform default.
    """

    def __init__(self,
                 max_workers: int | None = None,
                 chunk_size: int = 1,
                 task_timeout: float | None = None,
                 mp_context: str | None = None) -> None:
        if max_workers is not None and max_workers < 1:
            raise ValueError("max_workers must be >= 1")
        if chunk_size < 1:
            raise ValueError("chunk_size must be >= 1")
        if task_timeout is not None and task_timeout <= 0.0:
            raise ValueError("task_timeout must be positive")
        self._max_workers = max_workers or available_cpus()
        self._chunk_size = int(chunk_size)
        self._task_timeout = task_timeout
        self._mp_context = mp_context

    @property
    def max_workers(self) -> int:
        """Effective pool size."""
        return self._max_workers

    # -- public API --------------------------------------------------------

    def map(self, fn: Callable[..., Any], items: Iterable[Any],
            key_fn: Callable[[Any], Any] | None = None) -> list[BatchOutcome]:
        """Run ``fn(item)`` for every item (convenience over :meth:`run`)."""
        tasks = [BatchTask(fn=fn, args=(item,),
                           key=key_fn(item) if key_fn else i)
                 for i, item in enumerate(items)]
        return self.run(tasks)

    def run(self, tasks: Sequence[BatchTask]) -> list[BatchOutcome]:
        """Execute every task; outcomes come back in submission order."""
        tasks = list(tasks)
        if not tasks:
            return []
        if self._max_workers == 1 or len(tasks) == 1:
            return [_run_one(t) for t in tasks]
        return self._run_pool(tasks)

    # -- internals ---------------------------------------------------------

    def _run_pool(self, tasks: list[BatchTask]) -> list[BatchOutcome]:
        from concurrent.futures import ProcessPoolExecutor, TimeoutError \
            as FuturesTimeout
        import multiprocessing

        chunks = [tasks[i:i + self._chunk_size]
                  for i in range(0, len(tasks), self._chunk_size)]
        ctx = (multiprocessing.get_context(self._mp_context)
               if self._mp_context else None)
        outcomes: list[BatchOutcome] = []
        timed_out = False
        pool = ProcessPoolExecutor(max_workers=self._max_workers,
                                   mp_context=ctx)
        try:
            futures = [pool.submit(_run_chunk, chunk) for chunk in chunks]
            # Deadlines are anchored at submission time: every chunk must
            # deliver within its own budget of wall-clock from *now*,
            # however long earlier chunks took to collect.
            submitted = time.monotonic()
            for chunk, future in zip(chunks, futures):
                budget = remaining = None
                if self._task_timeout is not None:
                    budget = self._task_timeout * sum(
                        max(1, t.weight) for t in chunk)
                    remaining = max(0.0,
                                    budget - (time.monotonic() - submitted))
                try:
                    outcomes.extend(future.result(timeout=remaining))
                except FuturesTimeout:
                    timed_out = True
                    future.cancel()
                    outcomes.extend(
                        BatchOutcome(key=t.key, ok=False,
                                     error_type="TimeoutError",
                                     error=f"no result within {budget:.3g}s "
                                           "of submission (chunk deadline)")
                        for t in chunk)
                except Exception as exc:  # BrokenProcessPool and friends;
                    # KeyboardInterrupt must abort the whole run instead.
                    outcomes.extend(
                        BatchOutcome(key=t.key, ok=False,
                                     error_type=type(exc).__name__,
                                     error=str(exc))
                        for t in chunk)
        finally:
            # After a timeout, do NOT wait for the hung worker — run()'s
            # deadline contract beats a clean join. The worker process
            # survives until its task finishes (documented best-effort).
            pool.shutdown(wait=not timed_out, cancel_futures=timed_out)
        return outcomes
