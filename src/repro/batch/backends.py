"""Pluggable execution backends for the batch layer.

:class:`~repro.batch.runner.BatchRunner` used to be hard-wired to a
``concurrent.futures`` process pool. That shape pays a fixed tax per run
— interpreter boot under the ``spawn`` start method, pickle/IPC per
chunk — and, worse, a *cold-cache* tax per worker: every pool process
rebuilds its own kernel LRU (:mod:`repro.batch.planner`), Fox–Glynn
window cache (:mod:`repro.batch.kernel`) and RR/RRL
:class:`~repro.core.schedule_cache.ScheduleCache` from scratch, so a
grid over one model pays its setup once per *worker* instead of once per
*process*. The hot path of every stepping solver is scipy's CSR
matvec, which releases the GIL — so a thread pool gets real parallelism
on the work that dominates, with **one** process-wide cache set and zero
serialization.

This module makes the execution strategy a first-class, swappable
object:

* :class:`SerialBackend` — inline loop in the calling thread. No
  parallelism, no deadline enforcement, zero overhead; the reference
  semantics every other backend must reproduce bit for bit.
* :class:`ThreadBackend` — a ``ThreadPoolExecutor`` fan-out. Shares the
  process-wide caches (cold-start amortization drops from O(workers) to
  O(1) per model), pays no pickle/IPC or interpreter-boot cost, and
  parallelizes wherever the stepping kernel releases the GIL. The
  shared caches are lock-protected (see :mod:`repro.batch.planner`,
  :mod:`repro.core.schedule_cache`); a grid over one model builds one
  kernel and one schedule transformation *total*, not one per worker.
* :class:`ProcessBackend` — the original process pool. Still the right
  tool for GIL-bound task functions (pure-Python loops, timing cells
  that must not share a core) and for isolation (a crashing worker
  cannot take the parent down).

All three make the same guarantees: deterministic submission-order
results, structured failure capture (a raising task yields a failed
:class:`~repro.batch.runner.BatchOutcome`, never a poisoned run), and
per-task deadline accounting measured from submission. Pool backends
degrade to the inline loop with ``max_workers=1`` or a single task, so
callers can route everything through one code path unconditionally.

Selection: ``BatchRunner(backend="threads")``,
``SolveService(backend=...)``, ``ExperimentConfig.backend``, the CLI's
``--backend {serial,threads,processes}`` — or the ``REPRO_BACKEND``
environment variable, which supplies the default when a caller does not
choose (the CI matrix runs the whole suite under
``REPRO_BACKEND=threads``). An explicit ``mp_context`` pins the process
backend: a multiprocessing start method is meaningless anywhere else.
"""

from __future__ import annotations

import os
import time
from abc import ABC, abstractmethod
from collections.abc import Sequence
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids import cycle
    from repro.batch.runner import BatchOutcome, BatchTask

__all__ = [
    "Backend",
    "SerialBackend",
    "ThreadBackend",
    "ProcessBackend",
    "BACKEND_NAMES",
    "default_backend_name",
    "resolve_backend",
]

#: The registered backend spellings, in documentation order.
BACKEND_NAMES: tuple[str, ...] = ("serial", "threads", "processes")

#: Environment variable supplying the default backend name. Only
#: consulted when the caller did not pick a backend explicitly.
BACKEND_ENV_VAR = "REPRO_BACKEND"


def available_cpus() -> int:
    """CPUs usable by this process (affinity-aware, >= 1)."""
    try:
        return max(1, len(os.sched_getaffinity(0)))
    except AttributeError:  # pragma: no cover - non-Linux fallback
        return max(1, os.cpu_count() or 1)


def default_backend_name() -> str:
    """The backend used when nobody chooses: ``$REPRO_BACKEND`` or
    ``"processes"`` (the historical behaviour)."""
    name = os.environ.get(BACKEND_ENV_VAR, "").strip().lower()
    if not name:
        return "processes"
    if name not in BACKEND_NAMES:
        raise ValueError(
            f"{BACKEND_ENV_VAR}={name!r} is not a known backend "
            f"(known: {', '.join(BACKEND_NAMES)})")
    return name


class Backend(ABC):
    """One execution strategy for a list of
    :class:`~repro.batch.runner.BatchTask` objects.

    Implementations own their pool shape (worker count, chunking,
    deadlines) and must uphold the runner's contract: outcomes come back
    in submission order, task exceptions become failed outcomes, and —
    for backends that enforce deadlines — a chunk missing its budget is
    reported as ``error_type="TimeoutError"`` without blocking the run
    on the hung worker.
    """

    #: Registry spelling (``"serial"`` / ``"threads"`` / ``"processes"``).
    name: str = "backend"

    @property
    @abstractmethod
    def max_workers(self) -> int:
        """Degree of parallelism this backend fans out to."""

    @abstractmethod
    def run(self, tasks: Sequence["BatchTask"]) -> list["BatchOutcome"]:
        """Execute every task; outcomes in submission order."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(max_workers={self.max_workers})"


class SerialBackend(Backend):
    """Inline execution in the calling thread.

    The reference semantics: no pool, no pickling, no deadline
    enforcement (an inline task cannot be abandoned — the documented
    behaviour the old ``max_workers=1`` runner had). Every other backend
    must produce bit-identical outcomes to this one.
    """

    name = "serial"

    @property
    def max_workers(self) -> int:
        return 1

    def run(self, tasks: Sequence["BatchTask"]) -> list["BatchOutcome"]:
        from repro.batch.runner import _run_one

        return [_run_one(t) for t in tasks]


class _PoolBackend(Backend):
    """Shared chunking/deadline/collection machinery of the pool backends.

    Subclasses provide :meth:`_make_executor`; everything else — the
    chunk split, submission-anchored deadlines, timeout reporting,
    abandon-on-expiry shutdown, deterministic collection order — is
    identical for threads and processes by construction, which is what
    makes the cross-backend conformance guarantees cheap to uphold.
    """

    def __init__(self,
                 max_workers: int | None = None,
                 chunk_size: int = 1,
                 task_timeout: float | None = None) -> None:
        if max_workers is not None and max_workers < 1:
            raise ValueError("max_workers must be >= 1")
        if chunk_size < 1:
            raise ValueError("chunk_size must be >= 1")
        if task_timeout is not None and task_timeout <= 0.0:
            raise ValueError("task_timeout must be positive")
        self._max_workers = max_workers or available_cpus()
        self._chunk_size = int(chunk_size)
        self._task_timeout = task_timeout

    @property
    def max_workers(self) -> int:
        return self._max_workers

    @property
    def chunk_size(self) -> int:
        return self._chunk_size

    @property
    def task_timeout(self) -> float | None:
        return self._task_timeout

    @abstractmethod
    def _make_executor(self):
        """Build the ``concurrent.futures`` executor to fan out on."""

    def run(self, tasks: Sequence["BatchTask"]) -> list["BatchOutcome"]:
        from repro.batch.runner import _run_one

        tasks = list(tasks)
        if not tasks:
            return []
        if self._max_workers == 1 or len(tasks) == 1:
            # Degenerate fan-out: the pool would add only overhead (and,
            # for processes, pickling). Inline keeps identical numbers.
            return [_run_one(t) for t in tasks]
        return self._run_pool(tasks)

    def _run_pool(self, tasks: list["BatchTask"]) -> list["BatchOutcome"]:
        from concurrent.futures import TimeoutError as FuturesTimeout

        from repro.batch.runner import BatchOutcome, _run_chunk

        chunks = [tasks[i:i + self._chunk_size]
                  for i in range(0, len(tasks), self._chunk_size)]
        outcomes: list[BatchOutcome] = []
        timed_out = False
        pool = self._make_executor()
        try:
            futures = [pool.submit(_run_chunk, chunk) for chunk in chunks]
            # Deadlines are anchored at submission time: every chunk must
            # deliver within its own budget of wall-clock from *now*,
            # however long earlier chunks took to collect.
            submitted = time.monotonic()
            for chunk, future in zip(chunks, futures):
                budget = remaining = None
                if self._task_timeout is not None:
                    budget = self._task_timeout * sum(
                        max(1, t.weight) for t in chunk)
                    remaining = max(0.0,
                                    budget - (time.monotonic() - submitted))
                try:
                    outcomes.extend(future.result(timeout=remaining))
                except FuturesTimeout:
                    timed_out = True
                    future.cancel()
                    outcomes.extend(
                        BatchOutcome(key=t.key, ok=False,
                                     error_type="TimeoutError",
                                     error=f"no result within {budget:.3g}s "
                                           "of submission (chunk deadline)")
                        for t in chunk)
                except Exception as exc:  # BrokenProcessPool and friends;
                    # KeyboardInterrupt must abort the whole run instead.
                    outcomes.extend(
                        BatchOutcome(key=t.key, ok=False,
                                     error_type=type(exc).__name__,
                                     error=str(exc))
                        for t in chunk)
        finally:
            # After a timeout, do NOT wait for the hung worker — run()'s
            # deadline contract beats a clean join. A process worker
            # survives until its task finishes (documented best-effort);
            # a thread worker likewise runs on, joined only at
            # interpreter exit.
            pool.shutdown(wait=not timed_out, cancel_futures=timed_out)
        return outcomes


class ThreadBackend(_PoolBackend):
    """``ThreadPoolExecutor`` fan-out with zero-copy shared caches.

    All workers live in this process, so they *share* the planner's
    model/kernel cache, the process-wide
    :class:`~repro.core.schedule_cache.ScheduleCache` and the Fox–Glynn
    window LRU — one cold start per model for the whole pool, no
    serialization of tasks or results, and real parallelism wherever the
    stepping kernel's CSR matvec releases the GIL. The shared caches are
    lock-protected; same-model RR/RRL cells additionally serialize their
    schedule *extension* on the setup's own lock (reads stay parallel,
    numbers stay bit-identical to serial execution).

    Deadline enforcement matches :class:`ProcessBackend` except that an
    expired worker thread cannot be left to die with a subprocess: it
    keeps running (and keeps its core busy) until its current task
    completes. Workloads that need hard abandonment of runaway tasks
    should stay on processes.
    """

    name = "threads"

    def _make_executor(self):
        from concurrent.futures import ThreadPoolExecutor

        return ThreadPoolExecutor(max_workers=self._max_workers,
                                  thread_name_prefix="repro-batch")


class ProcessBackend(_PoolBackend):
    """``ProcessPoolExecutor`` fan-out — the original runner strategy.

    Workers are isolated interpreters: they cannot contend on the GIL
    (the right call for pure-Python task functions and for timing cells
    that must own their core), a crash cannot poison the parent, and an
    expired chunk's worker is genuinely abandoned. The price is pool
    boot (interpreter start under ``spawn``), pickle/IPC per chunk, and
    per-worker cold caches — each worker rebuilds its own kernel,
    window and schedule caches.
    """

    name = "processes"

    def __init__(self,
                 max_workers: int | None = None,
                 chunk_size: int = 1,
                 task_timeout: float | None = None,
                 mp_context: str | None = None) -> None:
        super().__init__(max_workers=max_workers, chunk_size=chunk_size,
                         task_timeout=task_timeout)
        self._mp_context = mp_context

    @property
    def mp_context(self) -> str | None:
        """Requested multiprocessing start method (``None`` = platform
        default)."""
        return self._mp_context

    def _make_executor(self):
        import multiprocessing
        from concurrent.futures import ProcessPoolExecutor

        ctx = (multiprocessing.get_context(self._mp_context)
               if self._mp_context else None)
        return ProcessPoolExecutor(max_workers=self._max_workers,
                                   mp_context=ctx)


def resolve_backend(backend: "Backend | str | None",
                    *,
                    max_workers: int | None = None,
                    chunk_size: int = 1,
                    task_timeout: float | None = None,
                    mp_context: str | None = None) -> Backend:
    """Turn a backend spec into a live :class:`Backend`.

    ``backend`` may be a ready instance (returned as-is — it owns its
    own pool shape), a registry name, or ``None`` meaning "the default":
    ``$REPRO_BACKEND`` when set, processes otherwise. An explicit
    ``mp_context`` pins the process backend — a start method is
    meaningless for threads or inline execution, so combining it with a
    different explicit backend is an error, while a merely *environment*
    -suggested backend yields to it.
    """
    if isinstance(backend, Backend):
        # A ready instance owns its pool shape: silently dropping the
        # caller's explicit max_workers/timeout/etc. would disable the
        # very behaviour the call visibly requested.
        conflicts = [label for label, clash in (
            (f"max_workers={max_workers}", max_workers is not None),
            (f"chunk_size={chunk_size}", chunk_size != 1),
            (f"task_timeout={task_timeout}", task_timeout is not None),
            (f"mp_context={mp_context!r}", mp_context is not None),
        ) if clash]
        if conflicts:
            raise ValueError(
                f"a ready {type(backend).__name__} instance owns its own "
                f"pool shape; configure it at construction instead of "
                f"passing {', '.join(conflicts)} alongside it")
        return backend
    if backend is None:
        name = "processes" if mp_context is not None \
            else default_backend_name()
    else:
        name = str(backend).strip().lower()
        if name not in BACKEND_NAMES:
            raise ValueError(
                f"unknown backend {backend!r} "
                f"(known: {', '.join(BACKEND_NAMES)})")
        if mp_context is not None and name != "processes":
            raise ValueError(
                f"mp_context={mp_context!r} requires the processes "
                f"backend, not {name!r}")
    if name == "serial":
        return SerialBackend()
    if name == "threads":
        return ThreadBackend(max_workers=max_workers,
                             chunk_size=chunk_size,
                             task_timeout=task_timeout)
    return ProcessBackend(max_workers=max_workers,
                          chunk_size=chunk_size,
                          task_timeout=task_timeout,
                          mp_context=mp_context)
