"""Batch execution subsystem: shared stepping kernel, scenario generator,
fusion planner and parallel experiment runner.

Four layers, each usable on its own:

* :mod:`repro.batch.kernel` — the shared uniformized-stepping kernel every
  randomization solver routes its DTMC matrix–vector work through, plus a
  process-wide LRU cache of Fox–Glynn windows keyed on ``(Λt, ε)``;
* :mod:`repro.batch.scenarios` — a parametric scenario generator producing
  picklable ``(model family, measure, ε, t)`` grid cells far beyond the
  paper's two models;
* :mod:`repro.batch.planner` — the model-fused execution planner turning
  declarative :class:`~repro.batch.planner.SolveRequest` cells into
  coalesced, model-grouped, stack-fused batch tasks with a per-worker
  kernel cache;
* :mod:`repro.batch.runner` — a :class:`~repro.batch.runner.BatchRunner`
  fanning tasks over a ``concurrent.futures`` process pool with chunking,
  per-task timeouts, structured failure capture and deterministic result
  ordering.

These are the substrate layers; application code should normally enter
through :class:`repro.service.service.SolveService` (the canonical
facade wrapping planner → runner → scatter) rather than wiring the
planner and runner together by hand.

The package ``__init__`` resolves attributes lazily: the kernel is imported
*by* the solver modules (``repro.markov.standard`` etc.), so eagerly
importing the scenario generator here — which pulls in ``repro.models`` and
transitively the solver package — would create an import cycle.
"""

from __future__ import annotations

from typing import Any

__all__ = [
    "UniformizationKernel",
    "ensure_model_kernel",
    "shared_fox_glynn",
    "fox_glynn_cache_info",
    "fox_glynn_cache_clear",
    "shared_poisson_tail",
    "poisson_tail_cache_info",
    "poisson_tail_cache_clear",
    "kernel_build_count",
    "Backend",
    "SerialBackend",
    "ThreadBackend",
    "ProcessBackend",
    "BACKEND_NAMES",
    "default_backend_name",
    "resolve_backend",
    "BatchRunner",
    "BatchTask",
    "BatchOutcome",
    "Scenario",
    "generate_scenarios",
    "scenario_families",
    "solve_scenario",
    "scenario_tasks",
    "scenario_requests",
    "solve_scenarios",
    "SolveRequest",
    "ExecutionPlan",
    "plan_requests",
    "execute_requests",
    "solve_requests",
]

_EXPORTS = {
    "UniformizationKernel": "repro.batch.kernel",
    "ensure_model_kernel": "repro.batch.kernel",
    "shared_fox_glynn": "repro.batch.kernel",
    "fox_glynn_cache_info": "repro.batch.kernel",
    "fox_glynn_cache_clear": "repro.batch.kernel",
    "shared_poisson_tail": "repro.batch.kernel",
    "poisson_tail_cache_info": "repro.batch.kernel",
    "poisson_tail_cache_clear": "repro.batch.kernel",
    "kernel_build_count": "repro.batch.kernel",
    "Backend": "repro.batch.backends",
    "SerialBackend": "repro.batch.backends",
    "ThreadBackend": "repro.batch.backends",
    "ProcessBackend": "repro.batch.backends",
    "BACKEND_NAMES": "repro.batch.backends",
    "default_backend_name": "repro.batch.backends",
    "resolve_backend": "repro.batch.backends",
    "BatchRunner": "repro.batch.runner",
    "BatchTask": "repro.batch.runner",
    "BatchOutcome": "repro.batch.runner",
    "Scenario": "repro.batch.scenarios",
    "generate_scenarios": "repro.batch.scenarios",
    "scenario_families": "repro.batch.scenarios",
    "solve_scenario": "repro.batch.scenarios",
    "scenario_tasks": "repro.batch.scenarios",
    "scenario_requests": "repro.batch.scenarios",
    "solve_scenarios": "repro.batch.scenarios",
    "SolveRequest": "repro.batch.planner",
    "ExecutionPlan": "repro.batch.planner",
    "plan_requests": "repro.batch.planner",
    "execute_requests": "repro.batch.planner",
    "solve_requests": "repro.batch.planner",
}


def __getattr__(name: str) -> Any:
    try:
        module_name = _EXPORTS[name]
    except KeyError:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}") from None
    import importlib

    module = importlib.import_module(module_name)
    value = getattr(module, name)
    globals()[name] = value
    return value


def __dir__() -> list[str]:
    return sorted(set(globals()) | set(_EXPORTS))
