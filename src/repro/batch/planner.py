"""Model-fused execution planner.

The scaling observation behind this layer: a scenario grid is usually
*wide in cells but narrow in models* — one model evaluated under many
``(rewards, measure, t, ε, method)`` combinations. Executed naively, every
cell re-uniformizes the model, rebuilds the CSR transpose and re-steps its
own ``d_n`` sweep; the per-model work is paid once per *cell* instead of
once per *model*. The planner turns declarative :class:`SolveRequest`
cells into model-grouped work:

1. **coalescing** — requests that are exactly identical (same model,
   rewards, method, measure, times, ε, solver options) are solved once
   and the solution is fanned out to every requester;
2. **fusion** — cells sharing ``(model, method)`` for the stack-friendly
   methods (``SR``, ``RSD``) are merged into one fused task that builds
   one kernel and performs one stepping sweep for the whole group
   (``solve_fused`` on the solver — bit-for-bit identical per cell, a
   guarantee inherited from the kernel's column-wise stepping identity);
3. **per-worker kernel caching** — cells that stay unfused (different
   methods, or fusion disabled) still share one built model + kernel per
   worker process through a small LRU keyed on the model fingerprint.

The planner emits ordinary :class:`~repro.batch.runner.BatchTask` objects,
so fusion composes with :class:`~repro.batch.runner.BatchRunner` pool
fan-out unchanged: a fused group is simply one (bigger) task. Requests are
picklable — scenario-backed requests ship only the scenario description;
model-backed requests ship the CSR once per task.

``SolveRequest`` is deliberately transport-shaped (plain data + a registry
method tag): it is the unit of work the service layer puts on the wire
(:mod:`repro.service.protocol` gives it a versioned JSON form;
:class:`repro.service.queue.JobQueue` journals it).

.. deprecated::
    :func:`execute_requests` / :func:`solve_requests` remain as the thin
    planner-level plumbing, but application code should route through
    :class:`repro.service.service.SolveService` — the canonical facade
    that owns planner policy, pool shape and scatter bookkeeping (and is
    bit-for-bit identical to calling these functions directly).
"""

from __future__ import annotations

import threading
import warnings
from collections import OrderedDict
from collections.abc import Iterable, Mapping
from dataclasses import dataclass, field, replace as _dc_replace
from typing import Any

import numpy as np

from repro.batch.kernel import UniformizationKernel
from repro.batch.runner import BatchOutcome, BatchRunner, BatchTask
from repro.batch.scenarios import Scenario
from repro.core.schedule_cache import process_schedule_cache
from repro.exceptions import ModelError
from repro.markov.base import SolveCell, TransientSolution
from repro.markov.ctmc import CTMC
from repro.markov.rewards import Measure, RewardStructure
from repro.solvers import registry

__all__ = [
    "SolveRequest",
    "ExecutionPlan",
    "FUSABLE_METHODS",
    "KERNEL_AWARE_METHODS",
    "plan_requests",
    "execute_requests",
    "solve_requests",
    "run_request",
    "run_fused_group",
    "worker_cache_clear",
    "worker_cache_info",
]

#: Deprecated module attributes, now derived from the solver registry's
#: capability flags (``stack_fusable`` / ``kernel_aware``). RR/RRL solve
#: a *transformed* model per time point and AU re-randomizes per step,
#: so neither declares ``stack_fusable`` — for them sharing stops at the
#: kernel/model cache (and, for RR/RRL, the schedule memo).
_DEPRECATED_METHOD_SETS = {
    "FUSABLE_METHODS": registry.stack_fusable_methods,
    "KERNEL_AWARE_METHODS": registry.kernel_aware_methods,
}


def __getattr__(name: str) -> Any:
    try:
        provider = _DEPRECATED_METHOD_SETS[name]
    except KeyError:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}") from None
    warnings.warn(
        f"repro.batch.planner.{name} is deprecated; query the solver "
        "registry (repro.solvers.registry) capability sets instead",
        DeprecationWarning, stacklevel=2)
    return provider()


@dataclass(frozen=True)
class SolveRequest:
    """One declarative solve cell: *what* to compute, never *how*.

    The model is referenced either descriptively (``scenario`` — rebuilt
    worker-side, the cheap-to-pickle path) or directly (``model`` +
    ``rewards``). ``rewards=None`` with a scenario means "the scenario's
    own reward structure".

    Parameters
    ----------
    measure, times, eps, method:
        As for :func:`repro.analysis.runner.solve`; ``times`` is
        normalized to a tuple of floats, ``method`` to upper case.
    scenario:
        A :class:`~repro.batch.scenarios.Scenario` describing the model
        (mutually exclusive with ``model``).
    model, rewards:
        A live model; ``rewards`` is then required.
    solver_kwargs:
        Forwarded to the solver constructor. A custom ``rate`` disables
        kernel sharing for this request (the cached kernel is built at
        the model's default randomization rate).
    key:
        Caller identity attached to the request's
        :class:`~repro.batch.runner.BatchOutcome`.
    """

    measure: Measure
    times: tuple[float, ...]
    eps: float = 1e-12
    method: str = "RRL"
    scenario: Scenario | None = None
    model: CTMC | None = None
    rewards: RewardStructure | None = None
    solver_kwargs: Mapping[str, Any] = field(default_factory=dict)
    key: Any = None

    def __post_init__(self) -> None:
        if (self.scenario is None) == (self.model is None):
            raise ModelError(
                "SolveRequest needs exactly one of scenario= or model=")
        if self.model is not None and self.rewards is None:
            raise ModelError("model-backed SolveRequest needs rewards=")
        object.__setattr__(self, "times",
                           tuple(float(t) for t in np.atleast_1d(
                               np.asarray(self.times, dtype=np.float64))))
        object.__setattr__(self, "method", str(self.method).upper())
        # Fail at construction, not deep inside a worker: the registry is
        # the one authority on method tags (raises UnknownMethodError
        # with the known-method list).
        registry.get_spec(self.method)
        object.__setattr__(self, "solver_kwargs", dict(self.solver_kwargs))

    def __hash__(self) -> int:
        # The dataclass-generated hash would hash solver_kwargs (a dict)
        # and raise; requests are transport-shaped data and must be usable
        # as set/dict members, so hash a stable hashable subset of the
        # identity — collisions are resolved through the field-wise
        # ``__eq__``.
        return hash((self.method, self.measure, self.times,
                     float(self.eps)))

    def resolve(self) -> tuple[CTMC, RewardStructure]:
        """Materialize ``(model, rewards)`` (worker-side for scenarios)."""
        if self.scenario is not None:
            model, default_rewards = self.scenario.build()
            rewards = self.rewards if self.rewards is not None \
                else default_rewards
            return model, rewards
        return self.model, self.rewards  # type: ignore[return-value]


# -- fingerprints ----------------------------------------------------------

def _freeze(value: Any) -> Any:
    """Deterministic hashable form of a plain-data parameter value."""
    if isinstance(value, Mapping):
        return tuple(sorted((str(k), _freeze(v)) for k, v in value.items()))
    if isinstance(value, (list, tuple)):
        return tuple(_freeze(v) for v in value)
    return value


def model_fingerprint(request: SolveRequest) -> tuple:
    """Identity of the *model* a request runs against.

    Scenario-backed requests fingerprint the (deterministic) scenario
    description; model-backed requests fingerprint the matrix content
    (``CTMC.content_digest``, memoized on the instance — planning
    consults the fingerprint several times per request and execution once
    more, and hashing a large CSR repeatedly would tax exactly the path
    the planner speeds up). Two requests with equal fingerprints are
    guaranteed to rebuild bit-identical models, which is what makes
    cross-cell sharing safe.
    """
    if request.scenario is not None:
        s = request.scenario
        return ("scenario", s.family, _freeze(s.params))
    return ("ctmc",
            request.model.content_digest())  # type: ignore[union-attr]


def _rewards_fingerprint(request: SolveRequest) -> tuple:
    if request.rewards is None:
        return ("scenario-default",)
    return ("rewards", request.rewards.content_digest())


def _signature(request: SolveRequest) -> tuple:
    """Full identity: requests with equal signatures coalesce."""
    return (model_fingerprint(request), _rewards_fingerprint(request),
            request.method, request.measure, request.times,
            float(request.eps), _freeze(request.solver_kwargs))


def _fusion_key(request: SolveRequest) -> tuple:
    """Cells with equal fusion keys may share one stepping sweep."""
    return (model_fingerprint(request), request.method,
            _freeze(request.solver_kwargs))


# -- per-process model/kernel cache ----------------------------------------

#: Models (and their kernels) an execution worker keeps warm. A
#: paper-style grid touches a handful of models; 8 covers every in-tree
#: sweep while bounding a long-lived worker's memory. The cache is
#: *process-wide*: each process-pool worker owns a private copy (the
#: classic per-worker LRU), while every thread-backend worker shares this
#: one — the whole point of the thread backend is that a grid over one
#: model then builds one model + kernel total instead of one per worker.
_WORKER_CACHE_SIZE = 8

#: fingerprint -> [model, scenario_default_rewards | None, kernel | None]
_worker_cache: "OrderedDict[tuple, list]" = OrderedDict()
_worker_cache_hits = 0
_worker_cache_misses = 0

#: Guards the cache dict, its hit/miss counters, and — crucially — the
#: build-on-miss sections: holding it across ``scenario.build()`` and
#: kernel construction is what turns "at most one build per worker" into
#: "exactly one build per process" under the thread backend (two threads
#: missing the same fingerprint must not both build). Model/kernel
#: construction is exactly the work the cache exists to amortize, so
#: serializing it is the semantics, not a compromise; the post-build
#: solve runs outside the lock.
_worker_cache_lock = threading.RLock()


def worker_cache_clear() -> None:
    """Drop this process's model/kernel cache *and* its RR/RRL schedule
    cache (tests, worker hygiene) — the two share a lifetime."""
    global _worker_cache_hits, _worker_cache_misses
    with _worker_cache_lock:
        _worker_cache.clear()
        _worker_cache_hits = 0
        _worker_cache_misses = 0
    process_schedule_cache().clear()


def worker_cache_info() -> dict[str, int]:
    """Hit/miss/size statistics of this process's model/kernel cache."""
    with _worker_cache_lock:
        return {"hits": _worker_cache_hits, "misses": _worker_cache_misses,
                "size": len(_worker_cache), "max_size": _WORKER_CACHE_SIZE}


def _cache_entry(request: SolveRequest) -> list:
    """Fetch-or-build the cache slot for a request's model.

    Callers must hold ``_worker_cache_lock`` (asserted nowhere for speed;
    :func:`_resolve_cached` is the one call site).
    """
    global _worker_cache_hits, _worker_cache_misses
    fp = model_fingerprint(request)
    entry = _worker_cache.get(fp)
    if entry is not None:
        _worker_cache_hits += 1
        _worker_cache.move_to_end(fp)
        return entry
    _worker_cache_misses += 1
    if request.scenario is not None:
        model, default_rewards = request.scenario.build()
    else:
        model, default_rewards = request.model, None
    entry = [model, default_rewards, None]
    _worker_cache[fp] = entry
    while len(_worker_cache) > _WORKER_CACHE_SIZE:
        _worker_cache.popitem(last=False)
    return entry


def _resolve_cached(request: SolveRequest
                    ) -> tuple[CTMC, RewardStructure,
                               UniformizationKernel | None]:
    """Model, rewards and (when shareable) the cached default-rate kernel."""
    with _worker_cache_lock:
        entry = _cache_entry(request)
        model = entry[0]
        rewards = request.rewards if request.rewards is not None \
            else entry[1]
        if rewards is None:
            raise ModelError("request resolves to no reward structure")
        kernel: UniformizationKernel | None = None
        if (registry.get_spec(request.method).kernel_aware
                and "rate" not in request.solver_kwargs):
            if entry[2] is None:
                entry[2] = UniformizationKernel.from_model(model)[0]
            kernel = entry[2]
    return model, rewards, kernel


# -- worker entry points ---------------------------------------------------

def run_request(request: SolveRequest,
                memoize: bool = True) -> TransientSolution:
    """Execute one unfused request (picklable worker entry point).

    Builds — or fetches from this worker's cache — the model and its
    kernel, then runs the ordinary solver; when the method's
    :class:`~repro.solvers.registry.SolverSpec` declares
    ``schedule_memoizable`` (RR/RRL) and ``memoize`` is on, the worker's
    process-wide :class:`~repro.core.schedule_cache.ScheduleCache` is
    injected so cells sharing ``(model, rewards, regenerative, rate)``
    pay the ``K + L`` transformation once. Bit-identical to
    ``get_solver(method).solve(model, rewards, ...)`` either way.
    """
    spec = registry.get_spec(request.method)
    model, rewards, kernel = _resolve_cached(request)
    solver = spec.build(**dict(request.solver_kwargs))
    extra: dict[str, Any] = {}
    if kernel is not None:
        extra["kernel"] = kernel
    if memoize and spec.schedule_memoizable:
        extra["schedule_cache"] = process_schedule_cache()
    return solver.solve(model, rewards, request.measure,
                        list(request.times), request.eps, **extra)


def _cell_for(request: SolveRequest, rewards: RewardStructure) -> SolveCell:
    return SolveCell(rewards=rewards, measure=request.measure,
                     times=request.times, eps=request.eps)


def run_fused_group(requests: tuple[SolveRequest, ...]) -> list[dict]:
    """Execute a fused group (picklable worker entry point).

    All requests share ``(model fingerprint, method, solver_kwargs)``.
    Returns one ``{"ok": ..., ...}`` record per request so a single
    failing cell cannot poison the group: if the fused pass raises (e.g.
    one cell exceeds the solver's step budget), every cell is retried
    standalone and failures stay per-cell — exactly the unfused
    semantics, at the unfused price for that group only.
    """
    requests = tuple(requests)
    first = requests[0]
    solver = registry.get_solver(first.method,
                                 **dict(first.solver_kwargs))
    try:
        model, _, kernel = _resolve_cached(first)
        cells = []
        for req in requests:
            _, rewards, _ = _resolve_cached(req)
            cells.append(_cell_for(req, rewards))
        solutions = solver.solve_fused(model, cells, kernel=kernel)
        return [{"ok": True, "value": sol} for sol in solutions]
    except Exception:
        # Per-cell fallback: identical failure isolation to unfused runs.
        import traceback as _traceback

        records: list[dict] = []
        for req in requests:
            try:
                records.append({"ok": True, "value": run_request(req)})
            except Exception as exc:
                records.append({"ok": False,
                                "error_type": type(exc).__name__,
                                "error": str(exc),
                                "traceback": _traceback.format_exc()})
        return records


# -- planning --------------------------------------------------------------

@dataclass
class ExecutionPlan:
    """A batch of requests compiled into model-grouped tasks.

    ``assignments[i]`` maps task ``i``'s result *slots* back onto request
    indices: fused tasks produce one slot per distinct cell, single tasks
    one slot total; a slot serves several requests when duplicates were
    coalesced. :meth:`scatter` inverts the mapping, so callers always see
    one outcome per request in submission order, however the work was
    fused.
    """

    requests: list[SolveRequest]
    tasks: list[BatchTask]
    assignments: list[list[list[int]]]
    fused: list[bool]
    coalesced: int
    fuse_enabled: bool
    memoize_enabled: bool = True

    @property
    def n_requests(self) -> int:
        return len(self.requests)

    @property
    def n_tasks(self) -> int:
        return len(self.tasks)

    @property
    def fused_tasks(self) -> int:
        """Number of multi-cell fused tasks in the plan."""
        return sum(1 for f in self.fused if f)

    @property
    def fused_cells(self) -> int:
        """Number of distinct cells riding inside fused tasks."""
        return sum(len(slots) for slots, f in zip(self.assignments,
                                                  self.fused) if f)

    def schedule_builds(self) -> int:
        """Upper bound on the schedule transformations a memoizing worker
        builds for this plan.

        Schedule-memoizable requests (RR/RRL) are grouped by ``(model,
        rewards, spec.schedule_fingerprint(solver_kwargs))`` — the specs'
        fingerprint hooks declare which constructor kwargs the ``K + L``
        phase depends on, so cells differing only in solution-phase knobs
        (``t_factor``, ``inner_max_steps``) count as one build, and RR
        and RRL cells on one model share a group. An upper bound because
        the hook sees raw kwargs: a cell spelling out a default
        (``rate=Λ_max``) fingerprints apart from one relying on it, yet
        lands on the same cache entry at run time. 0 with memoization
        off.
        """
        if not self.memoize_enabled:
            return 0
        groups = set()
        for req in self.requests:
            spec = registry.get_spec(req.method)
            if not spec.schedule_memoizable:
                continue
            groups.add((model_fingerprint(req), _rewards_fingerprint(req),
                        spec.schedule_fingerprint(req.solver_kwargs)))
        return len(groups)

    def summary(self) -> str:
        """One-line human description (scripts print this)."""
        return (f"{self.n_requests} requests -> {self.n_tasks} tasks "
                f"({self.fused_tasks} fused covering {self.fused_cells} "
                f"cells, {self.coalesced} coalesced; "
                f"fusion {'on' if self.fuse_enabled else 'off'}, "
                f"schedule memo "
                f"{'on' if self.memoize_enabled else 'off'})")

    def scatter(self, outcomes: list[BatchOutcome]) -> list[BatchOutcome]:
        """Per-request outcomes (request order) from per-task outcomes."""
        if len(outcomes) != len(self.tasks):
            raise ValueError(
                f"plan has {len(self.tasks)} tasks, got "
                f"{len(outcomes)} outcomes")
        result: list[BatchOutcome | None] = [None] * len(self.requests)
        for outcome, slots, fused in zip(outcomes, self.assignments,
                                         self.fused):
            if fused and outcome.ok:
                records = outcome.value
                for slot, record in zip(slots, records):
                    for idx in slot:
                        result[idx] = BatchOutcome(
                            key=self.requests[idx].key,
                            ok=bool(record["ok"]),
                            value=record.get("value"),
                            error_type=record.get("error_type"),
                            error=record.get("error"),
                            traceback=record.get("traceback"),
                            duration=outcome.duration,
                            worker_pid=outcome.worker_pid)
            else:
                for slot in slots:
                    for idx in slot:
                        result[idx] = _dc_replace(
                            outcome, key=self.requests[idx].key)
        return result  # type: ignore[return-value]


def plan_requests(requests: Iterable[SolveRequest],
                  *,
                  fuse: bool = True,
                  memoize: bool = True) -> ExecutionPlan:
    """Compile requests into coalesced, model-fused batch tasks.

    With ``fuse=False`` the plan is the identity mapping — one task per
    request — which still benefits from the per-worker kernel cache and
    serves as the comparison baseline for ``--verify``-style checks.
    ``memoize=False`` additionally disables the per-worker RR/RRL
    schedule-transformation cache (the A/B baseline for the memoization
    verify) — either way the numbers are identical.
    """
    requests = list(requests)
    if not fuse:
        tasks = [BatchTask(fn=run_request, args=(req, memoize),
                           key=req.key)
                 for req in requests]
        return ExecutionPlan(requests=requests, tasks=tasks,
                             assignments=[[[i]] for i in range(len(requests))],
                             fused=[False] * len(requests),
                             coalesced=0, fuse_enabled=False,
                             memoize_enabled=memoize)

    # 1. Coalesce exact duplicates: one representative per signature.
    by_signature: "OrderedDict[tuple, list[int]]" = OrderedDict()
    for i, req in enumerate(requests):
        by_signature.setdefault(_signature(req), []).append(i)
    coalesced = len(requests) - len(by_signature)

    # 2. Group representatives of fusable methods by (model, method).
    groups: "OrderedDict[tuple, list[list[int]]]" = OrderedDict()
    for slot in by_signature.values():
        rep = requests[slot[0]]
        if registry.get_spec(rep.method).stack_fusable:
            gkey = ("fuse",) + _fusion_key(rep)
        else:
            gkey = ("single", len(groups))
        groups.setdefault(gkey, []).append(slot)

    tasks: list[BatchTask] = []
    assignments: list[list[list[int]]] = []
    fused_flags: list[bool] = []
    for gkey, slots in groups.items():
        reps = [requests[slot[0]] for slot in slots]
        if gkey[0] == "fuse" and len(reps) >= 2:
            # weight: the group does N cells' worth of work in one task,
            # so BatchRunner timeout budgets must scale accordingly.
            tasks.append(BatchTask(fn=run_fused_group, args=(tuple(reps),),
                                   key=("fused", reps[0].method,
                                        tuple(r.key for r in reps)),
                                   weight=len(reps)))
            assignments.append(slots)
            fused_flags.append(True)
        else:
            for slot in slots:
                rep = requests[slot[0]]
                tasks.append(BatchTask(fn=run_request,
                                       args=(rep, memoize),
                                       key=rep.key))
                assignments.append([slot])
                fused_flags.append(False)
    return ExecutionPlan(requests=requests, tasks=tasks,
                         assignments=assignments, fused=fused_flags,
                         coalesced=coalesced, fuse_enabled=True,
                         memoize_enabled=memoize)


def execute_requests(requests: Iterable[SolveRequest],
                     runner: BatchRunner | None = None,
                     *,
                     fuse: bool = True,
                     memoize: bool = True) -> list[BatchOutcome]:
    """Plan and execute requests; one outcome per request, in order."""
    plan = plan_requests(requests, fuse=fuse, memoize=memoize)
    outcomes = (runner or BatchRunner(max_workers=1)).run(plan.tasks)
    return plan.scatter(outcomes)


def solve_requests(requests: Iterable[SolveRequest],
                   runner: BatchRunner | None = None,
                   *,
                   fuse: bool = True,
                   memoize: bool = True) -> list[TransientSolution]:
    """Like :func:`execute_requests` but unwrapping to solutions
    (raising :class:`~repro.batch.runner.BatchExecutionError` on the
    first failed request)."""
    return [o.unwrap() for o in execute_requests(requests, runner,
                                                 fuse=fuse,
                                                 memoize=memoize)]
