"""Parametric scenario generator for batch sweeps.

The paper evaluates two models. A production sweep wants *families*:
this module programmatically produces grid cells over

* ``raid5`` — the paper's level-5 RAID model with varying group counts
  and reconstruction/repair rates (availability and reliability
  variants);
* ``multiprocessor`` — the fault-tolerant multiprocessor with varying
  coverage and component counts;
* ``birth_death`` — random birth–death chains (load/queueing shaped);
* ``block`` — block-structured (nearly-completely-decomposable) random
  CTMCs with tunable stiffness.

A :class:`Scenario` is deliberately *descriptive*: a registry key plus a
plain parameter dict, never a live model. That keeps scenarios tiny and
picklable, so a :class:`~repro.batch.runner.BatchRunner` worker rebuilds
the model on its side of the process boundary instead of shipping CSR
matrices through pickles for every cell. Building is cheap relative to
solving; rebuilt models are bit-identical because every family is either
deterministic or seeded.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable, Sequence
from dataclasses import dataclass, field, replace

import numpy as np

from repro.exceptions import ModelError
from repro.markov.ctmc import CTMC
from repro.markov.rewards import Measure, RewardStructure
from repro.models.library import birth_death, block_structured_ctmc
from repro.models.multiprocessor import (
    MultiprocessorParams,
    build_multiprocessor_availability,
    build_multiprocessor_reliability,
)
from repro.models.raid5 import (
    Raid5Params,
    build_raid5_availability,
    build_raid5_reliability,
)

__all__ = ["Scenario", "scenario_families", "generate_scenarios",
           "build_scenario_model", "solve_scenario", "scenario_tasks",
           "scenario_requests", "solve_scenarios"]

#: Default evaluation horizon grid (hours, paper-style log sweep).
_DEFAULT_TIMES: tuple[float, ...] = (1.0, 10.0, 100.0, 1000.0)


def _build_raid5(params: dict) -> tuple[CTMC, RewardStructure]:
    kind = params.get("kind", "availability")
    p = Raid5Params(**{k: v for k, v in params.items() if k != "kind"})
    if kind == "availability":
        model, rewards, _ = build_raid5_availability(p)
    elif kind == "reliability":
        model, rewards, _ = build_raid5_reliability(p)
    else:
        raise ModelError(f"unknown raid5 kind {kind!r}")
    return model, rewards


def _build_multiprocessor(params: dict) -> tuple[CTMC, RewardStructure]:
    kind = params.get("kind", "availability")
    p = MultiprocessorParams(
        **{k: v for k, v in params.items() if k != "kind"})
    if kind == "availability":
        model, rewards, _ = build_multiprocessor_availability(p)
    elif kind == "reliability":
        model, rewards, _ = build_multiprocessor_reliability(p)
    else:
        raise ModelError(f"unknown multiprocessor kind {kind!r}")
    return model, rewards


def _build_birth_death(params: dict) -> tuple[CTMC, RewardStructure]:
    n = int(params["n"])
    model = birth_death(n, float(params["birth"]), float(params["death"]))
    # Reward: indicator of the congested top quarter of the chain.
    top = max(1, n // 4)
    return model, RewardStructure.indicator(n, range(n - top, n))


def _build_block(params: dict) -> tuple[CTMC, RewardStructure]:
    return block_structured_ctmc(
        n_blocks=int(params["n_blocks"]),
        block_size=int(params["block_size"]),
        intra_scale=float(params.get("intra_scale", 1.0)),
        inter_scale=float(params.get("inter_scale", 1e-3)),
        seed=int(params.get("seed", 0)))


_FAMILY_BUILDERS: dict[str, Callable[[dict], tuple[CTMC, RewardStructure]]] = {
    "raid5": _build_raid5,
    "multiprocessor": _build_multiprocessor,
    "birth_death": _build_birth_death,
    "block": _build_block,
}


def scenario_families() -> tuple[str, ...]:
    """Registered model-family keys."""
    return tuple(sorted(_FAMILY_BUILDERS))


@dataclass(frozen=True)
class Scenario:
    """One picklable grid cell: model family + parameters + measure grid."""

    name: str
    family: str
    params: dict = field(default_factory=dict)
    measure: Measure = Measure.TRR
    times: tuple[float, ...] = _DEFAULT_TIMES
    eps: float = 1e-10

    def build(self) -> tuple[CTMC, RewardStructure]:
        """Instantiate the model and rewards (done worker-side)."""
        try:
            builder = _FAMILY_BUILDERS[self.family]
        except KeyError:
            raise ModelError(
                f"unknown scenario family {self.family!r}; "
                f"known: {', '.join(scenario_families())}") from None
        return builder(dict(self.params))

    def with_measure(self, measure: Measure) -> "Scenario":
        """Copy of this scenario evaluating a different measure."""
        tag = measure.value
        return replace(self, measure=measure,
                       name=f"{self.name}/{tag}")


def build_scenario_model(scenario: Scenario
                         ) -> tuple[CTMC, RewardStructure]:
    """Module-level builder (picklable worker entry point)."""
    return scenario.build()


def solve_scenario(scenario: Scenario, method: str = "RRL",
                   **solver_kwargs):
    """Build and solve one scenario (picklable worker entry point).

    Returns the solver's :class:`~repro.markov.base.TransientSolution`.
    """
    from repro.analysis.runner import get_solver

    model, rewards = scenario.build()
    solver = get_solver(method, **solver_kwargs)
    return solver.solve(model, rewards, scenario.measure,
                        list(scenario.times), scenario.eps)


def scenario_tasks(scenarios: Iterable[Scenario],
                   methods: Sequence[str] = ("RRL",)) -> list:
    """One :class:`~repro.batch.runner.BatchTask` per (scenario, method).

    The un-planned fan-out; :func:`scenario_requests` +
    :func:`repro.batch.planner.execute_requests` additionally share
    kernels and fuse compatible cells across scenarios with equal models.
    """
    from repro.batch.runner import BatchTask

    return [BatchTask(fn=solve_scenario, args=(s, m), key=(s.name, m))
            for s in scenarios for m in methods]


def scenario_requests(scenarios: Iterable[Scenario],
                      methods: Sequence[str] = ("RRL",)) -> list:
    """One :class:`~repro.batch.planner.SolveRequest` per
    (scenario, method), keyed ``(scenario.name, method)`` like
    :func:`scenario_tasks` — ready for the fusion planner."""
    from repro.batch.planner import SolveRequest

    return [SolveRequest(scenario=s, measure=s.measure, times=s.times,
                         eps=s.eps, method=m, key=(s.name, m))
            for s in scenarios for m in methods]


def solve_scenarios(scenarios: Iterable[Scenario],
                    methods: Sequence[str] = ("RRL",),
                    service=None,
                    *,
                    fuse: bool = True) -> list:
    """Solve a scenario sweep through the
    :class:`~repro.service.service.SolveService` facade.

    Scenarios sharing a model fuse (SR/RSD) or at least share a
    per-worker kernel; returns one
    :class:`~repro.batch.runner.BatchOutcome` per (scenario, method) in
    order. ``fuse=False`` plans one task per cell — same numbers, paying
    the per-cell stepping price (ignored when ``service`` is given: the
    service carries its own planner policy).
    """
    from repro.service.service import SolveService

    if service is None:
        service = SolveService(fuse=fuse)
    return service.solve(scenario_requests(scenarios, methods))


def _raid5_scenarios(times: tuple[float, ...], eps: float
                     ) -> list[Scenario]:
    out = []
    for groups in (2, 4):
        for recon in (0.5, 1.0):
            base = {"groups": groups, "spare_disks": 2,
                    "spare_controllers": 1, "reconstruction": recon}
            for kind in ("availability", "reliability"):
                out.append(Scenario(
                    name=f"raid5-G{groups}-mu{recon:g}-{kind[:5]}",
                    family="raid5",
                    params={**base, "kind": kind},
                    times=times, eps=eps))
    return out


def _multiprocessor_scenarios(times: tuple[float, ...], eps: float
                              ) -> list[Scenario]:
    out = []
    for coverage in (0.9, 0.99):
        for n_p in (2, 3):
            base = {"processors": n_p, "memories": 2,
                    "coverage": coverage}
            for kind in ("availability", "reliability"):
                out.append(Scenario(
                    name=f"mp-p{n_p}-c{coverage:g}-{kind[:5]}",
                    family="multiprocessor",
                    params={**base, "kind": kind},
                    times=times, eps=eps))
    return out


def _birth_death_scenarios(times: tuple[float, ...], eps: float,
                           rng: np.random.Generator,
                           count: int) -> list[Scenario]:
    out = []
    for i in range(count):
        n = int(rng.integers(5, 30))
        birth = float(rng.uniform(0.1, 2.0))
        death = float(rng.uniform(birth, 4.0 * birth))  # stable-ish queue
        out.append(Scenario(
            name=f"bd-{i}-n{n}",
            family="birth_death",
            params={"n": n, "birth": round(birth, 6),
                    "death": round(death, 6)},
            times=times, eps=eps))
    return out


def _block_scenarios(times: tuple[float, ...], eps: float,
                     rng: np.random.Generator,
                     count: int) -> list[Scenario]:
    out = []
    for i in range(count):
        n_blocks = int(rng.integers(2, 5))
        block_size = int(rng.integers(3, 8))
        inter = float(10.0 ** rng.uniform(-4, -2))
        out.append(Scenario(
            name=f"block-{i}-{n_blocks}x{block_size}",
            family="block",
            params={"n_blocks": n_blocks, "block_size": block_size,
                    "inter_scale": round(inter, 8),
                    "seed": int(rng.integers(2**31))},
            times=times, eps=eps))
    return out


def generate_scenarios(families: Iterable[str] | None = None,
                       *,
                       seed: int = 0,
                       random_count: int = 4,
                       times: Sequence[float] = _DEFAULT_TIMES,
                       eps: float = 1e-10,
                       measures: Sequence[Measure] = (Measure.TRR,)
                       ) -> list[Scenario]:
    """Produce a deterministic scenario grid.

    Parameters
    ----------
    families:
        Subset of :func:`scenario_families` (default: all).
    seed:
        Seed for the random families; the same seed always yields the
        same grid (scenarios are rebuilt identically in pool workers).
    random_count:
        Cells per *random* family (birth_death, block).
    times, eps:
        Evaluation grid shared by every scenario.
    measures:
        Each scenario is emitted once per requested measure.
    """
    wanted = tuple(families) if families is not None else scenario_families()
    unknown = set(wanted) - set(scenario_families())
    if unknown:
        raise ModelError(f"unknown scenario families: {sorted(unknown)}")
    t = tuple(float(x) for x in times)
    rng = np.random.default_rng(seed)
    base: list[Scenario] = []
    if "raid5" in wanted:
        base += _raid5_scenarios(t, eps)
    if "multiprocessor" in wanted:
        base += _multiprocessor_scenarios(t, eps)
    if "birth_death" in wanted:
        base += _birth_death_scenarios(t, eps, rng, random_count)
    if "block" in wanted:
        base += _block_scenarios(t, eps, rng, random_count)
    out: list[Scenario] = []
    for measure in measures:
        for s in base:
            out.append(s if measure is s.measure else s.with_measure(measure))
    return out
