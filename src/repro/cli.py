"""Command-line interface: reproduce the paper's artefacts from a shell.

Examples
--------
Reproduce Table 2 on the paper's grid::

    python -m repro table2 --paper

Solve the RAID unreliability at three horizons with RRL::

    python -m repro solve --model raid-ur --groups 20 \
        --times 1e3 1e4 1e5 --method RRL --eps 1e-12

Rank regenerative-state candidates for the availability model::

    python -m repro diagnose --groups 10

List the registered solvers and their capabilities::

    python -m repro solvers list

Run the quick grid through the resumable on-disk job queue (a killed
``run`` resumes from the journal with bit-identical results)::

    python -m repro batch submit --queue ./q --quick
    python -m repro batch run --queue ./q --workers 4
    python -m repro batch status --queue ./q
    python -m repro batch collect --queue ./q --json results.json
"""

from __future__ import annotations

import argparse
import json
import sys
from collections.abc import Sequence

import numpy as np

from repro.analysis.convergence import compare_regenerative_states
from repro.batch.backends import BACKEND_NAMES
from repro.analysis.experiments import (
    ExperimentConfig,
    grid_solve_requests,
    run_figure3,
    run_figure4,
    run_table1,
    run_table2,
)
from repro.analysis.reporting import format_table
from repro.analysis.runner import solve
from repro.solvers import registry
from repro.markov.mttf import mean_time_to_absorption
from repro.markov.rewards import Measure
from repro.models import (
    Raid5Params,
    build_raid5_availability,
    build_raid5_reliability,
)

__all__ = ["main", "build_parser"]


def _config_from(args: argparse.Namespace) -> ExperimentConfig:
    if args.paper:
        return ExperimentConfig.paper(sr_step_budget=args.sr_budget)
    kwargs = {}
    if args.groups:
        kwargs["groups"] = tuple(args.groups)
    if args.times:
        kwargs["times"] = tuple(args.times)
    return ExperimentConfig(sr_step_budget=args.sr_budget, **kwargs)


def _add_grid_options(p: argparse.ArgumentParser) -> None:
    p.add_argument("--paper", action="store_true",
                   help="use the paper's exact grid (G=20/40, t<=1e5 h)")
    p.add_argument("--groups", type=int, nargs="+",
                   help="parity-group counts G (default: 5 10)")
    p.add_argument("--times", type=float, nargs="+",
                   help="horizons in hours (default: 1..1e4, decades)")
    p.add_argument("--sr-budget", type=int, default=2_000_000,
                   help="skip SR/RR cells beyond this many inner steps")


def _cmd_table(args: argparse.Namespace) -> int:
    cfg = _config_from(args)
    table = run_table1(cfg) if args.which == "table1" else run_table2(cfg)
    print(table.render())
    return 0


def _cmd_figure(args: argparse.Namespace) -> int:
    cfg = _config_from(args)
    fig = run_figure3(cfg) if args.which == "figure3" else run_figure4(cfg)
    print(fig.render())
    return 0


def _build_model(kind: str, groups: int):
    params = Raid5Params(groups=groups)
    if kind == "raid-ua":
        model, rewards, _ = build_raid5_availability(params)
    elif kind == "raid-ur":
        model, rewards, _ = build_raid5_reliability(params)
    else:
        raise SystemExit(f"unknown model {kind!r}")
    return model, rewards


def _cmd_solve(args: argparse.Namespace) -> int:
    model, rewards = _build_model(args.model, args.groups)
    measure = Measure.TRR if args.measure == "trr" else Measure.MRR
    sol = solve(model, rewards, measure, args.times, eps=args.eps,
                method=args.method)
    rows = [[f"{t:g}", f"{v:.10e}", int(s)]
            for t, v, s in zip(sol.times, sol.values, sol.steps)]
    print(format_table(
        f"{args.measure.upper()} of {args.model} (G={args.groups}) via "
        f"{sol.method}, eps={args.eps:g}",
        ["t (h)", "value", "steps"], rows))
    return 0


def _cmd_mttf(args: argparse.Namespace) -> int:
    model, _ = _build_model("raid-ur", args.groups)
    at = mean_time_to_absorption(model)
    print(f"RAID-5 G={args.groups}: MTTF = {at.mean:.6g} h, "
          f"std = {np.sqrt(at.variance):.6g} h, cv² = {at.cv2:.4f}")
    return 0


def _cmd_validate(args: argparse.Namespace) -> int:
    from repro.analysis.validation import cross_validate
    model, rewards = _build_model(args.model, args.groups)
    report = cross_validate(model, rewards, Measure.TRR, args.times,
                            eps=args.eps)
    print(report.render())
    return 0 if report.passed else 1


def _cmd_diagnose(args: argparse.Namespace) -> int:
    model, _ = _build_model("raid-ua", args.groups)
    ranked = compare_regenerative_states(model)
    rows = []
    for state, fit in ranked[: args.top]:
        label = model.labels[state] if model.labels else state
        rows.append([state, str(label), f"{fit.rate:.6f}",
                     "yes" if fit.exhausted else "no"])
    print(format_table(
        f"Regenerative-state candidates for RAID-5 G={args.groups} "
        "(smaller decay = smaller K)",
        ["index", "state", "a(k) decay", "exhausted"], rows))
    return 0


def _cmd_solvers_list(args: argparse.Namespace) -> int:
    """``repro solvers list`` — the registry, end to end: every row is a
    live :class:`~repro.solvers.registry.SolverSpec`."""
    rows = []
    for spec in registry.specs():
        caps = ", ".join(flag.replace("_", "-")
                         for flag in spec.capabilities()) or "-"
        rows.append([spec.name, caps, spec.summary])
    print(format_table(
        f"{len(rows)} registered solvers "
        "(capabilities drive planner fusion/caching/memoization)",
        ["method", "capabilities", "summary"], rows))
    return 0


# -- queue-backed batch execution ------------------------------------------

def _positive_int(text: str) -> int:
    """argparse type: an integer >= 1 (rejected at parse time, so bad
    values never reach the queue/runner as raw ValueErrors)."""
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"{text!r} is not an integer") \
            from None
    if value < 1:
        raise argparse.ArgumentTypeError("must be >= 1")
    return value


def _batch_config_from(args: argparse.Namespace) -> ExperimentConfig:
    if args.quick:
        return ExperimentConfig.quick()
    return _config_from(args)


def _cmd_batch_submit(args: argparse.Namespace) -> int:
    from repro.service import JobQueue

    if args.scenarios:
        from repro.batch.scenarios import (
            generate_scenarios,
            scenario_requests,
        )
        scenarios = generate_scenarios(families=args.scenarios,
                                       seed=args.seed)
        requests = scenario_requests(scenarios,
                                     methods=tuple(args.methods))
        what = (f"scenario sweep ({', '.join(args.scenarios)}, "
                f"methods {', '.join(args.methods)})")
    else:
        config = _batch_config_from(args)
        requests = grid_solve_requests(config)
        what = (f"grid solve cells (G={list(config.groups)}, "
                f"{len(config.times)} horizons)")
    queue = JobQueue(args.queue)
    ids = queue.submit(requests)
    print(f"submitted {len(ids)} jobs [{what}] to {queue.path}")
    return 0


def _cmd_batch_run(args: argparse.Namespace) -> int:
    from repro.service import JobQueue, SolveService

    queue = JobQueue.resume(args.queue)
    service = SolveService(workers=args.workers, backend=args.backend,
                           fuse=args.fuse, memoize=args.memoize)
    processed = queue.run(service, limit=args.limit,
                          checkpoint=args.checkpoint)
    failed = sum(1 for _, o in processed if not o.ok)
    status = queue.status()
    print(f"processed {len(processed)} jobs ({failed} failed); "
          f"{status['pending']} still pending in {queue.path}")
    return 0 if failed == 0 else 1


def _cmd_batch_status(args: argparse.Namespace) -> int:
    from repro.service import JobQueue

    status = JobQueue.resume(args.queue).status()
    print(f"{status['path']}: {status['submitted']} submitted, "
          f"{status['completed']} completed ({status['failed']} failed), "
          f"{status['pending']} pending")
    return 0


def _cmd_batch_collect(args: argparse.Namespace) -> int:
    from repro.service import JobQueue
    from repro.service.protocol import outcome_to_dict

    queue = JobQueue.resume(args.queue)
    outcomes = queue.collect(require_complete=not args.partial)
    rows = []
    for out in outcomes:
        if out.ok and hasattr(out.value, "values"):
            summary = " ".join(f"{v:.6e}" for v in out.value.values)
        elif out.ok:
            summary = repr(out.value)
        else:
            summary = f"{out.error_type}: {out.error}"
        rows.append([repr(out.key), "ok" if out.ok else "FAILED", summary])
    print(format_table(f"{len(outcomes)} outcomes from {queue.path}",
                       ["key", "status", "result"], rows))
    if args.json:
        payload = {"queue": str(queue.path),
                   "outcomes": [outcome_to_dict(o) for o in outcomes]}
        with open(args.json, "w") as fh:
            json.dump(payload, fh, indent=2)
        print(f"wrote {args.json}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerative randomization with Laplace transform "
                    "inversion — paper reproduction toolkit")
    sub = parser.add_subparsers(dest="command", required=True)

    for which, runner in (("table1", _cmd_table), ("table2", _cmd_table),
                          ("figure3", _cmd_figure),
                          ("figure4", _cmd_figure)):
        p = sub.add_parser(which, help=f"reproduce the paper's {which}")
        _add_grid_options(p)
        p.set_defaults(func=runner, which=which)

    p = sub.add_parser("solve", help="solve a RAID measure directly")
    p.add_argument("--model", choices=["raid-ua", "raid-ur"],
                   default="raid-ur")
    p.add_argument("--groups", type=int, default=10)
    p.add_argument("--measure", choices=["trr", "mrr"], default="trr")
    p.add_argument("--method", choices=registry.known_methods(),
                   default="RRL")
    p.add_argument("--times", type=float, nargs="+",
                   default=[1.0, 100.0, 10000.0])
    p.add_argument("--eps", type=float, default=1e-12)
    p.set_defaults(func=_cmd_solve)

    p = sub.add_parser("mttf", help="mean time to failure of the RAID model")
    p.add_argument("--groups", type=int, default=10)
    p.set_defaults(func=_cmd_mttf)

    p = sub.add_parser("diagnose",
                       help="rank regenerative-state candidates")
    p.add_argument("--groups", type=int, default=10)
    p.add_argument("--top", type=int, default=8)
    p.set_defaults(func=_cmd_diagnose)

    p = sub.add_parser(
        "batch",
        help="queue-backed batch execution through SolveService",
        description="Submit solve cells to a resumable on-disk job "
                    "queue, execute them through the SolveService "
                    "facade, and collect the journaled outcomes. A "
                    "killed run resumes from the journal with "
                    "bit-identical results.")
    batch_sub = p.add_subparsers(dest="batch_command", required=True)

    pb = batch_sub.add_parser("submit",
                              help="journal grid or scenario solve cells")
    pb.add_argument("--queue", required=True, metavar="DIR",
                    help="queue directory (created if missing)")
    pb.add_argument("--quick", action="store_true",
                    help="submit the seconds-scale smoke grid")
    _add_grid_options(pb)
    pb.add_argument("--scenarios", nargs="+", metavar="FAMILY",
                    help="submit a generated scenario sweep instead of "
                         "the paper grid")
    pb.add_argument("--methods", nargs="+", default=["RRL"],
                    metavar="METHOD",
                    help="methods for --scenarios sweeps (default: RRL)")
    pb.add_argument("--seed", type=int, default=0,
                    help="seed for --scenarios generation")
    pb.set_defaults(func=_cmd_batch_submit)

    pb = batch_sub.add_parser("run", help="execute pending jobs")
    pb.add_argument("--queue", required=True, metavar="DIR")
    pb.add_argument("--workers", type=_positive_int, default=1,
                    help="pool size (default: 1, inline)")
    pb.add_argument("--backend", choices=BACKEND_NAMES, default=None,
                    help="execution backend: threads shares one "
                         "process-wide cache set (GIL-releasing "
                         "stepping), processes isolates workers "
                         "(default: $REPRO_BACKEND or processes)")
    pb.add_argument("--no-fuse", dest="fuse", action="store_false",
                    default=True,
                    help="disable planner coalescing/fusion")
    pb.add_argument("--no-memoize", dest="memoize", action="store_false",
                    default=True,
                    help="disable the per-worker RR/RRL schedule-"
                         "transformation cache")
    pb.add_argument("--limit", type=int, default=None,
                    help="process at most this many pending jobs")
    pb.add_argument("--checkpoint", type=_positive_int, default=8,
                    help="jobs per fsynced journal batch (default: 8)")
    pb.set_defaults(func=_cmd_batch_run)

    pb = batch_sub.add_parser("status", help="queue counts")
    pb.add_argument("--queue", required=True, metavar="DIR")
    pb.set_defaults(func=_cmd_batch_status)

    pb = batch_sub.add_parser("collect",
                              help="print (and optionally dump) outcomes")
    pb.add_argument("--queue", required=True, metavar="DIR")
    pb.add_argument("--partial", action="store_true",
                    help="allow collecting while jobs are still pending")
    pb.add_argument("--json", metavar="PATH",
                    help="dump wire-format outcomes as JSON")
    pb.set_defaults(func=_cmd_batch_collect)

    p = sub.add_parser(
        "solvers",
        help="inspect the capability-declaring solver registry")
    solvers_sub = p.add_subparsers(dest="solvers_command", required=True)
    ps = solvers_sub.add_parser(
        "list",
        help="list registered solvers, capabilities and summaries")
    ps.set_defaults(func=_cmd_solvers_list)

    p = sub.add_parser("validate",
                       help="cross-method agreement check on a RAID model")
    p.add_argument("--model", choices=["raid-ua", "raid-ur"],
                   default="raid-ur")
    p.add_argument("--groups", type=int, default=5)
    p.add_argument("--times", type=float, nargs="+", default=[1.0, 100.0])
    p.add_argument("--eps", type=float, default=1e-10)
    p.set_defaults(func=_cmd_validate)
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point (``python -m repro ...``)."""
    from repro.exceptions import (
        ProtocolError,
        QueueError,
        UnknownMethodError,
    )

    parser = build_parser()
    args = parser.parse_args(argv if argv is not None else sys.argv[1:])
    try:
        return args.func(args)
    except (ProtocolError, QueueError, UnknownMethodError) as exc:
        # Operational errors of the queue-backed commands (missing
        # journal, incomplete queue, bad wire payload, a method tag the
        # registry does not know) are runtime failures, not usage
        # mistakes: report them plainly on stderr with an ordinary
        # failure code — no usage banner, no traceback, and
        # distinguishable from argparse's exit status 2.
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
