"""Command-line interface: reproduce the paper's artefacts from a shell.

Examples
--------
Reproduce Table 2 on the paper's grid::

    python -m repro table2 --paper

Solve the RAID unreliability at three horizons with RRL::

    python -m repro solve --model raid-ur --groups 20 \
        --times 1e3 1e4 1e5 --method RRL --eps 1e-12

Rank regenerative-state candidates for the availability model::

    python -m repro diagnose --groups 10
"""

from __future__ import annotations

import argparse
import sys
from collections.abc import Sequence

import numpy as np

from repro.analysis.convergence import compare_regenerative_states
from repro.analysis.experiments import (
    ExperimentConfig,
    run_figure3,
    run_figure4,
    run_table1,
    run_table2,
)
from repro.analysis.reporting import format_table
from repro.analysis.runner import SOLVER_REGISTRY, solve
from repro.markov.mttf import mean_time_to_absorption
from repro.markov.rewards import Measure
from repro.models import (
    Raid5Params,
    build_raid5_availability,
    build_raid5_reliability,
)

__all__ = ["main", "build_parser"]


def _config_from(args: argparse.Namespace) -> ExperimentConfig:
    if args.paper:
        return ExperimentConfig.paper(sr_step_budget=args.sr_budget)
    kwargs = {}
    if args.groups:
        kwargs["groups"] = tuple(args.groups)
    if args.times:
        kwargs["times"] = tuple(args.times)
    return ExperimentConfig(sr_step_budget=args.sr_budget, **kwargs)


def _add_grid_options(p: argparse.ArgumentParser) -> None:
    p.add_argument("--paper", action="store_true",
                   help="use the paper's exact grid (G=20/40, t<=1e5 h)")
    p.add_argument("--groups", type=int, nargs="+",
                   help="parity-group counts G (default: 5 10)")
    p.add_argument("--times", type=float, nargs="+",
                   help="horizons in hours (default: 1..1e4, decades)")
    p.add_argument("--sr-budget", type=int, default=2_000_000,
                   help="skip SR/RR cells beyond this many inner steps")


def _cmd_table(args: argparse.Namespace) -> int:
    cfg = _config_from(args)
    table = run_table1(cfg) if args.which == "table1" else run_table2(cfg)
    print(table.render())
    return 0


def _cmd_figure(args: argparse.Namespace) -> int:
    cfg = _config_from(args)
    fig = run_figure3(cfg) if args.which == "figure3" else run_figure4(cfg)
    print(fig.render())
    return 0


def _build_model(kind: str, groups: int):
    params = Raid5Params(groups=groups)
    if kind == "raid-ua":
        model, rewards, _ = build_raid5_availability(params)
    elif kind == "raid-ur":
        model, rewards, _ = build_raid5_reliability(params)
    else:
        raise SystemExit(f"unknown model {kind!r}")
    return model, rewards


def _cmd_solve(args: argparse.Namespace) -> int:
    model, rewards = _build_model(args.model, args.groups)
    measure = Measure.TRR if args.measure == "trr" else Measure.MRR
    sol = solve(model, rewards, measure, args.times, eps=args.eps,
                method=args.method)
    rows = [[f"{t:g}", f"{v:.10e}", int(s)]
            for t, v, s in zip(sol.times, sol.values, sol.steps)]
    print(format_table(
        f"{args.measure.upper()} of {args.model} (G={args.groups}) via "
        f"{sol.method}, eps={args.eps:g}",
        ["t (h)", "value", "steps"], rows))
    return 0


def _cmd_mttf(args: argparse.Namespace) -> int:
    model, _ = _build_model("raid-ur", args.groups)
    at = mean_time_to_absorption(model)
    print(f"RAID-5 G={args.groups}: MTTF = {at.mean:.6g} h, "
          f"std = {np.sqrt(at.variance):.6g} h, cv² = {at.cv2:.4f}")
    return 0


def _cmd_validate(args: argparse.Namespace) -> int:
    from repro.analysis.validation import cross_validate
    model, rewards = _build_model(args.model, args.groups)
    report = cross_validate(model, rewards, Measure.TRR, args.times,
                            eps=args.eps)
    print(report.render())
    return 0 if report.passed else 1


def _cmd_diagnose(args: argparse.Namespace) -> int:
    model, _ = _build_model("raid-ua", args.groups)
    ranked = compare_regenerative_states(model)
    rows = []
    for state, fit in ranked[: args.top]:
        label = model.labels[state] if model.labels else state
        rows.append([state, str(label), f"{fit.rate:.6f}",
                     "yes" if fit.exhausted else "no"])
    print(format_table(
        f"Regenerative-state candidates for RAID-5 G={args.groups} "
        "(smaller decay = smaller K)",
        ["index", "state", "a(k) decay", "exhausted"], rows))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerative randomization with Laplace transform "
                    "inversion — paper reproduction toolkit")
    sub = parser.add_subparsers(dest="command", required=True)

    for which, runner in (("table1", _cmd_table), ("table2", _cmd_table),
                          ("figure3", _cmd_figure),
                          ("figure4", _cmd_figure)):
        p = sub.add_parser(which, help=f"reproduce the paper's {which}")
        _add_grid_options(p)
        p.set_defaults(func=runner, which=which)

    p = sub.add_parser("solve", help="solve a RAID measure directly")
    p.add_argument("--model", choices=["raid-ua", "raid-ur"],
                   default="raid-ur")
    p.add_argument("--groups", type=int, default=10)
    p.add_argument("--measure", choices=["trr", "mrr"], default="trr")
    p.add_argument("--method", choices=sorted(SOLVER_REGISTRY),
                   default="RRL")
    p.add_argument("--times", type=float, nargs="+",
                   default=[1.0, 100.0, 10000.0])
    p.add_argument("--eps", type=float, default=1e-12)
    p.set_defaults(func=_cmd_solve)

    p = sub.add_parser("mttf", help="mean time to failure of the RAID model")
    p.add_argument("--groups", type=int, default=10)
    p.set_defaults(func=_cmd_mttf)

    p = sub.add_parser("diagnose",
                       help="rank regenerative-state candidates")
    p.add_argument("--groups", type=int, default=10)
    p.add_argument("--top", type=int, default=8)
    p.set_defaults(func=_cmd_diagnose)

    p = sub.add_parser("validate",
                       help="cross-method agreement check on a RAID model")
    p.add_argument("--model", choices=["raid-ua", "raid-ur"],
                   default="raid-ur")
    p.add_argument("--groups", type=int, default=5)
    p.add_argument("--times", type=float, nargs="+", default=[1.0, 100.0])
    p.add_argument("--eps", type=float, default=1e-10)
    p.set_defaults(func=_cmd_validate)
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point (``python -m repro ...``)."""
    parser = build_parser()
    args = parser.parse_args(argv if argv is not None else sys.argv[1:])
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
