"""Parametric level-5 RAID dependability model (paper, Section 3).

Architecture: ``G`` parity groups of ``N`` disks; ``N`` controllers, each
controlling a *string* of ``G`` disks (one disk of every group), plus
``C_H`` hot-spare controllers and ``D_H`` hot-spare disks. The system is
operational iff every parity group has at least ``N−1`` available disks;
a failed controller makes its entire string unavailable.

The paper uses the *pessimistic approximated* model of [13] (+ hot spare
controllers): instead of tracking per-group/per-string detail, the state
is the aggregate tuple

    (NFD, NDR, NWD, NSD, AL, NFC, NSC)           + one FAILED state

— failed disks, disks under reconstruction, disks waiting for
reconstruction, spare disks, alignment flag ("all unavailable disks lie
on one string"), failed controllers, spare controllers. The approximation
of the paper: when an unavailable disk of an *unaligned* set becomes
available, the remaining set is still considered unaligned whenever it
has ``>= 2`` members.

Exact dynamics used here (the paper gives prose only; each rule below is
the direct aggregate translation — see DESIGN.md for the reconciliation
of our state/transition counts with the paper's):

Invariants of operational states
  * ``NFC ∈ {0,1}`` (two failed controllers ⇒ two unavailable disks in
    every group ⇒ system failure);
  * ``NFC = 0 ⇒ NWD = 0`` (a waiting disk exists only while its string's
    controller is down) and ``NFC = 1 ⇒ NDR = 0`` (no group is fully
    available while a string is down);
  * ``U = NFD + NDR + NWD <= G`` (unavailable disks occupy distinct
    groups in any operational state);
  * ``AL = True`` whenever ``U <= 1`` or ``NFC = 1``.

Events (rates; ``→ FAILED`` marks system failure)
  * disk failure in a *fresh* group (``G − U`` of them):
    - ``NFC=0``: rate ``(G−U)·N·λ_D``; lands on the aligned string with
      probability ``1/N`` (keeps ``AL``), else unaligns;
    - ``NFC=1``: the string-c disk (1 per fresh group) fails at ``λ_D``
      keeping the system up (still aligned); the other ``N−1`` disks
      → FAILED.
  * disk failure in an occupied group: the ``N−1`` available disks of a
    group holding a failed/waiting disk fail at ``λ_D`` → FAILED; in a
    reconstructing group the ``N−1`` (overloaded) source disks fail at
    ``λ_S`` → FAILED, the target disk fails at ``λ_S`` → back to a failed
    disk (``NDR−1, NFD+1``);
  * waiting disks (``NFC=1``) fail at ``λ_D`` → ``NWD−1, NFD+1``;
  * controller failure: with ``U = 0`` → ``NFC=1`` (rate ``N·λ_C``);
    with ``U >= 1`` and ``AL``: rate ``λ_C`` hits the aligned string
    (reconstructions stall: ``NWD += NDR``), rate ``(N−1)·λ_C`` → FAILED;
    with ``¬AL`` → FAILED (rate ``N·λ_C``); with ``NFC=1`` the remaining
    ``N−1`` controllers → FAILED;
  * reconstruction completion: per group ``μ_DRC``; success (``P_R``)
    frees the disk (un-aligns per the paper's pessimistic rule:
    ``AL`` stays ``False`` while ``U >= 2``), failure (``1−P_R``)
    → FAILED;
  * repairman (single, controllers first): controller swap ``μ_CRP``
    (needs ``NSC>=1``; on completion all waiting disks start
    reconstruction: ``NDR = NWD, NWD = 0``); disk swap ``μ_DRP`` (needs
    ``NFD>=1, NSD>=1`` and no controller swap in progress; the replaced
    disk starts reconstruction when ``NFC=0``, else waits);
  * out-of-spare (field) replacement, unlimited repairmen, ``μ_SR`` each:
    failed disks when ``NSD=0``, the failed controller when ``NSC=0``;
  * spare replenishment, ``μ_SR`` per missing spare:
    ``(D_H−NSD)·μ_SR`` and ``(C_H−NSC)·μ_SR``;
  * FAILED: global repair ``μ_G`` back to the initial state
    (availability variant) or absorbing (reliability variant — the
    paper's "one transition less").
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.exceptions import ModelError
from repro.markov.ctmc import CTMC
from repro.markov.rewards import RewardStructure
from repro.models.builder import ExploredModel, StateSpaceBuilder

__all__ = [
    "Raid5Params",
    "Raid5State",
    "FAILED",
    "build_raid5_availability",
    "build_raid5_reliability",
    "raid5_performability_rewards",
]

#: The single aggregated system-failure state.
FAILED = "FAILED"

#: Operational states are tuples ``(NFD, NDR, NWD, NSD, AL, NFC, NSC)``.
Raid5State = tuple[int, int, int, int, bool, int, int]


@dataclass(frozen=True)
class Raid5Params:
    """Parameters of the RAID-5 model; defaults are the paper's Section 3
    values (all rates in h⁻¹)."""

    groups: int = 20
    """``G`` — number of parity groups (each controller string has ``G``
    disks). The paper evaluates ``G = 20`` and ``G = 40``."""

    disks_per_group: int = 5
    """``N`` — disks per parity group = number of controllers."""

    spare_disks: int = 3
    """``D_H`` — hot-spare disks."""

    spare_controllers: int = 1
    """``C_H`` — hot-spare controllers."""

    disk_fail: float = 1e-5
    """``λ_D`` — failure rate of a non-overloaded disk."""

    disk_fail_overloaded: float = 2e-5
    """``λ_S`` — failure rate of an overloaded disk (in a reconstructing
    parity group)."""

    controller_fail: float = 5e-5
    """``λ_C`` — controller failure rate."""

    reconstruction: float = 1.0
    """``μ_DRC`` — data-reconstruction rate per group."""

    disk_repair: float = 4.0
    """``μ_DRP`` — repairman disk-swap rate (uses a hot spare)."""

    controller_repair: float = 4.0
    """``μ_CRP`` — repairman controller-swap rate (uses a hot spare)."""

    spare_repair: float = 0.25
    """``μ_SR`` — out-of-spare field-replacement / spare-replenishment
    rate (unlimited repairmen)."""

    global_repair: float = 0.25
    """``μ_G`` — global repair rate returning FAILED to the initial
    state (availability variant only)."""

    reconstruction_success: float = 0.99337
    """``P_R`` — probability a reconstruction succeeds. The paper
    introduces the parameter but never states the value used in its
    experiments. The default here was calibrated so that ``UR(10^5 h)``
    for ``G = 20`` matches the paper's reported 0.50480; the *same* value
    then predicts 0.7545 for ``G = 40`` against the paper's 0.74750
    (within 1%), which cross-validates the calibration (see
    EXPERIMENTS.md). The magnitude is consistent with an unrecoverable-
    read-error computation over the ``(N−1)`` source disks of a
    reconstruction (e.g. ~6.4·10¹⁰ bits at a 10⁻¹³ bit-error rate)."""

    def __post_init__(self) -> None:
        if self.groups < 1 or self.disks_per_group < 2:
            raise ModelError("need G >= 1 and N >= 2")
        if not (0.0 <= self.reconstruction_success <= 1.0):
            raise ModelError("P_R must be a probability")
        if self.spare_disks < 0 or self.spare_controllers < 0:
            raise ModelError("spare counts must be non-negative")
        for name in ("disk_fail", "disk_fail_overloaded", "controller_fail",
                     "reconstruction", "disk_repair", "controller_repair",
                     "spare_repair", "global_repair"):
            if getattr(self, name) < 0.0:
                raise ModelError(f"{name} must be non-negative")

    @property
    def initial_state(self) -> Raid5State:
        """All components up, all spares available."""
        return (0, 0, 0, self.spare_disks, True, 0, self.spare_controllers)


def _transitions(p: Raid5Params, state, *, absorbing: bool):
    """Outgoing ``(state, rate)`` arcs of one state (see module docstring)."""
    if state == FAILED:
        if not absorbing and p.global_repair > 0.0:
            yield p.initial_state, p.global_repair
        return

    nfd, ndr, nwd, nsd, al, nfc, nsc = state
    g, n = p.groups, p.disks_per_group
    u = nfd + ndr + nwd
    fresh = g - u

    # --- disk failures -----------------------------------------------------
    if nfc == 0:
        if fresh > 0 and p.disk_fail > 0.0:
            if u == 0:
                yield (nfd + 1, ndr, nwd, nsd, True, 0, nsc), \
                    fresh * n * p.disk_fail
            elif al:
                # 1 of the N disks of each fresh group lies on the aligned
                # string; hitting it keeps the set aligned.
                yield (nfd + 1, ndr, nwd, nsd, True, 0, nsc), \
                    fresh * p.disk_fail
                yield (nfd + 1, ndr, nwd, nsd, False, 0, nsc), \
                    fresh * (n - 1) * p.disk_fail
            else:
                yield (nfd + 1, ndr, nwd, nsd, False, 0, nsc), \
                    fresh * n * p.disk_fail
        # Available disks of groups holding a failed disk.
        if nfd > 0 and p.disk_fail > 0.0:
            yield FAILED, nfd * (n - 1) * p.disk_fail
        # Reconstructing groups: overloaded sources and target.
        if ndr > 0 and p.disk_fail_overloaded > 0.0:
            yield FAILED, ndr * (n - 1) * p.disk_fail_overloaded
            yield (nfd + 1, ndr - 1, nwd, nsd, al, 0, nsc), \
                ndr * p.disk_fail_overloaded
    else:  # nfc == 1 — every group already misses its string-c disk
        if fresh > 0 and p.disk_fail > 0.0:
            # The fresh groups' string-c disks keep the system up (still
            # aligned); their other N-1 disks collide with the string.
            yield (nfd + 1, 0, nwd, nsd, True, 1, nsc), fresh * p.disk_fail
            yield FAILED, fresh * (n - 1) * p.disk_fail
        if (nfd + nwd) > 0 and p.disk_fail > 0.0:
            yield FAILED, (nfd + nwd) * (n - 1) * p.disk_fail
        if nwd > 0 and p.disk_fail > 0.0:
            yield (nfd + 1, 0, nwd - 1, nsd, True, 1, nsc), nwd * p.disk_fail

    # --- controller failures ------------------------------------------------
    if p.controller_fail > 0.0:
        if nfc == 0:
            if u == 0:
                yield (0, 0, 0, nsd, True, 1, nsc), n * p.controller_fail
            elif al:
                # Hitting the aligned string stalls reconstructions.
                yield (nfd, 0, nwd + ndr, nsd, True, 1, nsc), p.controller_fail
                yield FAILED, (n - 1) * p.controller_fail
            else:
                yield FAILED, n * p.controller_fail
        else:
            yield FAILED, (n - 1) * p.controller_fail

    # --- reconstruction completions ------------------------------------------
    if ndr > 0 and p.reconstruction > 0.0:
        pr = p.reconstruction_success
        if pr > 0.0:
            # Paper's pessimistic rule: an unaligned set stays unaligned
            # while >= 2 disks remain unavailable.
            new_u = u - 1
            new_al = True if new_u <= 1 else al
            yield (nfd, ndr - 1, nwd, nsd, new_al, 0, nsc), \
                ndr * p.reconstruction * pr
        if pr < 1.0:
            yield FAILED, ndr * p.reconstruction * (1.0 - pr)

    # --- repairman (controllers first) ---------------------------------------
    controller_swap = nfc == 1 and nsc >= 1
    if controller_swap and p.controller_repair > 0.0:
        yield (nfd, nwd, 0, nsd, True, 0, nsc - 1), p.controller_repair
    if (not controller_swap and nfd >= 1 and nsd >= 1
            and p.disk_repair > 0.0):
        if nfc == 0:
            yield (nfd - 1, ndr + 1, 0, nsd - 1, al, 0, nsc), p.disk_repair
        else:
            yield (nfd - 1, 0, nwd + 1, nsd - 1, True, 1, nsc), p.disk_repair

    # --- out-of-spare field replacements (unlimited repairmen) ---------------
    if p.spare_repair > 0.0:
        if nfd >= 1 and nsd == 0:
            if nfc == 0:
                yield (nfd - 1, ndr + 1, 0, nsd, al, 0, nsc), \
                    nfd * p.spare_repair
            else:
                yield (nfd - 1, 0, nwd + 1, nsd, True, 1, nsc), \
                    nfd * p.spare_repair
        if nfc == 1 and nsc == 0:
            yield (nfd, nwd, 0, nsd, True, 0, nsc), p.spare_repair

        # --- spare replenishment ---------------------------------------------
        if nsd < p.spare_disks:
            yield (nfd, ndr, nwd, nsd + 1, al, nfc, nsc), \
                (p.spare_disks - nsd) * p.spare_repair
        if nsc < p.spare_controllers:
            yield (nfd, ndr, nwd, nsd, al, nfc, nsc + 1), \
                (p.spare_controllers - nsc) * p.spare_repair


def _build(p: Raid5Params, absorbing: bool) -> ExploredModel:
    builder = StateSpaceBuilder(
        lambda s: _transitions(p, s, absorbing=absorbing))
    return builder.explore(p.initial_state)


def build_raid5_availability(params: Raid5Params | None = None
                             ) -> tuple[CTMC, RewardStructure, ExploredModel]:
    """Irreducible variant for the point unavailability ``UA(t)``.

    Returns ``(model, rewards, explored)`` where ``rewards`` puts rate 1
    on the FAILED state and 0 elsewhere (``UA(t) = TRR(t)``) and
    ``explored.index`` maps symbolic states to indices.
    """
    p = params or Raid5Params()
    if p.global_repair <= 0.0:
        raise ModelError("availability variant needs global_repair > 0")
    explored = _build(p, absorbing=False)
    failed_idx = explored.index[FAILED]
    rewards = RewardStructure.indicator(explored.model.n_states, [failed_idx])
    return explored.model, rewards, explored


def build_raid5_reliability(params: Raid5Params | None = None
                            ) -> tuple[CTMC, RewardStructure, ExploredModel]:
    """Absorbing variant for the unreliability ``UR(t)``.

    The FAILED state is absorbing (A = 1); the reward structure puts rate
    1 on it, so ``UR(t) = TRR(t) = P[system failed by t]``.
    """
    p = params or Raid5Params()
    explored = _build(p, absorbing=True)
    failed_idx = explored.index[FAILED]
    rewards = RewardStructure.indicator(explored.model.n_states, [failed_idx])
    return explored.model, rewards, explored


def raid5_performability_rewards(explored: ExploredModel,
                                 params: Raid5Params | None = None,
                                 *, throughput_per_group: float = 1.0,
                                 degraded_factor: float = 0.5,
                                 reconstructing_factor: float = 0.7
                                 ) -> RewardStructure:
    """Throughput-style performability reward structure.

    Every fully-available parity group earns ``throughput_per_group``;
    groups holding a failed/waiting disk run degraded
    (``degraded_factor``); reconstructing groups run at
    ``reconstructing_factor`` (rebuild traffic); when a controller is
    down every group is degraded; the FAILED state earns 0. Used by the
    performability example and the MRR benchmarks.
    """
    p = params or Raid5Params()
    g = p.groups
    n_states = explored.model.n_states
    r = np.zeros(n_states)
    for state, idx in explored.index.items():
        if state == FAILED:
            continue
        nfd, ndr, nwd, _nsd, _al, nfc, _nsc = state
        if nfc == 1:
            r[idx] = throughput_per_group * degraded_factor * g
            continue
        fresh = g - (nfd + ndr + nwd)
        r[idx] = throughput_per_group * (
            fresh
            + degraded_factor * (nfd + nwd)
            + reconstructing_factor * ndr)
    return RewardStructure(r)
