"""Model generators: the paper's RAID-5 dependability model plus a library
of small analytical chains used by tests and examples."""

from repro.models.builder import StateSpaceBuilder, ExploredModel
from repro.models.raid5 import (
    Raid5Params,
    build_raid5_availability,
    build_raid5_reliability,
    raid5_performability_rewards,
)
from repro.models.multiprocessor import (
    MultiprocessorParams,
    build_multiprocessor_availability,
    build_multiprocessor_reliability,
    multiprocessor_capacity_rewards,
)
from repro.models.library import (
    two_state_availability,
    birth_death,
    erlang_chain,
    mm1k_queue,
    cyclic_chain,
    tandem_repair,
    random_ctmc,
    block_structured_ctmc,
)

__all__ = [
    "StateSpaceBuilder",
    "ExploredModel",
    "Raid5Params",
    "build_raid5_availability",
    "build_raid5_reliability",
    "raid5_performability_rewards",
    "MultiprocessorParams",
    "build_multiprocessor_availability",
    "build_multiprocessor_reliability",
    "multiprocessor_capacity_rewards",
    "two_state_availability",
    "birth_death",
    "erlang_chain",
    "mm1k_queue",
    "cyclic_chain",
    "tandem_repair",
    "random_ctmc",
    "block_structured_ctmc",
]
