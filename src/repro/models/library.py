"""Library of small analytical CTMCs for tests, examples and ablations.

Each constructor returns ``(model, rewards)`` (or just the model) with a
docstring stating the closed-form quantities the test-suite checks
against. These chains exercise specific solver paths: reducible vs
irreducible, fast/slow regeneration, absorbing states, periodic DTMC
structure after uniformization, and stiff rate separation.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ModelError
from repro.markov.ctmc import CTMC
from repro.markov.rewards import RewardStructure

__all__ = [
    "two_state_availability",
    "birth_death",
    "erlang_chain",
    "mm1k_queue",
    "cyclic_chain",
    "tandem_repair",
    "random_ctmc",
    "block_structured_ctmc",
]


def two_state_availability(fail: float = 1.0, repair: float = 10.0
                           ) -> tuple[CTMC, RewardStructure]:
    """Up/down machine: ``0 →(fail) 1 →(repair) 0``, reward 1 on down.

    Closed forms: ``UA(t) = (λ/(λ+μ))(1 − e^{−(λ+μ)t})`` and
    ``MRR(t) = (λ/(λ+μ))(1 − (1 − e^{−(λ+μ)t})/((λ+μ)t))``.
    """
    if fail <= 0.0 or repair <= 0.0:
        raise ModelError("rates must be positive")
    model = CTMC.from_transitions(2, [(0, 1, fail), (1, 0, repair)],
                                  initial=0, labels=["up", "down"])
    return model, RewardStructure.indicator(2, [1])


def birth_death(n: int, birth: float, death: float,
                initial: int = 0) -> CTMC:
    """Birth–death chain on ``0..n-1`` with constant rates.

    Stationary distribution: truncated geometric with ratio
    ``birth/death``.
    """
    if n < 2:
        raise ModelError("need at least 2 states")
    trans = []
    for i in range(n - 1):
        trans.append((i, i + 1, birth))
        trans.append((i + 1, i, death))
    labels = [f"level{i}" for i in range(n)]
    return CTMC.from_transitions(n, trans, initial=initial, labels=labels)


def erlang_chain(stages: int, rate: float) -> tuple[CTMC, RewardStructure]:
    """Pure chain ``0 → 1 → ... → k`` (absorbing), reward 1 on the end.

    ``TRR(t) = P[Erlang(k, rate) <= t]`` — a sharp analytic target for
    the absorbing-state (unreliability) code path, and a *worst case* for
    regenerative randomization: the excursion never returns to the
    regenerative state, so ``a(k)`` stays 1 until absorption dominates.
    """
    if stages < 1 or rate <= 0.0:
        raise ModelError("need stages >= 1 and positive rate")
    n = stages + 1
    trans = [(i, i + 1, rate) for i in range(stages)]
    model = CTMC.from_transitions(n, trans, initial=0)
    return model, RewardStructure.indicator(n, [stages])


def mm1k_queue(capacity: int, arrival: float, service: float,
               initial: int = 0) -> tuple[CTMC, RewardStructure]:
    """M/M/1/K queue; the reward is the queue length (performability-style
    non-indicator rewards).

    ``TRR(t) → E[queue length]`` with the truncated-geometric stationary
    law as ``t → ∞``.
    """
    model = birth_death(capacity + 1, arrival, service, initial=initial)
    return model, RewardStructure(np.arange(capacity + 1, dtype=float))


def cyclic_chain(n: int, rate: float = 1.0) -> CTMC:
    """Deterministic cycle ``0 → 1 → ... → n-1 → 0``.

    The uniformized DTMC (at the minimal rate) is *periodic*, which
    stresses steady-state detection: the distribution of ``X̂_n`` never
    converges even though the CTMC does. Uniformizing with ``slack > 1``
    restores aperiodicity — tested explicitly.
    """
    if n < 2:
        raise ModelError("need at least 2 states")
    trans = [(i, (i + 1) % n, rate) for i in range(n)]
    return CTMC.from_transitions(n, trans, initial=0)


def tandem_repair(n_units: int, fail: float, repair: float,
                  coverage: float = 1.0
                  ) -> tuple[CTMC, RewardStructure]:
    """``n`` redundant units with one repairman; system down when all
    units are failed; imperfect coverage sends a failure straight down.

    A classic stiff dependability model (``repair >> fail``): state ``i``
    = number of failed units; failure of one of ``n−i`` units at rate
    ``(n−i)·fail``, covered with probability ``coverage`` (uncovered →
    jump to the all-failed state); single repairman fixes one unit at
    ``repair``. Reward 1 on the all-failed (down) state.
    """
    if n_units < 1:
        raise ModelError("need at least one unit")
    n = n_units + 1
    down = n_units
    trans: list[tuple[int, int, float]] = []
    for i in range(n_units):
        lam = (n_units - i) * fail
        if coverage > 0.0 and i + 1 < down:
            trans.append((i, i + 1, lam * coverage))
        elif i + 1 == down:
            trans.append((i, down, lam * coverage))
        if coverage < 1.0 and i + 1 < down:
            trans.append((i, down, lam * (1.0 - coverage)))
        if i > 0:
            trans.append((i, i - 1, repair))
    trans.append((down, down - 1, repair))
    model = CTMC.from_transitions(n, trans, initial=0)
    return model, RewardStructure.indicator(n, [down])


def random_ctmc(n: int, density: float = 0.3, seed: int = 0,
                absorbing: int = 0, rate_scale: float = 1.0,
                initial: np.ndarray | int | None = 0) -> CTMC:
    """Random strongly-connected CTMC plus optional absorbing states.

    States ``0 .. n-absorbing-1`` form the transient/recurrent class (a
    Hamiltonian ring guarantees strong connectivity); each of the last
    ``absorbing`` states receives slow inbound arcs from random sources.
    Used heavily by the property-based tests.
    """
    if n < 2 or not (0 <= absorbing < n):
        raise ModelError("invalid sizes")
    rng = np.random.default_rng(seed)
    core = n - absorbing
    trans: list[tuple[int, int, float]] = []
    for i in range(core):
        trans.append((i, (i + 1) % core, float(rng.uniform(0.2, 1.0))
                      * rate_scale))
    mask = rng.random((core, core)) < density
    rates = rng.uniform(0.05, 2.0, size=(core, core)) * rate_scale
    for i in range(core):
        for j in range(core):
            if i != j and mask[i, j]:
                trans.append((i, j, float(rates[i, j])))
    for k in range(absorbing):
        sources = rng.choice(core, size=max(1, core // 3), replace=False)
        for s in sources:
            trans.append((int(s), core + k,
                          float(rng.uniform(0.01, 0.1)) * rate_scale))
    return CTMC.from_transitions(n, trans, initial=initial)


def block_structured_ctmc(n_blocks: int, block_size: int,
                          intra_scale: float = 1.0,
                          inter_scale: float = 1e-3,
                          density: float = 0.5,
                          seed: int = 0) -> tuple[CTMC, RewardStructure]:
    """Nearly-completely-decomposable chain: dense fast blocks, slow links.

    ``n_blocks`` blocks of ``block_size`` states each. Within a block,
    random rates of magnitude ``intra_scale`` on a Hamiltonian ring plus
    extra arcs with probability ``density``; between consecutive blocks
    (cyclically, so the chain is irreducible) a single slow arc of
    magnitude ``inter_scale``. The time-scale separation
    ``intra_scale / inter_scale`` makes the chain stiff the same way
    repair ≫ failure does in dependability models — the regime the
    regenerative methods target — while being arbitrarily scalable.

    The reward is the indicator of the last block (think "degraded
    subsystem occupied"), giving a small-probability measure like the
    paper's unavailability.
    """
    if n_blocks < 2 or block_size < 2:
        raise ModelError("need n_blocks >= 2 and block_size >= 2")
    if intra_scale <= 0.0 or inter_scale <= 0.0:
        raise ModelError("rate scales must be positive")
    rng = np.random.default_rng(seed)
    n = n_blocks * block_size
    trans: list[tuple[int, int, float]] = []
    for b in range(n_blocks):
        base = b * block_size
        # Fast intra-block dynamics on a ring plus random extra arcs.
        for i in range(block_size):
            j = (i + 1) % block_size
            trans.append((base + i, base + j,
                          float(rng.uniform(0.5, 1.5)) * intra_scale))
        extra = rng.random((block_size, block_size)) < density
        rates = rng.uniform(0.2, 2.0, size=(block_size, block_size))
        for i in range(block_size):
            for j in range(block_size):
                if i != j and extra[i, j]:
                    trans.append((base + i, base + j,
                                  float(rates[i, j]) * intra_scale))
        # One slow arc into the next block (cyclic → irreducible).
        nxt = ((b + 1) % n_blocks) * block_size
        src = base + int(rng.integers(block_size))
        dst = nxt + int(rng.integers(block_size))
        trans.append((src, dst, float(rng.uniform(0.5, 1.5)) * inter_scale))
    model = CTMC.from_transitions(n, trans, initial=0)
    last = range((n_blocks - 1) * block_size, n)
    return model, RewardStructure.indicator(n, last)
