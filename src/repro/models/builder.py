"""Generic symbolic state-space exploration engine.

High-level model generators (like the RAID-5 model of the paper's Section
3) describe a CTMC implicitly: a hashable initial state plus a function
mapping a state to its outgoing ``(successor, rate)`` pairs. The
:class:`StateSpaceBuilder` explores the reachable state space breadth-
first, interns states as dense integer indices, accumulates duplicate
arcs, and hands back a :class:`repro.markov.ctmc.CTMC` with the symbolic
states preserved as labels.

This is the standard construction used by dependability tools (SAN/SPN
front-ends such as the one used by [13] do exactly this); keeping it
generic lets the test-suite build small bespoke models the same way the
RAID generator builds its 10⁴-state chains.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Callable, Hashable, Iterable
from dataclasses import dataclass

import numpy as np
from scipy import sparse

from repro.exceptions import ModelError
from repro.markov.ctmc import CTMC

__all__ = ["StateSpaceBuilder", "ExploredModel"]

TransitionFn = Callable[[Hashable], Iterable[tuple[Hashable, float]]]


@dataclass
class ExploredModel:
    """Result of a state-space exploration.

    Attributes
    ----------
    model:
        The assembled :class:`~repro.markov.ctmc.CTMC` (labels carry the
        symbolic states).
    index:
        Mapping from symbolic state to dense index.
    """

    model: CTMC
    index: dict[Hashable, int]

    def state_index(self, state: Hashable) -> int:
        """Dense index of a symbolic state (KeyError if unreachable)."""
        return self.index[state]


class StateSpaceBuilder:
    """Breadth-first reachability exploration of an implicit CTMC.

    Parameters
    ----------
    transitions:
        Function returning the outgoing ``(successor_state, rate)`` pairs
        of a symbolic state. Rates must be non-negative; zero-rate arcs
        and self-loops are dropped. Duplicate ``(src, dst)`` pairs are
        accumulated (useful when distinct physical events lead to the same
        aggregated state).
    max_states:
        Exploration is aborted with :class:`~repro.exceptions.ModelError`
        beyond this many states — a typo in a model generator tends to
        produce an unintentionally infinite state space, and a crisp error
        beats an out-of-memory kill.
    """

    def __init__(self, transitions: TransitionFn,
                 max_states: int = 2_000_000) -> None:
        self._transitions = transitions
        self._max_states = int(max_states)

    def explore(self, initial: Hashable,
                initial_probability: dict[Hashable, float] | None = None
                ) -> ExploredModel:
        """Explore from ``initial`` (or from all keys of
        ``initial_probability``) and assemble the CTMC.

        Parameters
        ----------
        initial:
            Seed state; receives probability 1 unless
            ``initial_probability`` is given.
        initial_probability:
            Optional distribution over symbolic seed states; must sum
            to 1.
        """
        index: dict[Hashable, int] = {}
        order: list[Hashable] = []

        def intern(state: Hashable) -> int:
            idx = index.get(state)
            if idx is None:
                idx = len(order)
                if idx >= self._max_states:
                    raise ModelError(
                        f"state space exceeds max_states={self._max_states}")
                index[state] = idx
                order.append(state)
            return idx

        seeds = ([initial] if initial_probability is None
                 else list(initial_probability))
        queue: deque[Hashable] = deque()
        for s in seeds:
            intern(s)
            queue.append(s)

        rows: list[int] = []
        cols: list[int] = []
        vals: list[float] = []
        head = 0
        # `queue` only holds seeds; exploration walks `order`, which grows
        # as new states are interned (a BFS without an explicit queue).
        while head < len(order):
            state = order[head]
            src = head
            head += 1
            for dst_state, rate in self._transitions(state):
                if rate < 0.0:
                    raise ModelError(
                        f"negative rate {rate} out of state {state!r}")
                if rate == 0.0:
                    continue
                dst = intern(dst_state)
                if dst == src:
                    continue
                rows.append(src)
                cols.append(dst)
                vals.append(float(rate))

        n = len(order)
        init_vec = np.zeros(n)
        if initial_probability is None:
            init_vec[index[initial]] = 1.0
        else:
            for s, p in initial_probability.items():
                init_vec[index[s]] = p
        q = sparse.coo_matrix((vals, (rows, cols)), shape=(n, n))
        model = CTMC(q, initial=init_vec, labels=order)
        return ExploredModel(model=model, index=index)
