"""Fault-tolerant multiprocessor model (second domain workload).

The regenerative-randomization papers (the paper's refs. [1, 2]) motivate
the method with repairable fault-tolerant architectures beyond RAID; the
classic benchmark is a multiprocessor with ``n_p`` processors and ``n_m``
memory modules, imperfect failure coverage, and a single repairman:

* the system is operational while at least ``min_p`` processors *and*
  ``min_m`` memories are up;
* a component failure is *covered* with probability ``coverage`` —
  an uncovered failure crashes the whole system (global reboot/repair at
  ``reboot`` rate returns it to the fully-up state);
* one repairman fixes failed components one at a time, processors first.

State: ``(failed_processors, failed_memories)`` plus a single CRASHED
state for uncovered failures; the operational-exhaustion failure (too few
survivors) also routes to CRASHED in the availability variant, or to the
absorbing FAILED state in the reliability variant.

The model is deliberately small-state (``O(n_p · n_m)``) but stiff
(repair ≫ failure) and has a tunable coverage knob — the combination the
transient solvers find hard and the library's examples/ablations use.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import ModelError
from repro.markov.ctmc import CTMC
from repro.markov.rewards import RewardStructure
from repro.models.builder import ExploredModel, StateSpaceBuilder

__all__ = [
    "MultiprocessorParams",
    "CRASHED",
    "build_multiprocessor_availability",
    "build_multiprocessor_reliability",
    "multiprocessor_capacity_rewards",
]

#: Aggregated system-down state (uncovered failure or survivor exhaustion).
CRASHED = "CRASHED"


@dataclass(frozen=True)
class MultiprocessorParams:
    """Parameters of the multiprocessor dependability model."""

    processors: int = 4
    """``n_p`` — number of processors."""

    memories: int = 4
    """``n_m`` — number of memory modules."""

    min_processors: int = 1
    """Minimum up processors for the system to be operational."""

    min_memories: int = 1
    """Minimum up memory modules for the system to be operational."""

    proc_fail: float = 5e-4
    """Processor failure rate (h⁻¹)."""

    mem_fail: float = 2e-4
    """Memory-module failure rate (h⁻¹)."""

    coverage: float = 0.98
    """Probability a component failure is covered by reconfiguration."""

    repair: float = 0.5
    """Repairman rate (one component at a time, processors first)."""

    reboot: float = 2.0
    """Global repair/reboot rate from the crashed state (availability
    variant only)."""

    def __post_init__(self) -> None:
        if self.processors < self.min_processors or self.min_processors < 1:
            raise ModelError("need processors >= min_processors >= 1")
        if self.memories < self.min_memories or self.min_memories < 1:
            raise ModelError("need memories >= min_memories >= 1")
        if not (0.0 <= self.coverage <= 1.0):
            raise ModelError("coverage must be a probability")
        for name in ("proc_fail", "mem_fail", "repair", "reboot"):
            if getattr(self, name) < 0.0:
                raise ModelError(f"{name} must be non-negative")

    @property
    def initial_state(self) -> tuple[int, int]:
        """All components up."""
        return (0, 0)


def _transitions(p: MultiprocessorParams, state, *, absorbing: bool):
    if state == CRASHED:
        if not absorbing and p.reboot > 0.0:
            yield p.initial_state, p.reboot
        return
    fp, fm = state
    up_p = p.processors - fp
    up_m = p.memories - fm

    # Component failures: covered ones degrade, uncovered ones (and the
    # loss of the last required survivor) crash the system.
    if up_p > 0 and p.proc_fail > 0.0:
        rate = up_p * p.proc_fail
        would_exhaust = (up_p - 1) < p.min_processors
        if would_exhaust:
            yield CRASHED, rate
        else:
            if p.coverage > 0.0:
                yield (fp + 1, fm), rate * p.coverage
            if p.coverage < 1.0:
                yield CRASHED, rate * (1.0 - p.coverage)
    if up_m > 0 and p.mem_fail > 0.0:
        rate = up_m * p.mem_fail
        would_exhaust = (up_m - 1) < p.min_memories
        if would_exhaust:
            yield CRASHED, rate
        else:
            if p.coverage > 0.0:
                yield (fp, fm + 1), rate * p.coverage
            if p.coverage < 1.0:
                yield CRASHED, rate * (1.0 - p.coverage)

    # Single repairman, processors first.
    if fp > 0 and p.repair > 0.0:
        yield (fp - 1, fm), p.repair
    elif fm > 0 and p.repair > 0.0:
        yield (fp, fm - 1), p.repair


def _build(p: MultiprocessorParams, absorbing: bool) -> ExploredModel:
    builder = StateSpaceBuilder(
        lambda s: _transitions(p, s, absorbing=absorbing))
    return builder.explore(p.initial_state)


def build_multiprocessor_availability(
        params: MultiprocessorParams | None = None
) -> tuple[CTMC, RewardStructure, ExploredModel]:
    """Irreducible variant: reward 1 on CRASHED (point unavailability)."""
    p = params or MultiprocessorParams()
    if p.reboot <= 0.0:
        raise ModelError("availability variant needs reboot > 0")
    explored = _build(p, absorbing=False)
    rewards = RewardStructure.indicator(
        explored.model.n_states, [explored.state_index(CRASHED)])
    return explored.model, rewards, explored


def build_multiprocessor_reliability(
        params: MultiprocessorParams | None = None
) -> tuple[CTMC, RewardStructure, ExploredModel]:
    """Absorbing variant: CRASHED absorbs (unreliability)."""
    p = params or MultiprocessorParams()
    explored = _build(p, absorbing=True)
    rewards = RewardStructure.indicator(
        explored.model.n_states, [explored.state_index(CRASHED)])
    return explored.model, rewards, explored


def multiprocessor_capacity_rewards(explored: ExploredModel,
                                    params: MultiprocessorParams | None = None
                                    ) -> RewardStructure:
    """Performability rewards: computing capacity ``min(up_p, up_m)``
    (each active processor needs a memory module to be useful)."""
    import numpy as np

    p = params or MultiprocessorParams()
    r = np.zeros(explored.model.n_states)
    for state, idx in explored.index.items():
        if state == CRASHED:
            continue
        fp, fm = state
        r[idx] = float(min(p.processors - fp, p.memories - fm))
    return RewardStructure(r)
