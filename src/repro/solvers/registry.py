"""Capability-declaring solver registry — the one dispatch authority.

Before this module existed the six transient solvers were dispatched by
parallel, drifting mechanisms: a hardcoded import ladder in
:mod:`repro.analysis.runner`, ``method == "SR"``-style string branches in
:mod:`repro.analysis.experiments`, and hand-maintained frozensets
(``FUSABLE_METHODS`` / ``KERNEL_AWARE_METHODS``) in
:mod:`repro.batch.planner` — so every execution-layer optimisation had to
be re-taught to each layer by hand.

Here instead every solver module *self-registers* a :class:`SolverSpec`
declaring what the solver can do, and every dispatch site asks the
registry:

* ``analysis.runner.get_solver`` instantiates by tag;
* ``batch.planner`` derives its fusable / kernel-aware / memoizable sets
  from the capability flags;
* ``service.protocol`` validates wire payloads against
  :func:`known_methods`;
* ``cli.py`` generates its ``--method`` choices and the
  ``repro solvers list`` output from the specs.

Adding a solver is now one ``register(SolverSpec(...))`` call next to the
solver class; the planner, protocol, CLI and experiment harness pick it
up without edits.

Import discipline
-----------------
This module imports nothing heavier than :mod:`repro.exceptions`, so the
solver modules can import it at their own import time and call
:func:`register` without cycles. The built-in solvers are pulled in
lazily, on the first registry *query* (:func:`_ensure_builtin`), never at
registration.
"""

from __future__ import annotations

import importlib
from collections.abc import Callable, Mapping
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from repro.exceptions import RegistryError, UnknownMethodError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.markov.base import TransientSolver

__all__ = [
    "SolverSpec",
    "register",
    "unregister",
    "get_spec",
    "get_solver",
    "known_methods",
    "specs",
    "methods_with",
    "stack_fusable_methods",
    "kernel_aware_methods",
    "schedule_memoizable_methods",
    "is_registered",
]

#: Capability flag names a :class:`SolverSpec` may declare (the order is
#: the display order of ``repro solvers list``).
CAPABILITY_FLAGS = ("kernel_aware", "stack_fusable", "schedule_memoizable")


def _default_schedule_fingerprint(solver_kwargs: Mapping[str, Any]) -> tuple:
    """Fallback fingerprint: every constructor kwarg is assumed to affect
    the schedule transformation (maximally conservative)."""
    return tuple(sorted((str(k), v) for k, v in solver_kwargs.items()))


@dataclass(frozen=True)
class SolverSpec:
    """Everything the execution layers need to know about one solver.

    Parameters
    ----------
    name:
        Short upper-case method tag (``"SR"``, ``"RRL"``, ...) — the wire
        and CLI identity of the solver.
    constructor:
        Zero-config factory; keyword arguments are forwarded verbatim.
    summary:
        One-line human description (``repro solvers list``, docs).
    kernel_aware:
        ``solve`` accepts an injected pre-built
        :class:`~repro.batch.kernel.UniformizationKernel`
        (``solve(..., kernel=...)``), so the planner's per-worker kernel
        cache applies.
    stack_fusable:
        The solver implements ``solve_fused(model, cells, kernel=...)``:
        cells sharing a model merge into one stacked stepping sweep.
    schedule_memoizable:
        The solver's per-model *schedule transformation* (RR/RRL's
        ``K + L`` stepping phase) is cell-independent and may be shared
        across solves through a
        :class:`~repro.core.schedule_cache.ScheduleCache`
        (``solve(..., schedule_cache=...)``).
    schedule_fingerprint:
        Fingerprint hook: maps ``solver_kwargs`` to the subset that the
        schedule transformation actually depends on (e.g. RRL's
        ``t_factor`` tunes only the inversion, so two cells differing in
        it still share one transformation). The default conservatively
        fingerprints every kwarg.
    predict_steps:
        Analytic step-count hook ``(Λt, eps_rel, measure) -> int`` for
        solvers whose cost is known without running them (SR's Poisson
        quantile); the experiment harness renders such columns without
        solving and uses the prediction to budget O(Λt) methods.
    step_budget_kwarg:
        Name of the constructor kwarg capping the solver's inner O(Λt)
        stepping (``"max_steps"`` for SR, ``"inner_max_steps"`` for RR);
        ``None`` for methods whose cost does not grow with ``Λt``.
    requires_irreducible:
        The method is only sound on irreducible models (RSD's
        steady-state detection); callers generating method matrices use
        this to skip absorbing models.
    table_label:
        Display label for the paper's step tables (``"RR/RRL"`` — RR and
        RRL share the transformation phase, so the paper prints one
        column); defaults to ``name``.
    """

    name: str
    constructor: Callable[..., "TransientSolver"]
    summary: str
    kernel_aware: bool = False
    stack_fusable: bool = False
    schedule_memoizable: bool = False
    schedule_fingerprint: Callable[[Mapping[str, Any]], tuple] = \
        field(default=_default_schedule_fingerprint)
    predict_steps: Callable[..., int] | None = None
    step_budget_kwarg: str | None = None
    requires_irreducible: bool = False
    table_label: str | None = None

    def __post_init__(self) -> None:
        if not self.name or self.name != self.name.upper():
            raise RegistryError(
                f"solver name must be a non-empty upper-case tag, "
                f"got {self.name!r}")
        if not callable(self.constructor):
            raise RegistryError(
                f"solver {self.name!r}: constructor must be callable")
        if self.table_label is None:
            object.__setattr__(self, "table_label", self.name)

    def capabilities(self) -> tuple[str, ...]:
        """The capability flags this spec declares, in display order."""
        return tuple(flag for flag in CAPABILITY_FLAGS
                     if getattr(self, flag))

    def build(self, **kwargs) -> "TransientSolver":
        """Instantiate the solver (kwargs forwarded to the constructor)."""
        return self.constructor(**kwargs)


# -- the registry ----------------------------------------------------------

_REGISTRY: dict[str, SolverSpec] = {}

#: Modules whose import self-registers the built-in solvers. Imported
#: lazily on the first query so that registry imports stay cycle-free.
_BUILTIN_MODULES = (
    "repro.markov.standard",      # SR
    "repro.markov.rsd",           # RSD
    "repro.markov.adaptive",      # AU
    "repro.markov.multistep",     # MS
    "repro.markov.ode",           # ODE
    "repro.core.rr_solver",       # RR
    "repro.core.rrl_solver",      # RRL
)
_builtin_loaded = False
_builtin_loading = False


def _ensure_builtin() -> None:
    global _builtin_loaded, _builtin_loading
    if _builtin_loaded or _builtin_loading:
        return
    # The loaded flag latches only on *success*: a failed solver import
    # propagates to the caller and the next query retries, instead of
    # leaving the process with a silently partial registry. The loading
    # guard keeps a query issued from inside the imports re-entrant-safe.
    _builtin_loading = True
    try:
        for module in _BUILTIN_MODULES:
            importlib.import_module(module)
        _builtin_loaded = True
    finally:
        _builtin_loading = False


def register(spec: SolverSpec, *, replace: bool = False) -> SolverSpec:
    """Add a solver spec to the process-wide registry.

    Re-registering an *identical* spec is an idempotent no-op that keeps
    the existing entry. Registering a different spec under an existing
    name — even one reusing the constructor but changing capability
    flags — raises :class:`~repro.exceptions.RegistryError` unless
    ``replace=True``: capability flags drive planner policy, so a silent
    partial update must never win.
    """
    existing = _REGISTRY.get(spec.name)
    if existing is not None and not replace:
        if existing == spec:
            return existing
        raise RegistryError(
            f"solver {spec.name!r} is already registered with a different "
            "spec; pass replace=True to override")
    _REGISTRY[spec.name] = spec
    return spec


def unregister(name: str) -> None:
    """Remove a registration (test hook; built-ins re-register only on a
    fresh process)."""
    _REGISTRY.pop(str(name).upper(), None)


def is_registered(method: str) -> bool:
    """Whether ``method`` (case-insensitive) names a registered solver."""
    _ensure_builtin()
    return str(method).upper() in _REGISTRY


def get_spec(method: str) -> SolverSpec:
    """Spec for a method tag (case-insensitive).

    Raises
    ------
    UnknownMethodError
        If no solver registered under that tag; the message carries the
        full known-method list.
    """
    _ensure_builtin()
    key = str(method).upper()
    spec = _REGISTRY.get(key)
    if spec is None:
        raise UnknownMethodError(method, known_methods())
    return spec


def get_solver(method: str, **kwargs) -> "TransientSolver":
    """Instantiate a solver by its method tag (case-insensitive)."""
    return get_spec(method).build(**kwargs)


def known_methods() -> tuple[str, ...]:
    """Sorted tuple of every registered method tag."""
    _ensure_builtin()
    return tuple(sorted(_REGISTRY))


def specs() -> tuple[SolverSpec, ...]:
    """Every registered spec, sorted by name."""
    _ensure_builtin()
    return tuple(_REGISTRY[name] for name in sorted(_REGISTRY))


def methods_with(capability: str) -> frozenset[str]:
    """Method tags whose spec declares ``capability`` (one of
    :data:`CAPABILITY_FLAGS`)."""
    if capability not in CAPABILITY_FLAGS:
        raise RegistryError(
            f"unknown capability {capability!r}; "
            f"choose from {', '.join(CAPABILITY_FLAGS)}")
    _ensure_builtin()
    return frozenset(name for name, spec in _REGISTRY.items()
                     if getattr(spec, capability))


def stack_fusable_methods() -> frozenset[str]:
    """Methods implementing ``solve_fused`` (planner stack fusion)."""
    return methods_with("stack_fusable")


def kernel_aware_methods() -> frozenset[str]:
    """Methods accepting an injected pre-built kernel."""
    return methods_with("kernel_aware")


def schedule_memoizable_methods() -> frozenset[str]:
    """Methods whose schedule transformation may be shared across cells."""
    return methods_with("schedule_memoizable")
