"""Solver registry package.

:mod:`repro.solvers.registry` is the single dispatch authority for the
transient solvers: every solver self-registers a capability-declaring
:class:`~repro.solvers.registry.SolverSpec`, and the runner, planner,
protocol and CLI all resolve method tags through it.
"""

from repro.solvers.registry import (
    SolverSpec,
    get_solver,
    get_spec,
    is_registered,
    kernel_aware_methods,
    known_methods,
    methods_with,
    register,
    schedule_memoizable_methods,
    specs,
    stack_fusable_methods,
    unregister,
)

__all__ = [
    "SolverSpec",
    "register",
    "unregister",
    "get_spec",
    "get_solver",
    "known_methods",
    "specs",
    "methods_with",
    "stack_fusable_methods",
    "kernel_aware_methods",
    "schedule_memoizable_methods",
    "is_registered",
]
